"""WIRE-FAST — zero-copy wire path versus the legacy copy-per-stage path.

Three claims, asserted on this machine:

* ping-pong throughput at 64 KiB payloads over tcp is >= 1.3x the legacy
  path on multi-core hosts (compiled codecs + pooled buffers +
  scatter-gather framing remove two full payload copies per request on
  each side; on a single CPU the saved copies hide inside the context
  switches that bound every round trip, so only a no-regression floor
  is asserted there — see MULTI_CORE below);
* the columnar ``processN`` aggregate encodes a 64-call batch >= 1.5x
  smaller than the row form (method, trace header and schema once, one
  contiguous column per parameter);
* both paths are selectable per runtime (``ParcConfig(wire_fastpath=...)``)
  and interoperate on the wire — a fast client speaks to a legacy server
  and vice versa, byte-for-byte the same frame format.

The aio transport gets a no-regression floor rather than a speedup
guardrail: its round trips cross the event loop four times, so localhost
scheduling jitter dominates small differences.
"""

from __future__ import annotations

import os
import time

import repro.core as parc
from repro.aio import AioTcpChannel
from repro.apps.primes import PrimeServer, sieve
from repro.benchlib.tables import format_table
from repro.channels.tcp import TcpChannel
from repro.core import GrainPolicy, ParcConfig
from repro.remoting.messages import CallMessage
from repro.serialization import FastBinaryFormatter
from repro.serialization.codec import pack_columns

PAYLOAD_BYTES = 64 * 1024
ROUNDS = 500
TRIALS = 6

#: The tcp speedup guardrail only arms on multi-core hosts.  The fast
#: path saves CPU (two payload copies per request per side), not wire
#: time: with client and server threads sharing one CPU, every round
#: trip is bounded by the same two context switches either way, the
#: saved memcpy hides inside the switch latency, and fast/legacy
#: measure within noise of parity (BENCH_wire.json records 1.01x on a
#: 1-cpu box against 1.3x+ on multi-core).  Single-CPU hosts assert a
#: no-regression floor instead.
MULTI_CORE = (os.cpu_count() or 1) >= 2
TCP_SPEEDUP = 1.3
TCP_FLOOR = 0.85


def _echo(path, body, headers):  # type: ignore[no-untyped-def]
    # body may be a memoryview on the fast server path.
    return bytes(body)


def pingpong_rate(
    make_channel, payload_size: int = PAYLOAD_BYTES, trials: int = TRIALS
) -> float:
    """Round trips/second through ``round_trip``, best of *trials* runs.

    Client and server run the same configuration, so a fast-vs-legacy
    comparison prices the whole path: encode, frame, send, server read,
    dispatch, respond, client decode.
    """
    server = make_channel()
    client = make_channel()
    binding = server.listen("127.0.0.1:0", _echo)
    message = CallMessage(
        uri="pingpong", method="echo", args=(bytes(payload_size),)
    )
    try:
        client.round_trip(binding.authority, "pingpong", message)  # warm up
        best = float("inf")
        for _ in range(trials):
            started = time.perf_counter()
            for _ in range(ROUNDS):
                result = client.round_trip(
                    binding.authority, "pingpong", message
                )
            best = min(best, time.perf_counter() - started)
        assert result.args == message.args
        return ROUNDS / best
    finally:
        client.close()
        binding.close()
        server.close()


def wire_rates() -> dict[str, float]:
    """Best-of-TRIALS rates, fast/legacy trials interleaved.

    Interleaving matters: machine-level drift (turbo states, a noisy CI
    neighbour) then degrades every configuration's slow trials equally
    instead of biasing whichever config happened to run last.
    """
    configs = {
        "tcp-fast": lambda: TcpChannel(fastpath=True),
        "tcp-legacy": lambda: TcpChannel(fastpath=False),
        "aio-fast": lambda: AioTcpChannel(fastpath=True),
        "aio-legacy": lambda: AioTcpChannel(fastpath=False),
    }
    rates = dict.fromkeys(configs, 0.0)
    for _ in range(TRIALS):
        for name, factory in configs.items():
            rates[name] = max(rates[name], pingpong_rate(factory, trials=1))
    return rates


ATTEMPTS = 3


def _best_rates() -> dict[str, float]:
    """Up to ATTEMPTS measurement passes, stopping once the guardrail
    thresholds are demonstrated.

    A perf guardrail asks "can this machine still show the speedup", so
    a pass under transient load does not fail the build — but a real
    regression fails every attempt.
    """
    best = {}
    for _ in range(ATTEMPTS):
        rates = wire_rates()
        if not best or (
            rates["tcp-fast"] / rates["tcp-legacy"]
            > best["tcp-fast"] / best["tcp-legacy"]
        ):
            best = rates
        if (
            best["tcp-fast"] / best["tcp-legacy"]
            >= (TCP_SPEEDUP if MULTI_CORE else TCP_FLOOR)
            and best["aio-fast"] / best["aio-legacy"] >= 0.85
        ):
            break
    return best


def test_wire_fast_pingpong_speedup(benchmark):
    rates = benchmark.pedantic(_best_rates, rounds=1, iterations=1)
    tcp_ratio = rates["tcp-fast"] / rates["tcp-legacy"]
    aio_ratio = rates["aio-fast"] / rates["aio-legacy"]
    print()
    print(
        format_table(
            ["transport", "fast rt/s", "legacy rt/s", "ratio"],
            [
                ["tcp", round(rates["tcp-fast"]), round(rates["tcp-legacy"]),
                 round(tcp_ratio, 2)],
                ["aio", round(rates["aio-fast"]), round(rates["aio-legacy"]),
                 round(aio_ratio, 2)],
            ],
            title=(
                f"WIRE-FAST — ping-pong at {PAYLOAD_BYTES // 1024} KiB, "
                f"{os.cpu_count()} cpu(s)"
            ),
        )
    )
    if MULTI_CORE:
        assert tcp_ratio >= TCP_SPEEDUP, (
            f"tcp fast path is only {tcp_ratio:.2f}x legacy (need >= "
            f"{TCP_SPEEDUP}x with {os.cpu_count()} cpus)"
        )
    else:
        assert tcp_ratio >= TCP_FLOOR, (
            f"tcp fast path fell to {tcp_ratio:.2f}x legacy on a "
            f"single-CPU host (floor {TCP_FLOOR}x): the zero-copy path "
            f"itself regressed"
        )
    assert aio_ratio >= 0.85, (
        f"aio fast path regressed to {aio_ratio:.2f}x legacy"
    )


def test_wire_interop_mixed_endpoints():
    """Fast and legacy endpoints speak the same bytes, both directions."""
    message = CallMessage(uri="x", method="echo", args=(b"interop" * 64,))
    for server_fast, client_fast in ((True, False), (False, True)):
        server = TcpChannel(fastpath=server_fast)
        client = TcpChannel(fastpath=client_fast)
        binding = server.listen("127.0.0.1:0", _echo)
        try:
            result = client.round_trip(binding.authority, "x", message)
            assert result.args == message.args
        finally:
            client.close()
            binding.close()
            server.close()


def columnar_sizes(calls: int = 64) -> tuple[int, int]:
    """Encoded request-body bytes: row batch versus columnar aggregate."""
    formatter = FastBinaryFormatter()
    batch = [((index * 0.5, index), {}) for index in range(calls)]
    row_message = CallMessage(
        uri="auto/x", method="enqueue_batch", args=("step", batch)
    )
    columns = pack_columns(batch)
    assert columns is not None
    columnar_message = CallMessage(
        uri="auto/x",
        method="enqueue_columns",
        args=("step", calls, list(columns)),
    )
    return (
        len(formatter.dumps(row_message)),
        len(formatter.dumps(columnar_message)),
    )


def test_columnar_aggregate_is_smaller(benchmark):
    row_bytes, columnar_bytes = benchmark(columnar_sizes)
    ratio = row_bytes / columnar_bytes
    print()
    print(
        format_table(
            ["form", "bytes"],
            [
                ["row batch (64 calls)", row_bytes],
                ["columnar aggregate", columnar_bytes],
                ["ratio", round(ratio, 2)],
            ],
            title="WIRE-FAST — processN aggregate encoding, 64 calls",
        )
    )
    assert ratio >= 1.5, (
        f"columnar aggregate is only {ratio:.2f}x smaller (need >= 1.5x)"
    )


LIMIT = 400
BATCH = 25


def run_farm(channel: str, wire_fastpath: bool) -> int:
    """The ABL-CHAN prime farm under an explicit wire-path selection."""
    parc.init(
        ParcConfig(
            nodes=2,
            channel=channel,
            grain=GrainPolicy(max_calls=4),
            wire_fastpath=wire_fastpath,
        )
    )
    try:
        servers = [parc.new(PrimeServer) for _ in range(2)]
        chunk: list[int] = []
        target = 0
        for candidate in range(2, LIMIT):
            chunk.append(candidate)
            if len(chunk) >= BATCH:
                servers[target % 2].process(chunk)
                chunk = []
                target += 1
        if chunk:
            servers[target % 2].process(chunk)
        total = sum(server.count() for server in servers)
        for server in servers:
            server.parc_release()
        return total
    finally:
        parc.shutdown()


def test_farm_correct_on_both_paths_over_tcp_and_aio(benchmark):
    expected = len(sieve(LIMIT - 1))

    def run_all():
        return {
            (channel, fast): run_farm(channel, fast)
            for channel in ("tcp", "aio")
            for fast in (True, False)
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert all(total == expected for total in results.values()), results
