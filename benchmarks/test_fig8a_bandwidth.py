"""FIG8a — inter-node bandwidth: MPI vs Java RMI vs Mono (paper Fig. 8a).

"Inter-node bandwidth shows that the MPI bandwidth performance is superior
to Java and Mono ... for large messages, the Mono performance lags behind
the Java implementation."

Method: each stack's ping-pong messages are encoded with its *real*
protocol code (measured wire bytes) and priced with the platform model
calibrated to the paper's constants.  Shape assertions: the three curves
never cross, MPI dominates, Mono is lowest, and the large-message ratios
are in the paper's ballpark.
"""

from __future__ import annotations

from repro.benchlib import (
    log_sizes,
    message_bytes_mpi,
    message_bytes_remoting,
    message_bytes_rmi,
    modeled_bandwidth_from_bytes,
)
from repro.benchlib.tables import format_table, human_bytes
from repro.perfmodel import JAVA_RMI, MONO_117_TCP, MPI_MPICH

SIZES = log_sizes(1, 1024 * 1024, per_decade=2)
MB = 1024.0 * 1024.0


def fig8a_series() -> dict[str, list[tuple[int, float]]]:
    """(message size, bandwidth MB/s) per platform, as Fig. 8a plots."""
    series: dict[str, list[tuple[int, float]]] = {}
    for name, model, measure in (
        ("MPI", MPI_MPICH, message_bytes_mpi),
        ("Java RMI", JAVA_RMI, message_bytes_rmi),
        ("Mono", MONO_117_TCP, message_bytes_remoting),
    ):
        points = []
        for size in SIZES:
            n_ints = max(1, size // 4)
            payload = 4 * n_ints
            request, response = measure(n_ints)
            bandwidth = modeled_bandwidth_from_bytes(
                model, payload, request, response
            )
            points.append((payload, bandwidth / MB))
        series[name] = points
    return series


def test_fig8a_bandwidth_ordering(benchmark):
    series = benchmark(fig8a_series)
    mpi = dict(series["MPI"])
    rmi = dict(series["Java RMI"])
    mono = dict(series["Mono"])
    # The curves never cross: MPI > RMI > Mono at every size (Fig. 8a).
    for size in mpi:
        assert mpi[size] > rmi[size] > mono[size], size


def test_fig8a_large_message_ratios(benchmark):
    series = benchmark(fig8a_series)
    top = {name: points[-1][1] for name, points in series.items()}
    # Paper-ballpark asymptotes: MPI near the 100 Mbit wire (~11 MB/s),
    # RMI in the middle, Mono behind Java ("lags behind").
    assert 9.0 < top["MPI"] < 12.5
    assert 5.5 < top["Java RMI"] < 9.0
    assert 3.0 < top["Mono"] < 6.0
    assert 1.8 < top["MPI"] / top["Mono"] < 3.5


def test_fig8a_small_messages_latency_bound(benchmark):
    series = benchmark(fig8a_series)
    smallest = {name: points[0][1] for name, points in series.items()}
    # At 4 bytes the latency ratio (100/273/520 us) dominates: MPI leads
    # Mono by roughly the latency ratio (~5x).
    assert 3.0 < smallest["MPI"] / smallest["Mono"] < 8.0


def test_fig8a_print_table(benchmark):
    series = benchmark(fig8a_series)
    rows = []
    for index, size in enumerate(SIZES):
        rows.append(
            [
                human_bytes(4 * max(1, size // 4)),
                round(series["MPI"][index][1], 3),
                round(series["Java RMI"][index][1], 3),
                round(series["Mono"][index][1], 3),
            ]
        )
    print()
    print(
        format_table(
            ["message", "MPI MB/s", "Java RMI MB/s", "Mono MB/s"],
            rows,
            title="Fig. 8a — inter-node bandwidth (modeled network, "
            "real protocol bytes)",
        )
    )
