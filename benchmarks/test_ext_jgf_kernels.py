"""EXT-JGF — scaling of the JGF Section-2 kernels on the ParC# platform.

An extension beyond the paper's evaluation (which used only the JGF ray
tracer): the four Section-2 kernels farmed through the same runtime,
modeled on the paper's cluster.  Expected shapes: the embarrassingly
parallel kernels (Series, Crypt) scale near-linearly; the halo-exchanging
stencil (SOR) scales worst and hits a communication floor; all parallel
runs must remain bit-exact (asserted by the live validation test).
"""

from __future__ import annotations

import copy

import repro.core as parc
from repro.benchlib import simulate_farm
from repro.benchlib.tables import format_table
from repro.core import GrainPolicy
from repro.perfmodel import MONO_117_TCP
from repro.perfmodel.network import transfer_time

PROCESSORS = [1, 2, 4, 6]

# Modeled kernel workloads on the paper's cluster (per-unit costs chosen
# at the JGF "size B" order of magnitude; the *shape* claims below don't
# depend on the absolute scale).
KERNELS = {
    # (chunks, per-chunk compute s, bytes out, bytes back, syncs/run)
    "Series": (64, 0.5, 64.0, 2_000.0, 1),
    "Crypt": (64, 0.25, 48_000.0, 48_000.0, 1),
    "SparseMatmult": (64, 0.2, 6_000.0, 6_000.0, 8),
    "SOR": (64, 0.05, 4_000.0, 4_000.0, 200),
}

model = MONO_117_TCP.with_overrides(thread_pool_limit=None)


def kernel_curves() -> dict[str, list[tuple[int, float]]]:
    curves: dict[str, list[tuple[int, float]]] = {}
    for name, (chunks, per_chunk, out_bytes, back_bytes, syncs) in KERNELS.items():
        points = []
        for processors in PROCESSORS:
            farm = simulate_farm(
                processors,
                [per_chunk] * chunks,
                model,
                out_bytes,
                back_bytes,
            )
            # Bulk-synchronous kernels pay a latency-bound barrier per
            # sync step (one collect round trip per worker, serialized at
            # the coordinator NIC).
            barrier_cost = syncs * processors * (
                2 * model.one_way_latency_s
                + transfer_time(model, back_bytes)
            )
            points.append((processors, farm.makespan_s + barrier_cost))
        curves[name] = points
    return curves


def speedups(curve: list[tuple[int, float]]) -> dict[int, float]:
    base = curve[0][1]
    return {processors: base / time_s for processors, time_s in curve}


def test_ext_jgf_embarrassingly_parallel_scale(benchmark):
    curves = benchmark(kernel_curves)
    for kernel in ("Series", "Crypt"):
        s = speedups(curves[kernel])
        assert s[6] > 4.5, (kernel, s)  # near-linear at 6 procs


def test_ext_jgf_stencil_scales_worst(benchmark):
    curves = benchmark(kernel_curves)
    sor_speedup = speedups(curves["SOR"])[6]
    for kernel in ("Series", "Crypt", "SparseMatmult"):
        assert speedups(curves[kernel])[6] > sor_speedup, kernel


def test_ext_jgf_all_improve_at_two(benchmark):
    curves = benchmark(kernel_curves)
    for kernel, curve in curves.items():
        assert speedups(curve)[2] > 1.2, kernel


def test_ext_jgf_print_table(benchmark):
    curves = benchmark(kernel_curves)
    rows = []
    for kernel, curve in curves.items():
        s = speedups(curve)
        rows.append(
            [kernel]
            + [round(time_s, 2) for _p, time_s in curve]
            + [round(s[6], 2)]
        )
    print()
    print(
        format_table(
            ["kernel"] + [f"{p}p (s)" for p in PROCESSORS] + ["speedup@6"],
            rows,
            title="EXT-JGF — JGF Section-2 kernels on the ParC# platform "
            "(modeled cluster)",
        )
    )


def test_ext_jgf_live_validation(benchmark):
    """The real runtime really runs the kernels, bit-exactly."""
    from repro.apps.jgf import (
        fourier_coefficients,
        parallel_fourier_coefficients,
        parallel_sor,
        sor,
    )
    from repro.apps.jgf.sor import make_grid

    def run_live():
        parc.init(nodes=3, grain=GrainPolicy(max_calls=2))
        try:
            series_ok = parallel_fourier_coefficients(5, workers=3) == (
                fourier_coefficients(5)
            )
            grid = make_grid(10)
            reference = copy.deepcopy(grid)
            sor(reference, 3)
            sor_ok = parallel_sor(grid, 3, workers=3) == reference
            return series_ok, sor_ok
        finally:
            parc.shutdown()

    series_ok, sor_ok = benchmark.pedantic(run_live, rounds=1, iterations=1)
    assert series_ok
    assert sor_ok
