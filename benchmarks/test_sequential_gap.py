"""TAB-SEQ — sequential ray tracer across VMs (paper §4, text).

"The C# sequential execution time in this particular application is 40%
superior to the Java version (using the Microsoft virtual machine, on a
Windows machine, it is only 10% superior)."

The VM gap is a compute-scale constant in the platform models (the VMs
themselves cannot be resurrected); the real pure-Python renderer provides
the baseline absolute time that the scales multiply.
"""

from __future__ import annotations

import pytest

from repro.apps.raytracer import create_scene, render
from repro.benchlib.tables import format_table
from repro.perfmodel import MONO_117_TCP, MS_NET
from repro.perfmodel.platforms import SUN_JVM

WIDTH = HEIGHT = 24


def sequential_gap_rows():
    import time

    scene = create_scene(2)
    started = time.perf_counter()
    render(scene, WIDTH, HEIGHT)
    base_s = time.perf_counter() - started
    platforms = [SUN_JVM, MS_NET, MONO_117_TCP]
    return base_s, [
        (
            model.name,
            model.compute_scale_float,
            base_s * model.compute_scale_float,
        )
        for model in platforms
    ]


def test_tab_seq_ratios(benchmark):
    _base, rows = benchmark(sequential_gap_rows)
    scales = {name: scale for name, scale, _time in rows}
    assert scales["Sun JVM (SDK 1.4.2)"] == 1.0
    assert scales["MS .Net 1.1 (Windows)"] == pytest.approx(1.1)  # +10%
    assert scales["Mono 1.1.7 (Tcp)"] == pytest.approx(1.4)  # +40%


def test_tab_seq_ordering(benchmark):
    _base, rows = benchmark(sequential_gap_rows)
    times = [time_s for _name, _scale, time_s in rows]
    assert times == sorted(times)  # JVM fastest, Mono slowest


def test_tab_seq_print_table(benchmark):
    base, rows = benchmark(sequential_gap_rows)
    print()
    print(
        format_table(
            ["virtual machine", "scale vs JVM", f"{WIDTH}x{HEIGHT} render (s)"],
            [
                [name, scale, round(time_s, 4)]
                for name, scale, time_s in rows
            ],
            title=(
                "TAB-SEQ — sequential ray tracer across VMs "
                f"(python baseline {base:.4f}s; paper: Mono +40%, MS +10%)"
            ),
        )
    )
