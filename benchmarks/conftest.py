"""Benchmark-suite configuration.

Every benchmark prints the rows/series of the paper artifact it
regenerates (run with ``-s`` to see them) and asserts the *shape* the
paper reports — orderings, ratios, crossovers — never absolute numbers.
"""

from __future__ import annotations

import pytest


@pytest.fixture(autouse=True)
def _no_leaked_runtime():
    """Benchmarks must not leak a global SCOOPP runtime."""
    yield
    import repro.core as parc

    try:
        parc.current_runtime()
    except Exception:
        return
    parc.shutdown()
    pytest.fail("benchmark leaked a live ParC runtime")
