"""CHAOS — happy-path overhead of the fault-injection and breaker layers.

The chaos substrate is meant to live in CI, wrapped around every test
cluster; that only works if the zero-fault path is close to free.  Each
interposed call costs one seeded RNG draw and a counter bump
(`FaultyChannel`) or one per-authority state check (`BreakerChannel`)
on top of a real localhost round trip, so the wrapper cost should
vanish into transport noise.

The guardrail: single-caller remoting ping-pong through a zero-fault
`chaos+tcp` channel and through a breaker-wrapped tcp channel must stay
within 10% of bare tcp throughput.
"""

from __future__ import annotations

from repro.benchlib.pingpong import live_concurrent_pingpong
from repro.benchlib.tables import format_table

N_INTS = 16
CALLS = 1500
TRIALS = 3
MAX_OVERHEAD = 0.10

KINDS = ("tcp", "chaos+tcp", "breaker+tcp")


def _throughput_by_kind() -> dict[str, float]:
    """Best-of-N calls/s per channel stack (max defeats scheduler noise)."""
    return {
        kind: max(
            live_concurrent_pingpong(N_INTS, 1, CALLS, kind)
            for _ in range(TRIALS)
        )
        for kind in KINDS
    }


def test_zero_fault_wrappers_cost_under_ten_percent(benchmark):
    rates = benchmark.pedantic(_throughput_by_kind, rounds=1, iterations=1)
    bare = rates["tcp"]
    print()
    print(
        format_table(
            ["stack", "calls/s", "vs tcp"],
            [
                [kind, round(rate), round(rate / bare, 3)]
                for kind, rate in rates.items()
            ],
            title="CHAOS — zero-fault wrapper overhead (localhost ping-pong)",
        )
    )
    for kind in ("chaos+tcp", "breaker+tcp"):
        overhead = 1.0 - rates[kind] / bare
        assert overhead < MAX_OVERHEAD, (
            f"{kind} costs {overhead:.1%} of bare tcp throughput on the "
            f"happy path; the guardrail is {MAX_OVERHEAD:.0%}"
        )
