"""ABL-PLACE — placement-policy ablation (extension of paper §3.2).

The paper says placement follows "the current load distribution policy"
without fixing one; PyParC makes the policy pluggable.  This ablation
creates a burst of objects under each policy and reports the resulting
balance (max/min IOs per node) plus correctness.
"""

from __future__ import annotations

import repro.core as parc
from repro.benchlib.tables import format_table
from repro.core import GrainPolicy

OBJECTS = 24
NODES = 4


@parc.parallel(name="abl.Cell", async_methods=["set"], sync_methods=["get"])
class Cell:
    def __init__(self):
        self.value = None

    def set(self, value):
        self.value = value

    def get(self):
        return self.value


def placement_rows():
    rows = []
    for policy in ("round_robin", "least_loaded", "random"):
        parc.init(nodes=NODES, grain=GrainPolicy(), placement=policy)
        try:
            cells = [parc.new(Cell) for _ in range(OBJECTS)]
            for index, cell in enumerate(cells):
                cell.set(index)
            assert [cell.get() for cell in cells] == list(range(OBJECTS))
            counts = [node["ios"] for node in parc.current_runtime().stats()]
            rows.append(
                (policy, counts, max(counts), max(counts) - min(counts))
            )
            for cell in cells:
                cell.parc_release()
        finally:
            parc.shutdown()
    return rows


def test_abl_place_all_policies_work(benchmark):
    rows = benchmark(placement_rows)
    for _policy, counts, _mx, _spread in rows:
        assert sum(counts) == OBJECTS


def test_abl_place_round_robin_perfectly_balanced(benchmark):
    rows = benchmark(placement_rows)
    by_policy = {policy: spread for policy, _c, _m, spread in rows}
    assert by_policy["round_robin"] == 0


def test_abl_place_least_loaded_nearly_balanced(benchmark):
    rows = benchmark(placement_rows)
    by_policy = {policy: spread for policy, _c, _m, spread in rows}
    assert by_policy["least_loaded"] <= 2


def test_abl_place_print_table(benchmark):
    rows = benchmark(placement_rows)
    print()
    print(
        format_table(
            ["policy", "IOs per node", "max", "spread"],
            [[p, str(c), m, s] for p, c, m, s in rows],
            title=f"ABL-PLACE — {OBJECTS} objects over {NODES} nodes",
        )
    )
