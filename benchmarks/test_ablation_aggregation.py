"""ABL-AGG — method-call aggregation ablation (paper §3.1 / [9]).

"method call aggregation: (delay and) combine a series of asynchronous
method calls into a single aggregate call message; this reduces message
overheads and per-message latency."

Two measurements:

* **message counting** (exact, deterministic): a grain posting N tiny
  calls ships ~N/max_calls aggregate messages — the mechanism itself;
* **modeled run time**: pricing the message counts with the Mono model
  shows the latency the paper's aggregation removes.
"""

from __future__ import annotations

from repro.benchlib.tables import format_table
from repro.core.impl import ImplementationObject
from repro.core.proxy_object import RemoteGrain
from repro.perfmodel import MONO_117_TCP

CALLS = 512
MAX_CALLS_SWEEP = [1, 2, 8, 32, 128]


class _Sink:
    def __init__(self):
        self.count = 0

    def tick(self, _value):
        self.count += 1


def aggregation_rows():
    rows = []
    for max_calls in MAX_CALLS_SWEEP:
        sink = _Sink()
        impl = ImplementationObject(sink, "abl.Sink")
        # Long auto-flush: this ablation counts exact batch boundaries.
        grain = RemoteGrain(impl, max_calls=max_calls, flush_after_s=60.0)
        try:
            for index in range(CALLS):
                grain.post("tick", (index,), {})
            grain.drain()
            assert sink.count == CALLS  # nothing lost
            messages = grain.batches_sent
            modeled_s = messages * MONO_117_TCP.one_way_latency_s
            rows.append((max_calls, messages, modeled_s * 1e3))
        finally:
            grain.dispose()
    return rows


def test_abl_agg_message_counts_shrink(benchmark):
    rows = benchmark(aggregation_rows)
    messages = [m for _mc, m, _t in rows]
    assert messages[0] == CALLS  # no aggregation: one message per call
    assert messages == sorted(messages, reverse=True)
    by_max_calls = dict((mc, m) for mc, m, _t in rows)
    # Aggregation factor k cuts messages to ~N/k.
    assert by_max_calls[32] <= CALLS // 32 + 2
    assert by_max_calls[128] <= CALLS // 128 + 2


def test_abl_agg_latency_amortized(benchmark):
    rows = benchmark(aggregation_rows)
    modeled = {mc: t for mc, _m, t in rows}
    assert modeled[1] / modeled[128] > 50  # two orders of magnitude


def test_abl_agg_print_table(benchmark):
    rows = benchmark(aggregation_rows)
    print()
    print(
        format_table(
            ["max_calls", "messages", "modeled msg latency (ms)"],
            [[mc, m, round(t, 2)] for mc, m, t in rows],
            title=(
                f"ABL-AGG — {CALLS} async calls through one PO "
                "(Mono model: 520us per message)"
            ),
        )
    )
