"""ABL-POOL — thread-pool throttling ablation (paper §4).

"The Mono implementation uses a thread pool to reduce the thread creation
cost; however limiting the number of running threads in parallel
applications reduces the overlap among computation and communication and
also produces starvation in some application threads."

The farm simulator sweeps the pool cap for the Fig. 9 ray-tracer farm at
6 processors: an uncapped pool reaches all 6 workers immediately; small
caps serialize dispatch until thread injection catches up.
"""

from __future__ import annotations

from repro.benchlib import simulate_farm
from repro.benchlib.tables import format_table
from repro.perfmodel import MONO_117_TCP

WORKERS = 6
CHUNKS = [1.7] * 50  # 500 lines / 10 per chunk, 0.17 s/line * 1.0 scale
OUT_BYTES = 144.0
BACK_BYTES = 20_000.0
POOL_CAPS = [1, 2, 4, 6, None]


def pool_rows():
    model = MONO_117_TCP.with_overrides(thread_pool_limit=None)
    rows = []
    for cap in POOL_CAPS:
        result = simulate_farm(
            WORKERS, CHUNKS, model, OUT_BYTES, BACK_BYTES, pool_limit=cap
        )
        rows.append(
            (
                "uncapped" if cap is None else cap,
                round(result.makespan_s, 2),
                round(result.efficiency, 3),
            )
        )
    return rows


def test_abl_pool_smaller_cap_never_faster(benchmark):
    rows = benchmark(pool_rows)
    times = [time_s for _cap, time_s, _eff in rows]
    assert times == sorted(times, reverse=True)


def test_abl_pool_cap_one_starves(benchmark):
    rows = benchmark(pool_rows)
    by_cap = {cap: time_s for cap, time_s, _eff in rows}
    assert by_cap[1] > by_cap["uncapped"] * 1.1


def test_abl_pool_efficiency_degrades(benchmark):
    rows = benchmark(pool_rows)
    efficiencies = [eff for _cap, _t, eff in rows]
    assert efficiencies == sorted(efficiencies)
    assert efficiencies[-1] > 0.9  # uncapped farm is near-perfect


def test_abl_pool_print_table(benchmark):
    rows = benchmark(pool_rows)
    print()
    print(
        format_table(
            ["pool cap", "makespan (s)", "efficiency"],
            [list(row) for row in rows],
            title=(
                f"ABL-POOL — Fig. 9 farm at {WORKERS} workers, thread-pool "
                "cap sweep (Mono model)"
            ),
        )
    )
