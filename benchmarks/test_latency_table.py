"""TAB-LAT — inter-node latency (paper §4, text).

"Inter node latency in Mono (not shown) is between the Java RMI and the
MPI latency (respectively, 520, 273 and 100us). ... This latency is very
close to the performance of the Java nio package."

Two measurements:

* **modeled** — the calibrated one-way latencies, asserted to reproduce
  the paper's 520/273/100 µs and the Mono ≈ nio closeness;
* **live** — each stack actually runs a small ping-pong on this machine
  (threads/localhost).  Absolute values are this machine's; the assertion
  is only the robust qualitative one (the SOAP/HTTP stack is the slowest
  socket stack, and every stack completes).
"""

from __future__ import annotations

import pytest

from repro.benchlib import (
    live_pingpong_mpi,
    live_pingpong_nio,
    live_pingpong_remoting,
    live_pingpong_rmi,
)
from repro.benchlib.tables import format_table
from repro.perfmodel import JAVA_NIO, JAVA_RMI, MONO_117_TCP, MPI_MPICH


class TestModeledLatency:
    def test_paper_values(self, benchmark):
        def read_models():
            return {
                "MPI": MPI_MPICH.one_way_latency_s,
                "Java RMI": JAVA_RMI.one_way_latency_s,
                "Mono": MONO_117_TCP.one_way_latency_s,
                "Java nio": JAVA_NIO.one_way_latency_s,
            }

        latencies = benchmark(read_models)
        assert latencies["MPI"] == pytest.approx(100e-6)
        assert latencies["Java RMI"] == pytest.approx(273e-6)
        assert latencies["Mono"] == pytest.approx(520e-6)
        # ordering + nio closeness
        assert latencies["MPI"] < latencies["Java RMI"] < latencies["Mono"]
        assert 0.7 < latencies["Java nio"] / latencies["Mono"] < 1.1
        print()
        print(
            format_table(
                ["platform", "one-way latency (us)"],
                [[name, round(v * 1e6, 1)] for name, v in latencies.items()],
                title="TAB-LAT — modeled latency (paper: 100/273/520 us)",
            )
        )


class TestLiveLatency:
    """Real round trips on this machine (small 64-int payload)."""

    ROUNDS = 30
    N_INTS = 64

    def test_live_pingpong_all_stacks(self, benchmark):
        def run_all():
            return {
                "MPI (threads)": live_pingpong_mpi(self.N_INTS, self.ROUNDS),
                "nio (sockets)": live_pingpong_nio(self.N_INTS, self.ROUNDS),
                "RMI (sockets)": live_pingpong_rmi(self.N_INTS, self.ROUNDS),
                "remoting tcp": live_pingpong_remoting(
                    self.N_INTS, self.ROUNDS, "tcp"
                ),
                "remoting shm": live_pingpong_remoting(
                    self.N_INTS, self.ROUNDS, "shm"
                ),
                "remoting http": live_pingpong_remoting(
                    self.N_INTS, self.ROUNDS, "http"
                ),
            }

        times = benchmark.pedantic(run_all, rounds=1, iterations=1)
        print()
        print(
            format_table(
                ["stack", "round trip (us)"],
                [
                    [name, round(value * 1e6, 1)]
                    for name, value in sorted(times.items(), key=lambda kv: kv[1])
                ],
                title="TAB-LAT — live localhost round trips (this machine)",
            )
        )
        assert all(value > 0 for value in times.values())
        # Robust qualitative claims only: raw buffers beat object
        # protocols, and the SOAP/HTTP stack is the slowest socket stack.
        socket_stacks = {
            key: value
            for key, value in times.items()
            if key not in ("MPI (threads)", "remoting shm")
        }
        assert times["remoting http"] == max(socket_stacks.values())
        assert times["nio (sockets)"] < times["remoting http"]
        # shm skips the wire entirely: it must at least beat the
        # text-protocol stack (a weak bound that holds even on hosts
        # where the park path, not the spin path, carries every reply).
        assert times["remoting shm"] < times["remoting http"]
