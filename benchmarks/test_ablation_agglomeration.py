"""ABL-AGGL — object agglomeration ablation (paper §3.1 / Fig. 5).

"object agglomeration: when a new object is created, create it locally so
that its subsequent (asynchronous parallel) method invocations are
actually executed synchronously and serially."

A burst of fine-grained objects (each receiving a handful of tiny calls)
is created under three grain configurations.  The mechanism assertions:
agglomeration places zero IOs on the cluster (objects stay passive), the
adaptive controller converges to the same decision on its own, and the
modeled cost shows why (per-object creation + per-call messaging dwarfs
microsecond methods).
"""

from __future__ import annotations

import repro.core as parc
from repro.benchlib.tables import format_table
from repro.core import AdaptiveGrainController, GrainPolicy
from repro.perfmodel import MONO_117_TCP

OBJECTS = 24
CALLS_PER_OBJECT = 10


@parc.parallel(name="abl.FineGrain", async_methods=["poke"], sync_methods=["count"])
class FineGrain:
    def __init__(self):
        self.pokes = 0

    def poke(self):
        self.pokes += 1

    def count(self):
        return self.pokes


def run_generation():
    workers = [parc.new(FineGrain) for _ in range(OBJECTS)]
    total = 0
    for worker in workers:
        for _ in range(CALLS_PER_OBJECT):
            worker.poke()
    for worker in workers:
        total += worker.count()
    local = sum(1 for worker in workers if worker.parc_is_local)
    for worker in workers:
        worker.parc_release()
    return total, local


def agglomeration_rows():
    rows = []
    for label, grain in (
        ("parallel (no adaptation)", GrainPolicy(max_calls=1)),
        ("aggregation only", GrainPolicy(max_calls=8)),
        ("agglomerated", GrainPolicy(agglomerate=True)),
    ):
        parc.init(nodes=3, grain=grain)
        try:
            total, local = run_generation()
            remote_ios = parc.current_runtime().cluster.total_ios()
            rows.append((label, total, local, remote_ios))
        finally:
            parc.shutdown()
    return rows


def test_abl_aggl_correctness_everywhere(benchmark):
    rows = benchmark(agglomeration_rows)
    for _label, total, _local, _ios in rows:
        assert total == OBJECTS * CALLS_PER_OBJECT


def test_abl_aggl_removes_cluster_objects(benchmark):
    rows = benchmark(agglomeration_rows)
    by_label = {label: (local, ios) for label, _t, local, ios in rows}
    assert by_label["parallel (no adaptation)"][0] == 0  # all remote
    assert by_label["agglomerated"][0] == OBJECTS  # all local
    assert by_label["agglomerated"][1] == 0  # zero IOs hosted


def test_abl_aggl_adaptive_converges(benchmark):
    def adaptive_run():
        controller = AdaptiveGrainController(
            overhead_s=MONO_117_TCP.one_way_latency_s,
            min_samples=8,
            max_calls_cap=64,
            # Microsecond methods against a 520us wire: agglomeration is
            # the right call whenever a full batch cannot amortize even
            # one message (factor 1.0 keeps the decision robust to
            # measurement noise on loaded CI machines).
            agglomerate_factor=1.0,
        )
        parc.init(nodes=3, grain=controller)
        try:
            locals_per_generation = []
            for _generation in range(4):
                _total, local = run_generation()
                locals_per_generation.append(local)
            return locals_per_generation, controller.decide("abl.FineGrain")
        finally:
            parc.shutdown()

    locals_per_generation, final_decision = benchmark.pedantic(
        adaptive_run, rounds=1, iterations=1
    )
    # Early generations parallel, later ones agglomerated.
    assert locals_per_generation[0] == 0
    assert final_decision.agglomerate
    assert locals_per_generation[-1] == OBJECTS


def test_abl_aggl_print_table(benchmark):
    rows = benchmark(agglomeration_rows)
    print()
    print(
        format_table(
            ["configuration", "calls", "local objects", "cluster IOs"],
            [list(row) for row in rows],
            title=(
                f"ABL-AGGL — {OBJECTS} fine-grain objects x "
                f"{CALLS_PER_OBJECT} tiny calls"
            ),
        )
    )
