"""AUTOTUNE — batched replies (returnN) and telemetry-fed grain tuning.

Four claims, asserted on this machine:

* a 64-call synchronous aggregate's reply ships >= 1.4x fewer response
  bytes than 64 per-call replies (one status frame + one columnar result
  block versus 64 status frames each carrying its own ReturnMessage);
* over live tcp, ``call_many`` beats the same 64 calls as per-call
  round trips by >= 1.2x on throughput (one wire round trip and one
  mailbox entry instead of 64 of each);
* the telemetry-fed autotuner converges a grain's ``max_calls`` to
  within 2x of the best static setting for the workload, where "best
  static" is the smallest power-of-two batch within 10% of the peak
  measured throughput (the knee of the batching curve — beyond it the
  curve is flat and "best" is measurement noise);
* a mixed-version farm (one peer without ``invoke_batch``, one with)
  executes every posted call: the fallback negotiation loses nothing.

Rates are best-of-ATTEMPTS: a perf guardrail asks "can this machine
still show the effect", so one pass under transient load does not fail
the build, but a real regression fails every attempt.
"""

from __future__ import annotations

import time

from repro.channels.framing import HEADER_SIZE
from repro.channels.services import ChannelServices
from repro.channels.tcp import TcpChannel
from repro.core.grain import AdaptiveGrainController
from repro.core.impl import ImplementationObject
from repro.core.proxy_object import RemoteGrain
from repro.benchlib.tables import format_table
from repro.remoting import RemotingHost
from repro.remoting.messages import ReturnBatch, ReturnMessage
from repro.serialization import FastBinaryFormatter
from repro.serialization.codec import pack_result_column

CALLS = 64
ATTEMPTS = 3
TRIALS = 4

#: Per-call service time of the convergence workload (seconds) and the
#: number of posted calls per measured run.  The work is a fraction of
#: the per-message wire overhead so the batching setting actually moves
#: throughput: with heavy work the curve is flat from max_calls=1 and
#: "best static" is measurement noise.
WORK_S = 30e-6
SWEEP_CALLS = 192
SWEEP_SETTINGS = (1, 2, 4, 8, 16, 32, 64)


class Service:
    """Deterministic service for the reply benchmarks."""

    def mul(self, a, b):
        return a * b

    def work(self, value):
        deadline = time.perf_counter() + WORK_S
        while time.perf_counter() < deadline:
            pass
        return value


def serve_service(io_class=ImplementationObject, on_execution=None):
    """One tcp host exposing a Service IO; returns (host, io, uri)."""
    host = RemotingHost(name="autotune-server", services=ChannelServices())
    binding = host.listen(TcpChannel(), "127.0.0.1:0")
    io = io_class(Service(), "Service", on_execution=on_execution)
    host.publish(io, "io")
    return host, io, f"tcp://{binding.authority}/io"


def connect_grain(uri, max_calls=4, tuner=None):
    """Client host + RemoteGrain dialing *uri* over its own tcp channel."""
    services = ChannelServices()
    services.register_channel(TcpChannel())
    client = RemotingHost(name="autotune-client", services=services)
    grain = RemoteGrain(client.get_object(uri), max_calls=max_calls)
    if tuner is not None:
        grain.tuner = tuner
        grain.tuner_class = "Service"
    return client, grain


# -- guardrail 1: response bytes ---------------------------------------------


def reply_sizes(calls: int = CALLS) -> tuple[int, int]:
    """Total response bytes on the wire: per-call replies vs one returnN.

    Both forms are priced as framed STATUS_OK responses — body bytes
    plus one frame header each — exactly what crosses the socket.
    """
    formatter = FastBinaryFormatter()
    results = [index * 0.5 for index in range(calls)]
    per_call = sum(
        HEADER_SIZE + len(formatter.dumps(ReturnMessage(value=value)))
        for value in results
    )
    batch = ReturnMessage(
        value=ReturnBatch(
            count=calls, results=pack_result_column(results), errors=()
        )
    )
    batched = HEADER_SIZE + len(formatter.dumps(batch))
    return per_call, batched


def test_returnn_reply_ships_fewer_bytes(benchmark):
    per_call, batched = benchmark(reply_sizes)
    ratio = per_call / batched
    print()
    print(
        format_table(
            ["form", "bytes"],
            [
                [f"per-call replies ({CALLS} frames)", per_call],
                ["returnN aggregate (1 frame)", batched],
                ["ratio", round(ratio, 2)],
            ],
            title=f"AUTOTUNE — response bytes, {CALLS} float results",
        )
    )
    assert ratio >= 1.4, (
        f"returnN reply is only {ratio:.2f}x smaller (need >= 1.4x)"
    )


# -- guardrail 2: live round-trip throughput ---------------------------------


def roundtrip_rates(calls: int = CALLS, trials: int = TRIALS) -> dict:
    """Calls/second over live tcp: call_many vs a per-call invoke loop."""
    host, io, uri = serve_service()
    client, grain = connect_grain(uri)
    batch = [((float(index), 3.0), {}) for index in range(calls)]
    expected = [float(index) * 3.0 for index in range(calls)]
    rates = {"call_many": 0.0, "per_call": 0.0}
    try:
        assert grain.call_many("mul", batch) == expected  # warm up
        for _ in range(trials):
            started = time.perf_counter()
            grain.call_many("mul", batch)
            rates["call_many"] = max(
                rates["call_many"],
                calls / (time.perf_counter() - started),
            )
            started = time.perf_counter()
            for args, kwargs in batch:
                grain.call("mul", args, kwargs)
            rates["per_call"] = max(
                rates["per_call"],
                calls / (time.perf_counter() - started),
            )
    finally:
        grain.dispose()
        client.close()
        io.dispose()
        host.close()
    return rates


def test_call_many_beats_per_call_roundtrips(benchmark):
    def best_rates():
        best = {"call_many": 0.0, "per_call": 0.0}
        for _ in range(ATTEMPTS):
            rates = roundtrip_rates()
            if (
                best["per_call"] == 0.0
                or rates["call_many"] / rates["per_call"]
                > best["call_many"] / best["per_call"]
            ):
                best = rates
            if best["call_many"] / best["per_call"] >= 1.2:
                break
        return best

    rates = benchmark.pedantic(best_rates, rounds=1, iterations=1)
    ratio = rates["call_many"] / rates["per_call"]
    print()
    print(
        format_table(
            ["path", "calls/s"],
            [
                ["call_many (returnN)", round(rates["call_many"])],
                ["per-call invokes", round(rates["per_call"])],
                ["ratio", round(ratio, 2)],
            ],
            title=f"AUTOTUNE — {CALLS} sync calls over tcp",
        )
    )
    assert ratio >= 1.2, (
        f"call_many is only {ratio:.2f}x per-call round trips (need >= 1.2x)"
    )


# -- guardrail 3: autotuner convergence --------------------------------------


def _timed_posts(grain, calls: int) -> float:
    """Seconds to post *calls* async invocations and drain them."""
    started = time.perf_counter()
    for index in range(calls):
        grain.post("work", (index,), {})
    grain.drain()
    return time.perf_counter() - started


def static_sweep(grain) -> dict[int, float]:
    """Measured throughput (calls/s) for each static max_calls setting.

    One grain, retuned between runs (its buffer is empty at each
    boundary): disposing per-setting would remote-dispose the shared IO.
    """
    throughput = {}
    for setting in SWEEP_SETTINGS:
        grain.max_calls = setting
        _timed_posts(grain, 32)  # warm up
        elapsed = _timed_posts(grain, SWEEP_CALLS)
        throughput[setting] = SWEEP_CALLS / elapsed
    return throughput


#: A static setting is "as good as the best" when its throughput is
#: within this fraction of the peak — beyond the knee of the batching
#: curve the plateau is scheduler noise and argmax is a dice roll.
KNEE_FRACTION = 0.90


def best_static_setting(throughput: dict[int, float]) -> int:
    """The knee: smallest setting within KNEE_FRACTION of the peak."""
    peak = max(throughput.values())
    for setting in sorted(throughput):
        if throughput[setting] >= KNEE_FRACTION * peak:
            return setting
    return max(throughput)


def measured_overhead_s(grain, rounds: int = 50) -> float:
    """Live per-message cost: one synchronous round trip's wall time.

    The PO sender pays one full round trip per shipped message (the
    mailbox acknowledges admission), so the round trip *is* the
    per-message overhead the packing formula amortizes.  Feeding the
    measured figure to the controller instead of the conservative
    config default is exactly the telemetry-fed loop under test.
    """
    started = time.perf_counter()
    for _ in range(rounds):
        grain.call("mul", (1.0, 2.0), {})
    return (time.perf_counter() - started) / rounds


def adaptive_converged_max_calls(grain) -> int:
    """Post the same workload through a tuner-fed grain; final max_calls."""
    # Two sweeps: the first feeds the per-method EWMA past min_samples,
    # the second lets the retune hook apply it.
    _timed_posts(grain, SWEEP_CALLS)
    _timed_posts(grain, SWEEP_CALLS)
    return grain.max_calls


def convergence_run() -> dict:
    # The controller is constructed only after the transport's real
    # per-message cost is known — deferred below.
    controller = None
    host, io, uri = serve_service(
        on_execution=lambda *args, **kwargs: (
            controller.observe_execution(*args, **kwargs)
            if controller is not None
            else None
        )
    )
    static_client, static_grain = connect_grain(uri, max_calls=1)
    overhead_s = measured_overhead_s(static_grain)
    controller = AdaptiveGrainController(overhead_s=overhead_s)
    tuned_client, tuned_grain = connect_grain(
        uri, max_calls=4, tuner=controller
    )
    try:
        throughput = static_sweep(static_grain)
        best = best_static_setting(throughput)
        adaptive = adaptive_converged_max_calls(tuned_grain)
    finally:
        tuned_grain.dispose()  # remote-disposes the shared IO...
        tuned_client.close()
        try:
            static_grain.dispose()  # ...so this one is local-only cleanup
        except Exception:  # noqa: BLE001 - double remote dispose
            pass
        static_client.close()
        io.dispose()
        host.close()
    return {
        "throughput": throughput,
        "overhead_s": overhead_s,
        "best_static": best,
        "adaptive": adaptive,
        "ratio": adaptive / best,
    }


def test_autotuner_converges_near_best_static(benchmark):
    def best_run():
        last = None
        for _ in range(ATTEMPTS):
            last = convergence_run()
            if 0.5 <= last["ratio"] <= 2.0:
                break
        return last

    run = benchmark.pedantic(best_run, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["max_calls", "calls/s"],
            [
                [setting, round(rate)]
                for setting, rate in sorted(run["throughput"].items())
            ]
            + [
                ["best static (knee)", run["best_static"]],
                ["adaptive converged", run["adaptive"]],
            ],
            title=f"AUTOTUNE — {SWEEP_CALLS} posts of {WORK_S * 1e3:.1f} ms work",
        )
    )
    assert 0.5 <= run["ratio"] <= 2.0, (
        f"autotuner converged max_calls={run['adaptive']}, best static is "
        f"{run['best_static']} (need within 2x)"
    )


# -- guardrail 4: mixed-version farm -----------------------------------------


def mixed_farm_accounting(calls: int = CALLS) -> dict:
    """call_many against one old and one new peer: count every call."""

    class OldImplementationObject(ImplementationObject):
        invoke_batch = None  # a peer from before the returnN change
        invoke_columns = None

    batch = [((float(index), 2.0), {}) for index in range(calls)]
    expected = [float(index) * 2.0 for index in range(calls)]
    executed = 0
    fallbacks = 0
    hosts = []
    try:
        for io_class in (ImplementationObject, OldImplementationObject):
            host, io, uri = serve_service(io_class=io_class)
            hosts.append((host, io))
            client, grain = connect_grain(uri)
            try:
                assert grain.call_many("mul", batch) == expected
                assert grain.call_many("mul", batch) == expected
                executed += io.stats()["processed"]
                fallbacks += 0 if grain._sync_batched else 1
            finally:
                grain.dispose()
                client.close()
    finally:
        for host, io in hosts:
            io.dispose()
            host.close()
    posted = 2 * 2 * calls
    return {
        "posted": posted,
        "executed": executed,
        "lost": posted - executed,
        "fallback_peers": fallbacks,
    }


def test_mixed_farm_loses_zero_calls(benchmark):
    stats = benchmark.pedantic(
        mixed_farm_accounting, rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["counter", "value"],
            [[name, value] for name, value in sorted(stats.items())],
            title="AUTOTUNE — mixed old/new peer farm accounting",
        )
    )
    assert stats["lost"] == 0, stats
    assert stats["fallback_peers"] == 1, stats  # exactly the old peer
