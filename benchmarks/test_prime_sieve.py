"""TAB-SIEVE — prime sieve sequential time across VMs (paper §4, text).

"However, running another application, a prime number sieve, the Mono
execution time is about the same as the JVM."

Integer workloads did not show the Mono FP penalty — hence the separate
``compute_scale_int`` in the platform models.  The real sieve provides the
baseline; the assertions check the int scales match the paper's claim
(Mono ≈ JVM) while the float scales do not.
"""

from __future__ import annotations

import pytest

from repro.apps.primes import sieve
from repro.benchlib.tables import format_table
from repro.perfmodel import MONO_117_TCP, MS_NET
from repro.perfmodel.platforms import SUN_JVM

LIMIT = 200_000


def sieve_rows():
    import time

    started = time.perf_counter()
    primes = sieve(LIMIT)
    base_s = time.perf_counter() - started
    platforms = [SUN_JVM, MS_NET, MONO_117_TCP]
    return (
        base_s,
        len(primes),
        [
            (model.name, model.compute_scale_int, base_s * model.compute_scale_int)
            for model in platforms
        ],
    )


def test_tab_sieve_mono_matches_jvm(benchmark):
    _base, count, rows = benchmark(sieve_rows)
    assert count == 17984  # pi(200000)
    scales = {name: scale for name, scale, _time in rows}
    assert scales["Mono 1.1.7 (Tcp)"] == pytest.approx(
        scales["Sun JVM (SDK 1.4.2)"], rel=0.05
    )


def test_tab_sieve_contrast_with_float_gap(benchmark):
    """The paper's point: int parity coexists with the 1.4x float gap."""
    benchmark(sieve_rows)
    assert MONO_117_TCP.compute_scale_int == pytest.approx(1.0)
    assert MONO_117_TCP.compute_scale_float == pytest.approx(1.4)


def test_tab_sieve_print_table(benchmark):
    base, count, rows = benchmark(sieve_rows)
    print()
    print(
        format_table(
            ["virtual machine", "int scale vs JVM", f"sieve({LIMIT}) (s)"],
            [[name, scale, round(time_s, 4)] for name, scale, time_s in rows],
            title=(
                f"TAB-SIEVE — prime sieve, {count} primes "
                f"(python baseline {base:.4f}s; paper: Mono ≈ JVM)"
            ),
        )
    )
