"""Record wire + backplane + latency-table numbers to a JSON artifact.

Usage::

    PYTHONPATH=src python benchmarks/record.py [output.json]
    PYTHONPATH=src python benchmarks/record.py overload [output.json]

Writes ``BENCH_wire.json`` (or the given path): ping-pong round trips per
second for fast/legacy over tcp and aio at several payload sizes, the
same payloads over the shm backplane, the columnar-versus-row aggregate
encoding sizes, the TAB-LAT latency table (modeled one-way latencies and
live localhost round trips per stack), and the derived ratios the test
suite guards.  Absolute rates are this machine's; the ratios are the
comparable shape.  ``cpus`` is recorded because the shm-vs-tcp ratio is
scheduling-bound: with one CPU the spin path never runs and every round
trip costs the same two context switches tcp pays, so only multi-core
hosts can show the spin-path speedup the CI guardrail asserts.

The ``overload`` suite writes ``BENCH_overload.json`` instead: the
credits-on/off ping-pong rates (the flow-control overhead guardrail),
admitted/shed latency percentiles for a saturated bounded mailbox, and
the elastic scale-out/in cycle's call accounting.

The ``sched`` suite writes ``BENCH_sched.json``: makespans for the
Zipf-skewed placement bench under static round-robin, the
perfect-knowledge LPT oracle, and the adaptive work-stealing scheduler,
plus the migration accounting (grains moved, calls carried, losses) and
the two guarded ratios (adaptive within 1.5x of oracle, at least 1.3x
over round-robin).
"""

from __future__ import annotations

import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from test_shm_backplane import pingpong_rate as backplane_pingpong_rate
from test_wire_fastpath import PAYLOAD_BYTES, columnar_sizes, pingpong_rate

from repro.aio import AioTcpChannel
from repro.benchlib import (
    live_pingpong_mpi,
    live_pingpong_nio,
    live_pingpong_remoting,
    live_pingpong_rmi,
)
from repro.channels.tcp import TcpChannel
from repro.perfmodel import JAVA_NIO, JAVA_RMI, MONO_117_TCP, MPI_MPICH
from repro.shm import ShmChannel

SIZES = (1024, 16 * 1024, PAYLOAD_BYTES)

LATENCY_ROUNDS = 30
LATENCY_N_INTS = 64


def collect_latency_table() -> dict:
    """The TAB-LAT rows: modeled one-way latencies + live round trips."""
    return {
        "modeled_one_way_s": {
            "mpi": MPI_MPICH.one_way_latency_s,
            "java_rmi": JAVA_RMI.one_way_latency_s,
            "mono_tcp": MONO_117_TCP.one_way_latency_s,
            "java_nio": JAVA_NIO.one_way_latency_s,
        },
        "live_round_trip_s": {
            "mpi_threads": live_pingpong_mpi(LATENCY_N_INTS, LATENCY_ROUNDS),
            "nio_sockets": live_pingpong_nio(LATENCY_N_INTS, LATENCY_ROUNDS),
            "rmi_sockets": live_pingpong_rmi(LATENCY_N_INTS, LATENCY_ROUNDS),
            "remoting_tcp": live_pingpong_remoting(
                LATENCY_N_INTS, LATENCY_ROUNDS, "tcp"
            ),
            "remoting_shm": live_pingpong_remoting(
                LATENCY_N_INTS, LATENCY_ROUNDS, "shm"
            ),
            "remoting_http": live_pingpong_remoting(
                LATENCY_N_INTS, LATENCY_ROUNDS, "http"
            ),
        },
        "rounds": LATENCY_ROUNDS,
        "n_ints": LATENCY_N_INTS,
    }


def collect() -> dict:
    pingpong = {}
    for size in SIZES:
        pingpong[str(size)] = {
            "tcp_fast_rt_s": pingpong_rate(
                lambda: TcpChannel(fastpath=True), size
            ),
            "tcp_legacy_rt_s": pingpong_rate(
                lambda: TcpChannel(fastpath=False), size
            ),
            "aio_fast_rt_s": pingpong_rate(
                lambda: AioTcpChannel(fastpath=True), size
            ),
            "aio_legacy_rt_s": pingpong_rate(
                lambda: AioTcpChannel(fastpath=False), size
            ),
            "shm_rt_s": backplane_pingpong_rate(
                lambda: ShmChannel(), "auto", size
            ),
        }
    row_bytes, columnar_bytes = columnar_sizes()
    guarded = pingpong[str(PAYLOAD_BYTES)]
    return {
        "benchmark": "wire_fastpath",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "payload_sizes": list(SIZES),
        "pingpong": pingpong,
        "columnar": {
            "calls": 64,
            "row_bytes": row_bytes,
            "columnar_bytes": columnar_bytes,
            "ratio": row_bytes / columnar_bytes,
        },
        "latency_table": collect_latency_table(),
        "guarded_ratios": {
            "tcp_pingpong_64k": (
                guarded["tcp_fast_rt_s"] / guarded["tcp_legacy_rt_s"]
            ),
            "aio_pingpong_64k": (
                guarded["aio_fast_rt_s"] / guarded["aio_legacy_rt_s"]
            ),
            "shm_vs_tcp_64k": guarded["shm_rt_s"] / guarded["tcp_fast_rt_s"],
            "columnar_size_64_calls": row_bytes / columnar_bytes,
        },
    }


def collect_overload() -> dict:
    from test_overload import (
        CALLERS,
        MAILBOX_DEPTH,
        SERVICE_S,
        _percentile,
        credit_rates,
        elastic_cycle_stats,
        saturation_latencies,
    )

    rates = credit_rates()
    saturation = saturation_latencies()
    elastic = elastic_cycle_stats()
    admitted = saturation["admitted"]
    shed = saturation["shed"]
    return {
        "benchmark": "overload",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "credit_pingpong": rates,
        "saturation": {
            "service_s": SERVICE_S,
            "mailbox_depth": MAILBOX_DEPTH,
            "callers": CALLERS,
            "admitted": len(admitted),
            "shed": len(shed),
            "server_shed": saturation["server_shed"],
            "admitted_p50_s": _percentile(admitted, 0.50),
            "admitted_p99_s": _percentile(admitted, 0.99),
            "shed_p99_s": _percentile(shed, 0.99) if shed else None,
        },
        "elastic_cycle": elastic,
        "guarded_ratios": {
            "credits_on_vs_off": (
                rates["credits-on"] / rates["credits-off"]
            ),
            "elastic_tested_vs_posted": (
                elastic["tested"] / elastic["posted"]
            ),
        },
    }


def collect_sched() -> dict:
    from test_scheduler import (
        AGG_CALLS,
        CALLS_TOTAL,
        GRAINS,
        NODES,
        WORK_S,
        ZIPF_S,
        run_all,
    )

    results = run_all()
    adaptive = results["adaptive"]
    return {
        "benchmark": "sched",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "workload": {
            "nodes": NODES,
            "grains": GRAINS,
            "zipf_s": ZIPF_S,
            "calls_total": CALLS_TOTAL,
            "work_s": WORK_S,
            "agg_calls": AGG_CALLS,
        },
        "scenarios": results,
        "guarded_ratios": {
            "adaptive_vs_oracle": (
                adaptive["makespan_s"] / results["oracle"]["makespan_s"]
            ),
            "round_robin_vs_adaptive": (
                results["round_robin"]["makespan_s"]
                / adaptive["makespan_s"]
            ),
        },
    }


def main(argv: list[str]) -> int:
    if argv and argv[0] == "overload":
        out_path = argv[1] if len(argv) > 1 else "BENCH_overload.json"
        document = collect_overload()
    elif argv and argv[0] == "sched":
        out_path = argv[1] if len(argv) > 1 else "BENCH_sched.json"
        document = collect_sched()
    else:
        out_path = argv[0] if argv else "BENCH_wire.json"
        document = collect()
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    ratios = document["guarded_ratios"]
    print(f"wrote {out_path}")
    for name, value in sorted(ratios.items()):
        print(f"  {name}: {value:.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
