"""Record wire fast-path numbers to a JSON artifact (CI trend tracking).

Usage::

    PYTHONPATH=src python benchmarks/record.py [output.json]

Writes ``BENCH_wire.json`` (or the given path): ping-pong round trips per
second for fast/legacy over tcp and aio at several payload sizes, the
columnar-versus-row aggregate encoding sizes, and the derived ratios the
test suite guards.  Absolute rates are this machine's; the ratios are the
comparable shape.
"""

from __future__ import annotations

import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from test_wire_fastpath import PAYLOAD_BYTES, columnar_sizes, pingpong_rate

from repro.aio import AioTcpChannel
from repro.channels.tcp import TcpChannel

SIZES = (1024, 16 * 1024, PAYLOAD_BYTES)


def collect() -> dict:
    pingpong = {}
    for size in SIZES:
        pingpong[str(size)] = {
            "tcp_fast_rt_s": pingpong_rate(
                lambda: TcpChannel(fastpath=True), size
            ),
            "tcp_legacy_rt_s": pingpong_rate(
                lambda: TcpChannel(fastpath=False), size
            ),
            "aio_fast_rt_s": pingpong_rate(
                lambda: AioTcpChannel(fastpath=True), size
            ),
            "aio_legacy_rt_s": pingpong_rate(
                lambda: AioTcpChannel(fastpath=False), size
            ),
        }
    row_bytes, columnar_bytes = columnar_sizes()
    guarded = pingpong[str(PAYLOAD_BYTES)]
    return {
        "benchmark": "wire_fastpath",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "payload_sizes": list(SIZES),
        "pingpong": pingpong,
        "columnar": {
            "calls": 64,
            "row_bytes": row_bytes,
            "columnar_bytes": columnar_bytes,
            "ratio": row_bytes / columnar_bytes,
        },
        "guarded_ratios": {
            "tcp_pingpong_64k": (
                guarded["tcp_fast_rt_s"] / guarded["tcp_legacy_rt_s"]
            ),
            "aio_pingpong_64k": (
                guarded["aio_fast_rt_s"] / guarded["aio_legacy_rt_s"]
            ),
            "columnar_size_64_calls": row_bytes / columnar_bytes,
        },
    }


def main(argv: list[str]) -> int:
    out_path = argv[0] if argv else "BENCH_wire.json"
    document = collect()
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    ratios = document["guarded_ratios"]
    print(f"wrote {out_path}")
    for name, value in sorted(ratios.items()):
        print(f"  {name}: {value:.2f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
