"""Record the benchmark families' numbers to per-suite JSON artifacts.

Usage::

    PYTHONPATH=src python benchmarks/record.py [suite] [output.json]
    PYTHONPATH=src python benchmarks/record.py all
    PYTHONPATH=src python benchmarks/record.py compare COMMITTED FRESH

Suites (each maps to one ``benchmarks/test_*`` family and one committed
artifact): ``wire`` (the default) -> ``BENCH_wire.json``, ``overload``
-> ``BENCH_overload.json``, ``sched`` -> ``BENCH_sched.json``,
``autotune`` -> ``BENCH_autotune.json``.  ``all`` records every suite to
its default path.  Absolute rates are this machine's; the
``guarded_ratios`` block in each document is the comparable shape.
``cpus`` is recorded because several ratios are scheduling-bound: with
one CPU a spin path never runs, every round trip costs two context
switches, and fast/legacy collapse toward parity — only multi-core
hosts can show those speedups.

* ``wire``: ping-pong round trips per second for fast/legacy over tcp
  and aio at several payload sizes, the same payloads over the shm
  backplane, the columnar-versus-row aggregate encoding sizes, and the
  TAB-LAT latency table (modeled one-way latencies and live localhost
  round trips per stack).
* ``overload``: the credits-on/off ping-pong rates (the flow-control
  overhead guardrail), admitted/shed latency percentiles for a
  saturated bounded mailbox, and the elastic scale-out/in cycle's call
  accounting.
* ``sched``: makespans for the Zipf-skewed placement bench under static
  round-robin, the perfect-knowledge LPT oracle, and the adaptive
  work-stealing scheduler, plus the migration accounting and the 10k
  grain scale run's call accounting.
* ``autotune``: returnN reply bytes versus per-call replies, call_many
  versus per-call round-trip throughput over live tcp, the telemetry-fed
  autotuner's converged ``max_calls`` against the static sweep's knee,
  and the mixed old/new-peer farm's call accounting.

``compare`` reads two recordings of the same suite — the committed
artifact and a fresh one — and fails (exit 1) when a guarded ratio
regressed by more than ``TOLERANCE``.  Timing-derived ratios are
hardware-bound, so when the two documents disagree on ``cpus`` those
only warn; byte-size and call-accounting ratios hold on any machine and
always gate.
"""

from __future__ import annotations

import json
import os
import platform
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from test_shm_backplane import pingpong_rate as backplane_pingpong_rate
from test_wire_fastpath import PAYLOAD_BYTES, columnar_sizes, pingpong_rate

from repro.aio import AioTcpChannel
from repro.benchlib import (
    live_pingpong_mpi,
    live_pingpong_nio,
    live_pingpong_remoting,
    live_pingpong_rmi,
)
from repro.channels.tcp import TcpChannel
from repro.perfmodel import JAVA_NIO, JAVA_RMI, MONO_117_TCP, MPI_MPICH
from repro.shm import ShmChannel

SIZES = (1024, 16 * 1024, PAYLOAD_BYTES)

LATENCY_ROUNDS = 30
LATENCY_N_INTS = 64


def collect_latency_table() -> dict:
    """The TAB-LAT rows: modeled one-way latencies + live round trips."""
    return {
        "modeled_one_way_s": {
            "mpi": MPI_MPICH.one_way_latency_s,
            "java_rmi": JAVA_RMI.one_way_latency_s,
            "mono_tcp": MONO_117_TCP.one_way_latency_s,
            "java_nio": JAVA_NIO.one_way_latency_s,
        },
        "live_round_trip_s": {
            "mpi_threads": live_pingpong_mpi(LATENCY_N_INTS, LATENCY_ROUNDS),
            "nio_sockets": live_pingpong_nio(LATENCY_N_INTS, LATENCY_ROUNDS),
            "rmi_sockets": live_pingpong_rmi(LATENCY_N_INTS, LATENCY_ROUNDS),
            "remoting_tcp": live_pingpong_remoting(
                LATENCY_N_INTS, LATENCY_ROUNDS, "tcp"
            ),
            "remoting_shm": live_pingpong_remoting(
                LATENCY_N_INTS, LATENCY_ROUNDS, "shm"
            ),
            "remoting_http": live_pingpong_remoting(
                LATENCY_N_INTS, LATENCY_ROUNDS, "http"
            ),
        },
        "rounds": LATENCY_ROUNDS,
        "n_ints": LATENCY_N_INTS,
    }


def collect() -> dict:
    pingpong = {}
    for size in SIZES:
        pingpong[str(size)] = {
            "tcp_fast_rt_s": pingpong_rate(
                lambda: TcpChannel(fastpath=True), size
            ),
            "tcp_legacy_rt_s": pingpong_rate(
                lambda: TcpChannel(fastpath=False), size
            ),
            "aio_fast_rt_s": pingpong_rate(
                lambda: AioTcpChannel(fastpath=True), size
            ),
            "aio_legacy_rt_s": pingpong_rate(
                lambda: AioTcpChannel(fastpath=False), size
            ),
            "shm_rt_s": backplane_pingpong_rate(
                lambda: ShmChannel(), "auto", size
            ),
        }
    row_bytes, columnar_bytes = columnar_sizes()
    guarded = pingpong[str(PAYLOAD_BYTES)]
    return {
        "benchmark": "wire_fastpath",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "payload_sizes": list(SIZES),
        "pingpong": pingpong,
        "columnar": {
            "calls": 64,
            "row_bytes": row_bytes,
            "columnar_bytes": columnar_bytes,
            "ratio": row_bytes / columnar_bytes,
        },
        "latency_table": collect_latency_table(),
        "guarded_ratios": {
            "tcp_pingpong_64k": (
                guarded["tcp_fast_rt_s"] / guarded["tcp_legacy_rt_s"]
            ),
            "aio_pingpong_64k": (
                guarded["aio_fast_rt_s"] / guarded["aio_legacy_rt_s"]
            ),
            "shm_vs_tcp_64k": guarded["shm_rt_s"] / guarded["tcp_fast_rt_s"],
            "columnar_size_64_calls": row_bytes / columnar_bytes,
        },
    }


def collect_overload() -> dict:
    from test_overload import (
        CALLERS,
        MAILBOX_DEPTH,
        SERVICE_S,
        _percentile,
        credit_rates,
        elastic_cycle_stats,
        saturation_latencies,
    )

    rates = credit_rates()
    saturation = saturation_latencies()
    elastic = elastic_cycle_stats()
    admitted = saturation["admitted"]
    shed = saturation["shed"]
    return {
        "benchmark": "overload",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "credit_pingpong": rates,
        "saturation": {
            "service_s": SERVICE_S,
            "mailbox_depth": MAILBOX_DEPTH,
            "callers": CALLERS,
            "admitted": len(admitted),
            "shed": len(shed),
            "server_shed": saturation["server_shed"],
            "admitted_p50_s": _percentile(admitted, 0.50),
            "admitted_p99_s": _percentile(admitted, 0.99),
            "shed_p99_s": _percentile(shed, 0.99) if shed else None,
        },
        "elastic_cycle": elastic,
        "guarded_ratios": {
            "credits_on_vs_off": (
                rates["credits-on"] / rates["credits-off"]
            ),
            "elastic_tested_vs_posted": (
                elastic["tested"] / elastic["posted"]
            ),
        },
    }


def collect_sched() -> dict:
    from test_scheduler import (
        AGG_CALLS,
        CALLS_TOTAL,
        GRAINS,
        NODES,
        SCALE_CALLS_TOTAL,
        SCALE_GRAINS,
        WORK_S,
        ZIPF_S,
        run_all,
        run_scale,
    )

    results = run_all()
    adaptive = results["adaptive"]
    scale = run_scale()
    return {
        "benchmark": "sched",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "workload": {
            "nodes": NODES,
            "grains": GRAINS,
            "zipf_s": ZIPF_S,
            "calls_total": CALLS_TOTAL,
            "work_s": WORK_S,
            "agg_calls": AGG_CALLS,
        },
        "scenarios": results,
        "scale_10k": {
            "grains": SCALE_GRAINS,
            "calls_target": SCALE_CALLS_TOTAL,
            **scale,
        },
        "guarded_ratios": {
            "adaptive_vs_oracle": (
                adaptive["makespan_s"] / results["oracle"]["makespan_s"]
            ),
            "round_robin_vs_adaptive": (
                results["round_robin"]["makespan_s"]
                / adaptive["makespan_s"]
            ),
            "scale_10k_executed_vs_posted": (
                scale["executed"] / scale["posted"]
            ),
        },
    }


def collect_autotune() -> dict:
    from test_autotune import (
        CALLS,
        SWEEP_CALLS,
        WORK_S,
        convergence_run,
        mixed_farm_accounting,
        reply_sizes,
        roundtrip_rates,
    )

    per_call_bytes, batched_bytes = reply_sizes()
    rates = roundtrip_rates()
    convergence = convergence_run()
    farm = mixed_farm_accounting()
    return {
        "benchmark": "autotune",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "reply_bytes": {
            "calls": CALLS,
            "per_call_bytes": per_call_bytes,
            "returnn_bytes": batched_bytes,
        },
        "roundtrip_rates": rates,
        "convergence": {
            "work_s": WORK_S,
            "sweep_calls": SWEEP_CALLS,
            **convergence,
        },
        "mixed_farm": farm,
        "guarded_ratios": {
            "returnn_reply_bytes_64_calls": per_call_bytes / batched_bytes,
            "callmany_vs_percall_tcp": (
                rates["call_many"] / rates["per_call"]
            ),
            "autotune_vs_best_static": convergence["ratio"],
            "mixed_farm_executed_vs_posted": farm["executed"] / farm["posted"],
        },
    }


SUITES = {
    "wire": (collect, "BENCH_wire.json"),
    "overload": (collect_overload, "BENCH_overload.json"),
    "sched": (collect_sched, "BENCH_sched.json"),
    "autotune": (collect_autotune, "BENCH_autotune.json"),
}

#: Maximum relative regression a guarded ratio may show against the
#: committed recording before ``compare`` fails the build.
TOLERANCE = 0.15

#: Ratios where smaller is better (everything else: bigger is better).
LOWER_IS_BETTER = {"adaptive_vs_oracle"}

#: Ratios guarded as "inside a window", not "at least the old value":
#: the autotuner's converged/best-static quotient is correct anywhere
#: within 2x either way, so drift inside the window is not regression.
BOUNDED = {"autotune_vs_best_static": (0.5, 2.0)}

#: Ratios derived from encoded byte sizes or call accounting.  They are
#: identical on any hardware, so they gate even when the committed and
#: fresh recordings come from machines with different ``cpus`` — unlike
#: timing ratios, which only warn across hardware.
HARDWARE_INDEPENDENT = {
    "columnar_size_64_calls",
    "returnn_reply_bytes_64_calls",
    "elastic_tested_vs_posted",
    "mixed_farm_executed_vs_posted",
    "scale_10k_executed_vs_posted",
}


def compare(committed_path: str, fresh_path: str) -> int:
    """Fail when *fresh_path*'s guarded ratios regressed vs the artifact."""
    with open(committed_path, encoding="utf-8") as handle:
        committed = json.load(handle)
    with open(fresh_path, encoding="utf-8") as handle:
        fresh = json.load(handle)
    if committed.get("benchmark") != fresh.get("benchmark"):
        print(
            f"cannot compare suites: {committed.get('benchmark')!r} "
            f"({committed_path}) vs {fresh.get('benchmark')!r} ({fresh_path})"
        )
        return 1
    same_hardware = committed.get("cpus") == fresh.get("cpus")
    failures = 0
    print(
        f"compare {committed.get('benchmark')}: {committed_path} "
        f"(cpus={committed.get('cpus')}) vs {fresh_path} "
        f"(cpus={fresh.get('cpus')})"
    )
    for name, old in sorted(committed.get("guarded_ratios", {}).items()):
        new = fresh.get("guarded_ratios", {}).get(name)
        if new is None:
            print(f"  FAIL {name}: missing from {fresh_path}")
            failures += 1
            continue
        if name in BOUNDED:
            low, high = BOUNDED[name]
            if low <= new <= high:
                print(f"  ok   {name}: {new:.2f} within [{low}, {high}]")
            else:
                print(
                    f"  FAIL {name}: {new:.2f} outside [{low}, {high}] "
                    f"(was {old:.2f})"
                )
                failures += 1
            continue
        if name in LOWER_IS_BETTER:
            regressed = new > old * (1.0 + TOLERANCE)
        else:
            regressed = new < old * (1.0 - TOLERANCE)
        if not regressed:
            print(f"  ok   {name}: {new:.2f} (was {old:.2f})")
        elif name in HARDWARE_INDEPENDENT or same_hardware:
            print(
                f"  FAIL {name}: {new:.2f} regressed more than "
                f"{TOLERANCE:.0%} from {old:.2f}"
            )
            failures += 1
        else:
            print(
                f"  warn {name}: {new:.2f} vs {old:.2f}, but the "
                f"recordings disagree on cpus — timing ratio not gated"
            )
    if failures:
        print(f"{failures} guarded ratio(s) regressed")
        return 1
    print("no guarded ratio regressed")
    return 0


def record(suite: str, out_path: str | None = None) -> int:
    collector, default_path = SUITES[suite]
    out_path = out_path or default_path
    document = collector()
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")
    for name, value in sorted(document["guarded_ratios"].items()):
        print(f"  {name}: {value:.2f}")
    return 0


def main(argv: list[str]) -> int:
    if argv and argv[0] == "compare":
        if len(argv) != 3:
            print("usage: record.py compare COMMITTED.json FRESH.json")
            return 2
        return compare(argv[1], argv[2])
    if argv and argv[0] == "all":
        status = 0
        for suite in SUITES:
            status = max(status, record(suite))
        return status
    if argv and argv[0] in SUITES:
        return record(argv[0], argv[1] if len(argv) > 1 else None)
    # Back-compat: a bare output path records the wire suite.
    return record("wire", argv[0] if argv else None)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
