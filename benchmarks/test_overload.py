"""OVERLOAD — flow-control guardrails: credit overhead, shed latency, elasticity.

Three claims, asserted on this machine:

* credit-based backpressure is close to free when the cluster is NOT
  saturated: ping-pong throughput with credits on is >= 0.95x the
  credits-off rate (the exchange adds one flag bit on requests, four
  bytes on responses, and an uncontended gate acquire/release);
* a bounded mailbox keeps latency bounded under saturating load: the
  p99 of *admitted* calls stays within the budget implied by the lane
  depth and service time, and shed calls fail fast instead of queueing
  (an unbounded mailbox would stretch every caller's latency with the
  full backlog);
* the elastic worker loop loses nothing: a saturating prime-farm burst
  scales the cluster out, draining it scales back in, and every posted
  candidate was tested exactly once through the whole cycle.

Like every suite here the assertions are shapes and ratios, never
absolute rates.
"""

from __future__ import annotations

import threading
import time

import repro.core as parc
from repro.apps.primes import PrimeServer
from repro.benchlib.tables import format_table
from repro.channels.tcp import TcpChannel
from repro.core import GrainPolicy
from repro.errors import OverloadError, ParcError
from repro.flow import CreditGrantor
from repro.remoting.messages import CallMessage

PAYLOAD_BYTES = 1024
ROUNDS = 400
TRIALS = 5
ATTEMPTS = 3

#: Admission-control scenario: service time, lane bound, concurrency.
SERVICE_S = 0.02
MAILBOX_DEPTH = 4
CALLERS = 24


def _granting_echo():
    """Echo handler advertising credits, as a real remoting host does."""

    def handler(path, body, headers):  # type: ignore[no-untyped-def]
        return bytes(body)

    handler.credit_grantor = CreditGrantor()
    return handler


def credit_pingpong_rate(
    credits: bool, payload_size: int = PAYLOAD_BYTES, trials: int = TRIALS
) -> float:
    """Round trips/second with the credit exchange on or off.

    The server always has a grantor (the deployed configuration); only
    the client side toggles, so the comparison prices exactly what a
    credit-aware client adds: the request flag, the gate bookkeeping,
    and the four-byte grant parsed off every response.
    """
    server = TcpChannel(credits=credits)
    client = TcpChannel(credits=credits)
    binding = server.listen("127.0.0.1:0", _granting_echo())
    message = CallMessage(
        uri="pingpong", method="echo", args=(bytes(payload_size),)
    )
    try:
        client.round_trip(binding.authority, "pingpong", message)  # warm up
        best = float("inf")
        for _ in range(trials):
            started = time.perf_counter()
            for _ in range(ROUNDS):
                result = client.round_trip(
                    binding.authority, "pingpong", message
                )
            best = min(best, time.perf_counter() - started)
        assert result.args == message.args
        return ROUNDS / best
    finally:
        client.close()
        binding.close()
        server.close()


def credit_rates() -> dict[str, float]:
    """Best-of-TRIALS rates, credits-on/off trials interleaved."""
    rates = {"credits-on": 0.0, "credits-off": 0.0}
    for _ in range(TRIALS):
        rates["credits-on"] = max(
            rates["credits-on"], credit_pingpong_rate(True, trials=1)
        )
        rates["credits-off"] = max(
            rates["credits-off"], credit_pingpong_rate(False, trials=1)
        )
    return rates


@parc.parallel(name="bench.overload.Slow", sync_methods=["slow"])
class Slow:
    """Fixed service time per call: queueing is the only variable."""

    def slow(self, value, delay=SERVICE_S):
        time.sleep(delay)
        return value * 2


def _percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def saturation_latencies() -> dict:
    """Saturate one bounded node; time every call by outcome.

    Returns admitted/shed latency lists plus the server-side shed count
    — callers cross-check that nothing was silently dropped.
    """
    rt = parc.init(
        nodes=1,
        channel="tcp",
        grain=GrainPolicy(),
        mailbox_depth=MAILBOX_DEPTH,
    )
    admitted: list[float] = []
    shed: list[float] = []
    failures: list[BaseException] = []
    lock = threading.Lock()
    try:
        po = parc.new(Slow)
        po.slow(0)  # warm the connection + worker thread

        def one(index):
            started = time.perf_counter()
            try:
                value = po.slow(index)
                elapsed = time.perf_counter() - started
                with lock:
                    assert value == index * 2
                    admitted.append(elapsed)
            except OverloadError:
                elapsed = time.perf_counter() - started
                with lock:
                    shed.append(elapsed)
            except ParcError as exc:  # anything else is a lost call
                with lock:
                    failures.append(exc)

        threads = [
            threading.Thread(target=one, args=(index,), daemon=True)
            for index in range(CALLERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(t.is_alive() for t in threads), "a call hung"
        server_shed = sum(row.get("shed", 0) for row in rt.cluster.stats())
    finally:
        parc.shutdown()
    return {
        "admitted": admitted,
        "shed": shed,
        "failures": failures,
        "server_shed": server_shed,
    }


def _find_big_prime(floor: int = 10**10) -> int:
    """Smallest prime above *floor* — one trial division costs ~tens of ms."""
    from repro.apps.primes import is_prime

    candidate = floor + 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


def elastic_cycle_stats() -> dict:
    """Saturate an elastic cluster, then drain it; account for every call.

    Scale-in retires the *newest* worker — the one spawned by the loop,
    which placement never assigned a grain to — so the accounting needs
    no respawn machinery: every posted candidate must be tested exactly
    once.
    """
    prime = _find_big_prime()
    rt = parc.init(
        nodes=1,
        channel="tcp",
        grain=GrainPolicy(),
        worker_processes=1,
        worker_modules=("repro.apps.primes",),
        elastic=(1, 2),
    )
    try:
        cluster = rt.cluster
        cluster._elastic_interval_s = 0.05  # re-read on every loop wait
        servers = [parc.new(PrimeServer) for _ in range(4)]
        posted = 0
        deadline = time.monotonic() + 60.0
        while (
            cluster.metrics.snapshot().get("cluster.elastic.scale_out", 0)
            == 0
        ):
            if time.monotonic() > deadline:
                raise AssertionError("elastic loop never scaled out")
            # Top the queues up instead of flooding: deep enough to read
            # as sustained pressure, shallow enough to drain promptly
            # once the load stops (each candidate is ~ms of division).
            if cluster.home_node.stats()["queued"] < 50:
                for server in servers:
                    server.process([prime, prime])
                    posted += 2
            else:
                time.sleep(0.01)
        workers_peak = len(cluster.worker_handles)

        deadline = time.monotonic() + 60.0
        while (
            cluster.metrics.snapshot().get("cluster.elastic.scale_in", 0) == 0
        ):
            if time.monotonic() > deadline:
                raise AssertionError("elastic loop never scaled back in")
            time.sleep(0.05)
        workers_settled = len(cluster.worker_handles)

        for server in servers:
            server.parc_wait()
        tested = sum(server.count() for server in servers)
        snapshot = cluster.metrics.snapshot()
        for server in servers:
            server.parc_release()
    finally:
        parc.shutdown()
    return {
        "posted": posted,
        "tested": tested,
        "workers_peak": workers_peak,
        "workers_settled": workers_settled,
        "scale_out": snapshot.get("cluster.elastic.scale_out", 0),
        "scale_in": snapshot.get("cluster.elastic.scale_in", 0),
    }


class TestCreditOverhead:
    def test_unsaturated_credit_overhead_under_5_percent(self):
        ratio = 0.0
        for _ in range(ATTEMPTS):
            rates = credit_rates()
            ratio = rates["credits-on"] / rates["credits-off"]
            if ratio >= 0.95:
                break
        print()
        print(
            format_table(
                ["config", "round trips/s"],
                [
                    [name, f"{rate:,.0f}"]
                    for name, rate in sorted(rates.items())
                ],
            )
        )
        print(f"credits-on / credits-off: {ratio:.3f}")
        assert ratio >= 0.95, (
            f"credit exchange cost {1 - ratio:.1%} unsaturated "
            f"(budget 5%): {rates}"
        )


class TestBoundedLatency:
    def test_admitted_p99_bounded_and_sheds_fail_fast(self):
        stats = saturation_latencies()
        assert not stats["failures"], stats["failures"]
        admitted, shed = stats["admitted"], stats["shed"]
        assert admitted, "saturation must still admit work"
        assert shed, (
            f"{CALLERS} callers into a depth-{MAILBOX_DEPTH} lane must shed"
        )
        # Nothing lost, and the server counted every shed the clients saw.
        assert len(admitted) + len(shed) == CALLERS
        assert stats["server_shed"] == len(shed)
        # An admitted call waits at most for the bounded backlog (depth
        # tasks plus the executing one), with generous dispatch headroom.
        budget = (MAILBOX_DEPTH + 2) * SERVICE_S * 4
        p99_admitted = _percentile(admitted, 0.99)
        p99_shed = _percentile(shed, 0.99)
        print()
        print(
            format_table(
                ["outcome", "count", "p99 (s)"],
                [
                    ["admitted", str(len(admitted)), f"{p99_admitted:.4f}"],
                    ["shed", str(len(shed)), f"{p99_shed:.4f}"],
                ],
            )
        )
        assert p99_admitted <= budget, (
            f"admitted p99 {p99_admitted:.3f}s blew the bounded-mailbox "
            f"budget {budget:.3f}s"
        )
        # Fail-fast means a shed call never sat behind the backlog.
        assert p99_shed <= budget / 2, (
            f"shed p99 {p99_shed:.3f}s — rejections queued instead of "
            f"failing fast"
        )


class TestElasticCycle:
    def test_zero_lost_calls_through_scale_out_and_in(self):
        stats = elastic_cycle_stats()
        print()
        print(
            format_table(
                ["metric", "value"],
                [[key, str(value)] for key, value in sorted(stats.items())],
            )
        )
        assert stats["scale_out"] >= 1
        assert stats["scale_in"] >= 1
        assert stats["workers_peak"] == 2
        assert stats["workers_settled"] == 1
        # The guardrail: every candidate posted through the cycle was
        # tested exactly once — scale-out/in lost (and duplicated) nothing.
        assert stats["tested"] == stats["posted"], (
            f"lost calls through the elastic cycle: posted "
            f"{stats['posted']}, tested {stats['tested']}"
        )
