"""ABL-CHAN — channel/formatter choice under the SCOOPP runtime.

The paper measures channels with ping-pong (Fig. 8); this ablation runs
the *full SCOOPP stack* — PO → aggregation → factory → IO — over each
channel configuration and counts the real wire bytes, comparing binary
and SOAP encodings of identical workloads.  Correctness is asserted for
every configuration; byte ratios are the measured shape.
"""

from __future__ import annotations

import repro.core as parc
from repro.apps.primes import PrimeServer, sieve
from repro.benchlib.tables import format_table
from repro.core import GrainPolicy
from repro.remoting.messages import CallMessage
from repro.serialization import BinaryFormatter, SoapFormatter

LIMIT = 400
BATCH = 25


def run_farm_over(channel_kind: str) -> int:
    parc.init(nodes=2, channel=channel_kind, grain=GrainPolicy(max_calls=4))
    try:
        servers = [parc.new(PrimeServer) for _ in range(2)]
        chunk = []
        target = 0
        for candidate in range(2, LIMIT):
            chunk.append(candidate)
            if len(chunk) >= BATCH:
                servers[target % 2].process(chunk)
                chunk = []
                target += 1
        if chunk:
            servers[target % 2].process(chunk)
        total = sum(server.count() for server in servers)
        for server in servers:
            server.parc_release()
        return total
    finally:
        parc.shutdown()


def message_size_rows() -> list[tuple[str, int, int]]:
    """Encoded sizes of the same SCOOPP protocol messages, per formatter."""
    rows = []
    batch_args = ([list(range(2, 2 + BATCH))], {})
    messages = {
        "enqueue_batch (25 candidates)": CallMessage(
            uri="auto/x", method="enqueue_batch",
            args=("process", [batch_args] * 4),
        ),
        "invoke count()": CallMessage(uri="auto/x", method="invoke",
                                      args=("count", (), {})),
    }
    binary = BinaryFormatter()
    soap = SoapFormatter()
    for label, message in messages.items():
        rows.append(
            (label, len(binary.dumps(message)), len(soap.dumps(message)))
        )
    return rows


def test_abl_chan_correct_over_all_channels(benchmark):
    expected = len(sieve(LIMIT - 1))

    def run_both():
        return {
            "loopback": run_farm_over("loopback"),
            "tcp": run_farm_over("tcp"),
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert results["loopback"] == expected
    assert results["tcp"] == expected


def test_abl_chan_soap_overhead_on_protocol_messages(benchmark):
    rows = benchmark(message_size_rows)
    for _label, binary_size, soap_size in rows:
        assert soap_size > binary_size * 1.5


def test_abl_chan_print_table(benchmark):
    rows = benchmark(message_size_rows)
    print()
    print(
        format_table(
            ["SCOOPP protocol message", "binary bytes", "SOAP bytes",
             "ratio"],
            [
                [label, binary_size, soap_size,
                 round(soap_size / binary_size, 2)]
                for label, binary_size, soap_size in rows
            ],
            title="ABL-CHAN — the same runtime messages under both "
            "formatters",
        )
    )
