"""TRACE — hot-path cost of the distributed-tracing instrumentation.

The trace hooks sit on every remote call (client span + header inject,
server dispatch span, io span), so they must be close to free when
telemetry is off.  Three states of the same instrumented stack:

* ``baseline`` — no tracer installed (``TelemetryConfig(enabled=False)``
  at the runtime level): each call pays two context-variable lookups and
  a header-dict check, nothing else;
* ``unsampled`` — a tracer is installed but the sampling knob is 0.0:
  contexts propagate (ids are generated and ride the wire) but no event
  is ever recorded;
* ``traced`` — full recording at ``sample_rate=1.0``, reported for
  information.

The guardrail: ``unsampled`` must stay within 5% of ``baseline``
throughput — enabling telemetry with sampling turned down must not tax
the cluster.
"""

from __future__ import annotations

from repro.benchlib.pingpong import live_concurrent_pingpong
from repro.benchlib.tables import format_table
from repro.telemetry import (
    Tracer,
    get_sample_rate,
    set_global_tracer,
    set_sample_rate,
)

N_INTS = 16
CALLS = 1500
TRIALS = 3
MAX_OVERHEAD = 0.05

MODES = ("baseline", "unsampled", "traced")


def _run_mode(mode: str) -> float:
    previous_rate = get_sample_rate()
    tracer = None
    if mode == "unsampled":
        tracer, rate = Tracer(), 0.0
    elif mode == "traced":
        tracer, rate = Tracer(), 1.0
    try:
        if tracer is not None:
            set_sample_rate(rate)
            set_global_tracer(tracer)
        return live_concurrent_pingpong(N_INTS, 1, CALLS, "tcp")
    finally:
        set_global_tracer(None)
        set_sample_rate(previous_rate)


def _throughput_by_mode() -> dict[str, float]:
    """Best-of-N calls/s per tracing state (max defeats scheduler noise)."""
    return {
        mode: max(_run_mode(mode) for _ in range(TRIALS))
        for mode in MODES
    }


def test_tracing_off_costs_under_five_percent(benchmark):
    rates = benchmark.pedantic(_throughput_by_mode, rounds=1, iterations=1)
    bare = rates["baseline"]
    print()
    print(
        format_table(
            ["tracing", "calls/s", "vs baseline"],
            [
                [mode, round(rate), round(rate / bare, 3)]
                for mode, rate in rates.items()
            ],
            title="TRACE — instrumentation overhead (localhost ping-pong)",
        )
    )
    overhead = 1.0 - rates["unsampled"] / bare
    assert overhead < MAX_OVERHEAD, (
        f"unsampled tracing costs {overhead:.1%} of baseline throughput; "
        f"the guardrail is {MAX_OVERHEAD:.0%}"
    )
