"""FIG8b — bandwidth across Mono implementations (paper Fig. 8b).

"Mono performance has radically increased from release 1.0.5 and the low
performance of an Http channel."

The three configurations differ exactly as the paper's did: 1.1.7-Tcp and
1.0.5-Tcp run the same binary-formatter protocol under different platform
constants; the Http configuration also switches to the real SOAP encoding,
whose measured byte expansion is part of the gap.
"""

from __future__ import annotations

from repro.benchlib import log_sizes, message_bytes_remoting, modeled_bandwidth_from_bytes
from repro.benchlib.tables import format_table, human_bytes
from repro.perfmodel import MONO_105_TCP, MONO_117_HTTP, MONO_117_TCP
from repro.serialization import BinaryFormatter, SoapFormatter

SIZES = log_sizes(1, 1024 * 1024, per_decade=2)
MB = 1024.0 * 1024.0

CONFIGS = (
    ("Mono 1.1.7 (Tcp)", MONO_117_TCP, BinaryFormatter()),
    ("Mono 1.0.5 (Tcp)", MONO_105_TCP, BinaryFormatter()),
    ("Mono 1.1.7 (Http)", MONO_117_HTTP, SoapFormatter()),
)


def fig8b_series() -> dict[str, list[tuple[int, float]]]:
    series: dict[str, list[tuple[int, float]]] = {}
    for name, model, formatter in CONFIGS:
        points = []
        for size in SIZES:
            n_ints = max(1, size // 4)
            payload = 4 * n_ints
            request, response = message_bytes_remoting(n_ints, formatter)
            bandwidth = modeled_bandwidth_from_bytes(
                model, payload, request, response
            )
            points.append((payload, bandwidth / MB))
        series[name] = points
    return series


def test_fig8b_release_gap(benchmark):
    series = benchmark(fig8b_series)
    new = dict(series["Mono 1.1.7 (Tcp)"])
    old = dict(series["Mono 1.0.5 (Tcp)"])
    for size, bandwidth in new.items():
        assert bandwidth > old[size]
    # "radically increased": near an order of magnitude at large sizes.
    assert new[max(new)] / old[max(old)] > 5.0


def test_fig8b_http_channel_lowest(benchmark):
    series = benchmark(fig8b_series)
    http = dict(series["Mono 1.1.7 (Http)"])
    old_tcp = dict(series["Mono 1.0.5 (Tcp)"])
    for size in http:
        assert http[size] < old_tcp[size], size


def test_fig8b_soap_bytes_contribute_to_gap(benchmark):
    """The Http curve's handicap is partly real encoding bytes."""

    def soap_expansion():
        binary_request, _ = message_bytes_remoting(4096, BinaryFormatter())
        soap_request, _ = message_bytes_remoting(4096, SoapFormatter())
        return soap_request / binary_request

    expansion = benchmark(soap_expansion)
    assert expansion > 1.3


def test_fig8b_print_table(benchmark):
    series = benchmark(fig8b_series)
    rows = []
    for index, size in enumerate(SIZES):
        rows.append(
            [human_bytes(4 * max(1, size // 4))]
            + [round(series[name][index][1], 4) for name, _m, _f in CONFIGS]
        )
    print()
    print(
        format_table(
            ["message"] + [name for name, _m, _f in CONFIGS],
            rows,
            title="Fig. 8b — bandwidth across Mono implementations (MB/s)",
        )
    )
