"""AIO — multiplexed aio channel versus thread-per-socket tcp.

The paper's remoting numbers (§4, Fig. 8) price every call's transport
overhead; ParC#'s grain-size adaptation exists to amortize it.  The aio
substrate attacks the same overhead from the transport side (the java.nio
direction of the paper's §2 comparison): one event loop, one pipelined
socket per peer, many requests in flight matched by correlation id.

This benchmark runs the *real* remoting stack over localhost at rising
concurrency.  The claim under test: at high concurrency (64 in-flight
callers) the multiplexed socket is at least as fast as thread-per-socket.
At 1 caller tcp is expected to win — an aio call crosses threads four
times where tcp is straight-line syscalls — so no assertion is made
there; the table shows the crossover.
"""

from __future__ import annotations

from repro.benchlib.pingpong import live_concurrent_pingpong
from repro.benchlib.tables import format_table

N_INTS = 16
TRIALS = 3


def _throughput_rows() -> list[tuple[int, float, float]]:
    """Best-of-N calls/s per (callers, transport) pair.

    Best-of is the standard cure for scheduler noise in throughput
    microbenchmarks: each trial can only be slowed down by interference,
    never sped up, so the max is the cleanest estimate of capability.
    """
    rows = []
    for callers in (1, 8, 64):
        calls = max(50, 3200 // callers)
        tcp_rate = max(
            live_concurrent_pingpong(N_INTS, callers, calls, "tcp")
            for _ in range(TRIALS)
        )
        aio_rate = max(
            live_concurrent_pingpong(N_INTS, callers, calls, "aio")
            for _ in range(TRIALS)
        )
        rows.append((callers, tcp_rate, aio_rate))
    return rows


def test_aio_beats_tcp_at_high_concurrency(benchmark):
    rows = benchmark.pedantic(_throughput_rows, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["callers", "tcp calls/s", "aio calls/s", "aio/tcp"],
            [
                [callers, round(tcp_rate), round(aio_rate),
                 round(aio_rate / tcp_rate, 2)]
                for callers, tcp_rate, aio_rate in rows
            ],
            title="AIO — live remoting throughput, tcp vs aio (localhost)",
        )
    )
    by_callers = {callers: (tcp, aio) for callers, tcp, aio in rows}
    tcp_64, aio_64 = by_callers[64]
    assert aio_64 >= tcp_64, (
        f"aio ({aio_64:,.0f} calls/s) should be at least as fast as tcp "
        f"({tcp_64:,.0f} calls/s) at 64 concurrent callers"
    )
