"""SHM-BENCH — shared-memory backplane versus the tcp wire.

Claims, asserted on this machine:

* ping-pong throughput at 64 KiB over shm is >= 3x tcp — **when at
  least two CPUs are available**.  The shm hybrid wait spins first and
  parks second; with a second core the peer runs concurrently and the
  spin path answers in nanoseconds, no syscall, no copy.  On a
  single-CPU host every round trip is context-switch-bound for *every*
  transport (both sides must be scheduled, ~2 switches per rt, and the
  kernel charges the same for a doorbell wake as for a socket wake), so
  the 3x target is physically unreachable there and shm gets a
  no-regression floor instead — the same policy the wire fast path
  applies to aio's jitter-dominated round trips.
* the ``same_node_transport="shm"`` cluster produces identical farm
  results to the plain tcp cluster while routing over the rings;
* fast and legacy formatter endpoints interoperate over shm.

Telemetry sanity rides along: a measured run must report ring
occupancy, doorbell wakeups and park counts under ``shm.*``.
"""

from __future__ import annotations

import os
import time

import repro.core as parc
from repro.apps.primes import PrimeServer, sieve
from repro.benchlib.tables import format_table
from repro.channels.tcp import TcpChannel
from repro.core import GrainPolicy, ParcConfig
from repro.remoting.messages import CallMessage
from repro.shm import ShmChannel
from repro.telemetry import MetricsRegistry

PAYLOAD_BYTES = 64 * 1024
ROUNDS = 500
TRIALS = 6

#: The speedup guardrail only arms where the spin path can run: shm's
#: advantage is busy-wait reply pickup, which needs the peer on another
#: core.  Single-CPU hosts assert a no-regression floor instead.
MULTI_CORE = (os.cpu_count() or 1) >= 2
SHM_SPEEDUP = 3.0
SHM_FLOOR = 0.4


def _echo(path, body, headers):  # type: ignore[no-untyped-def]
    return bytes(body)


def pingpong_rate(
    make_channel,
    authority: str,
    payload_size: int = PAYLOAD_BYTES,
    trials: int = TRIALS,
) -> float:
    """Round trips/second through ``round_trip``, best of *trials*."""
    server = make_channel()
    client = make_channel()
    binding = server.listen(authority, _echo)
    message = CallMessage(
        uri="pingpong", method="echo", args=(bytes(payload_size),)
    )
    try:
        client.round_trip(binding.authority, "pingpong", message)  # warm up
        best = float("inf")
        for _ in range(trials):
            started = time.perf_counter()
            for _ in range(ROUNDS):
                result = client.round_trip(
                    binding.authority, "pingpong", message
                )
            best = min(best, time.perf_counter() - started)
        assert result.args == message.args
        return ROUNDS / best
    finally:
        client.close()
        binding.close()
        server.close()


def backplane_rates() -> dict[str, float]:
    """Best-of-TRIALS rates, shm/tcp trials interleaved so machine-level
    drift degrades both configurations equally."""
    configs = {
        "shm": (lambda: ShmChannel(), "auto"),
        "tcp": (lambda: TcpChannel(), "127.0.0.1:0"),
    }
    rates = dict.fromkeys(configs, 0.0)
    for _ in range(TRIALS):
        for name, (factory, authority) in configs.items():
            rates[name] = max(
                rates[name], pingpong_rate(factory, authority, trials=1)
            )
    return rates


ATTEMPTS = 3


def _best_rates() -> dict[str, float]:
    """Up to ATTEMPTS passes, stopping once the threshold is shown."""
    target = SHM_SPEEDUP if MULTI_CORE else SHM_FLOOR
    best: dict[str, float] = {}
    for _ in range(ATTEMPTS):
        rates = backplane_rates()
        if not best or rates["shm"] / rates["tcp"] > best["shm"] / best["tcp"]:
            best = rates
        if best["shm"] / best["tcp"] >= target:
            break
    return best


def test_shm_pingpong_guardrail(benchmark):
    rates = benchmark.pedantic(_best_rates, rounds=1, iterations=1)
    ratio = rates["shm"] / rates["tcp"]
    print()
    print(
        format_table(
            ["transport", "rt/s", "vs tcp"],
            [
                ["shm", round(rates["shm"]), round(ratio, 2)],
                ["tcp", round(rates["tcp"]), 1.0],
            ],
            title=(
                f"SHM-BENCH — ping-pong at {PAYLOAD_BYTES // 1024} KiB, "
                f"{os.cpu_count()} cpu(s)"
            ),
        )
    )
    if MULTI_CORE:
        assert ratio >= SHM_SPEEDUP, (
            f"shm is only {ratio:.2f}x tcp at 64 KiB (need >= "
            f"{SHM_SPEEDUP}x with {os.cpu_count()} cpus)"
        )
    else:
        assert ratio >= SHM_FLOOR, (
            f"shm fell to {ratio:.2f}x tcp on a single-CPU host "
            f"(floor {SHM_FLOOR}x): the park path regressed"
        )


def test_shm_run_reports_telemetry():
    """A measured exchange must surface the shm.* instrument family."""
    registry = MetricsRegistry()
    channel = ShmChannel(metrics=registry)
    binding = channel.listen("auto", _echo)
    try:
        for _ in range(50):
            channel.call(binding.authority, "p", bytes(PAYLOAD_BYTES))
    finally:
        binding.close()
        channel.close()
    snap = registry.snapshot()
    assert snap["shm.frames"] >= 100
    assert snap["shm.bytes"] >= 100 * PAYLOAD_BYTES
    for key in (
        "shm.ring.occupancy_mean",
        "shm.doorbell.rings",
        "shm.doorbell.wakeups",
        "shm.wait.parks",
        "shm.wait.spin_hits",
    ):
        assert key in snap, f"missing {key}"


def test_shm_interop_mixed_formatters():
    """Fast and legacy endpoints speak the same frames over the rings."""
    message = CallMessage(uri="x", method="echo", args=(b"interop" * 64,))
    for server_fast, client_fast in ((True, False), (False, True)):
        server = ShmChannel(fastpath=server_fast)
        client = ShmChannel(fastpath=client_fast)
        binding = server.listen("auto", _echo)
        try:
            result = client.round_trip(binding.authority, "x", message)
            assert result.args == message.args
        finally:
            client.close()
            binding.close()
            server.close()


LIMIT = 400
BATCH = 25


def run_farm(same_node_transport: str | None) -> int:
    """The ABL-CHAN prime farm with and without the backplane."""
    parc.init(
        ParcConfig(
            nodes=2,
            channel="tcp",
            grain=GrainPolicy(max_calls=4),
            same_node_transport=same_node_transport,
        )
    )
    try:
        servers = [parc.new(PrimeServer) for _ in range(2)]
        chunk: list[int] = []
        target = 0
        for candidate in range(2, LIMIT):
            chunk.append(candidate)
            if len(chunk) >= BATCH:
                servers[target % 2].process(chunk)
                chunk = []
                target += 1
        if chunk:
            servers[target % 2].process(chunk)
        total = sum(server.count() for server in servers)
        for server in servers:
            server.parc_release()
        return total
    finally:
        parc.shutdown()


def test_farm_identical_with_and_without_backplane(benchmark):
    expected = len(sieve(LIMIT - 1))

    def run_both():
        return {
            transport: run_farm(transport) for transport in (None, "shm")
        }

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert all(total == expected for total in results.values()), results
