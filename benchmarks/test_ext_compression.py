"""EXT-COMP — compression sink crossover on the paper's network.

An extension: the classic .Net remoting custom sink traded CPU for wire
bytes.  On the paper's 100 Mbit Ethernet, when does zlib-compressing
int-array payloads pay off?

Method: real compression of real formatter output (measured sizes and
measured CPU time on this machine), wire time priced with the Mono model.
Expected shape: compression wins for large compressible payloads (the
wire at ~5 MB/s costs ~190 ns/byte while zlib spends far less per byte
saved) and is correctly skipped for incompressible data.
"""

from __future__ import annotations

import random
import time
import zlib
from array import array

from repro.benchlib.tables import format_table, human_bytes
from repro.perfmodel import MONO_117_TCP
from repro.remoting.messages import CallMessage
from repro.serialization import BinaryFormatter

SIZES = [256, 4096, 65536, 1 << 20]


def _payload(n_ints: int, compressible: bool) -> array:
    if compressible:
        return array("i", [index % 1024 for index in range(n_ints)])
    rng = random.Random(42)
    return array("i", [rng.randrange(1 << 31) for _ in range(n_ints)])


def crossover_rows() -> list[tuple]:
    formatter = BinaryFormatter()
    model = MONO_117_TCP
    per_byte = 1.0 / model.wire_bandwidth_Bps
    rows = []
    for compressible in (True, False):
        for size_bytes in SIZES:
            body = formatter.dumps(
                CallMessage(
                    uri="x", method="save",
                    args=(_payload(size_bytes // 4, compressible),),
                )
            )
            started = time.perf_counter()
            compressed = zlib.compress(body, 6)
            compress_s = time.perf_counter() - started
            plain_time = model.one_way_latency_s + len(body) * per_byte
            compressed_time = (
                model.one_way_latency_s
                + len(compressed) * per_byte
                + compress_s
            )
            rows.append(
                (
                    "compressible" if compressible else "random",
                    size_bytes,
                    len(body),
                    len(compressed),
                    plain_time * 1e3,
                    compressed_time * 1e3,
                    compressed_time < plain_time,
                )
            )
    return rows


def test_ext_comp_wins_on_large_compressible(benchmark):
    rows = benchmark(crossover_rows)
    large = [
        wins
        for kind, size, _raw, _cmp, _p, _c, wins in rows
        if kind == "compressible" and size >= 65536
    ]
    assert all(large)


def test_ext_comp_compression_ratio_real(benchmark):
    rows = benchmark(crossover_rows)
    for kind, size, raw, compressed, _p, _c, _w in rows:
        if kind == "compressible" and size >= 4096:
            assert compressed < raw / 2
        if kind == "random":
            assert compressed > raw * 0.9  # essentially incompressible


def test_ext_comp_never_wins_on_random_small(benchmark):
    rows = benchmark(crossover_rows)
    small_random = [
        wins
        for kind, size, _raw, _cmp, _p, _c, wins in rows
        if kind == "random" and size <= 4096
    ]
    assert not any(small_random)


def test_ext_comp_print_table(benchmark):
    rows = benchmark(crossover_rows)
    print()
    print(
        format_table(
            ["payload", "size", "wire bytes", "compressed",
             "plain (ms)", "zlib (ms)", "compression wins"],
            [
                [kind, human_bytes(size), raw, compressed,
                 round(plain, 2), round(comp, 2), str(wins)]
                for kind, size, raw, compressed, plain, comp, wins in rows
            ],
            title="EXT-COMP — compression sink crossover "
            "(Mono 1.1.7 Tcp model, real zlib)",
        )
    )
