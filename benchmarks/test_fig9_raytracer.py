"""FIG9 — parallel ray tracer execution time, 1-6 processors (paper Fig. 9).

"Fig. 9 compares the execution times of Java and ParC# to render a scene
with 500x500 pixels. ... The parallel Ray Tracer execution time ... is
higher in ParC# mainly due to the higher sequential time and due to
thread management."

Reproduction: the farm simulator replays the paper's line-farm (500x500,
chunked lines, self-scheduling) under the two platform presets.  The
ParC# preset carries Mono's 1.4x float compute scale, 520 µs calls, and
the capped thread pool; the Java preset carries RMI's constants.  A live
mini-farm (the real SCOOPP runtime rendering a real frame) validates the
functional path on this machine.
"""

from __future__ import annotations

import repro.core as parc
from repro.apps.raytracer import checksum, create_scene, farm_render, render
from repro.benchlib import fig9_curve
from repro.benchlib.tables import format_table
from repro.core import GrainPolicy
from repro.perfmodel import JAVA_RMI, MONO_117_TCP

PROCESSORS = [1, 2, 3, 4, 5, 6]


def fig9_data() -> dict[str, list[tuple[int, float]]]:
    return {
        "ParC#": fig9_curve(MONO_117_TCP, PROCESSORS),
        "Java RMI": fig9_curve(JAVA_RMI, PROCESSORS),
    }


def test_fig9_both_curves_fall(benchmark):
    curves = benchmark(fig9_data)
    for name, curve in curves.items():
        times = [time_s for _p, time_s in curve]
        assert times == sorted(times, reverse=True), name


def test_fig9_parc_above_java_everywhere(benchmark):
    curves = benchmark(fig9_data)
    parc_curve = dict(curves["ParC#"])
    java_curve = dict(curves["Java RMI"])
    for processors in PROCESSORS:
        assert parc_curve[processors] > java_curve[processors]


def test_fig9_gap_tracks_sequential_ratio(benchmark):
    curves = benchmark(fig9_data)
    parc_curve = dict(curves["ParC#"])
    java_curve = dict(curves["Java RMI"])
    # At 1 processor the gap IS the sequential gap ("the C# sequential
    # execution time ... is 40% superior").
    assert 1.3 < parc_curve[1] / java_curve[1] < 1.5
    # The gap persists (and may widen slightly: thread management).
    for processors in PROCESSORS[1:]:
        ratio = parc_curve[processors] / java_curve[processors]
        assert 1.2 < ratio < 1.8, (processors, ratio)


def test_fig9_magnitudes_match_paper_axis(benchmark):
    """The paper's y-axis runs 0-140 s; the curves start near 120/85 s."""
    curves = benchmark(fig9_data)
    assert 100 < dict(curves["ParC#"])[1] < 140
    assert 70 < dict(curves["Java RMI"])[1] < 100
    assert dict(curves["ParC#"])[6] < 40


def test_fig9_print_table(benchmark):
    curves = benchmark(fig9_data)
    rows = []
    for index, processors in enumerate(PROCESSORS):
        rows.append(
            [
                processors,
                round(curves["ParC#"][index][1], 1),
                round(curves["Java RMI"][index][1], 1),
                round(
                    curves["ParC#"][index][1] / curves["Java RMI"][index][1],
                    2,
                ),
            ]
        )
    print()
    print(
        format_table(
            ["processors", "ParC# (s)", "Java RMI (s)", "ratio"],
            rows,
            title="Fig. 9 — parallel ray tracer execution time (simulated "
            "500x500 farm)",
        )
    )


def test_fig9_live_mini_farm_validates(benchmark):
    """The real SCOOPP farm renders a real frame, checksum-identical."""
    width = height = 16
    reference = checksum(render(create_scene(2), width, height))

    def run_farm():
        parc.init(nodes=3, grain=GrainPolicy(max_calls=2))
        try:
            return checksum(
                farm_render(3, width, height, grid=2, lines_per_chunk=2)
            )
        finally:
            parc.shutdown()

    result = benchmark.pedantic(run_farm, rounds=1, iterations=1)
    assert result == reference
