"""SCHED — adaptive-scheduler guardrails under a Zipf-skewed workload.

The scenario: 1000 grains across 4 nodes, per-grain call counts drawn
from a Zipf(s=1.1) law, created in an order that makes blind
round-robin park the three heaviest grains on the same node — that
node ends up with ~44% of all work while the others idle early.  Three
schedulers run the identical call sequence:

* ``round_robin`` — the paper-era static placement, no rebalancing:
  makespan is the overloaded node's serial share;
* ``oracle`` — longest-processing-time placement by a policy that is
  *told* every grain's total cost up front (the unreachable lower
  bound, exercised through the redesigned ClusterView policy API);
* ``adaptive`` — the same blind round-robin placement plus the work
  stealing loop: idle nodes pull queued grains (state + backlog) off
  the overloaded one at runtime.

Each node's execution capacity is serialized through a per-node FIFO
core (one simulated core per node; the sleep-based work releases the
GIL, so distinct nodes genuinely overlap on a 1-CPU host).  Guardrails:

* adaptive lands within ``1.5x`` of the oracle makespan;
* adaptive beats static round-robin by ``>= 1.3x``;
* zero calls are lost or duplicated while grains migrate mid-traffic.

A separate scale scenario (``run_scale``) reruns the adaptive scheduler
at 10,000 grains and asserts the accounting only — see its docstring.
"""

from __future__ import annotations

import dataclasses
import random
import threading
import time
from collections import defaultdict, deque

import repro.core as parc
from repro.benchlib.tables import format_table
from repro.cluster.placement import PlacementPolicy
from repro.core import GrainPolicy, ParcConfig, SchedulerConfig
from repro.core.impl import current_node

NODES = 4
GRAINS = 1000
ZIPF_S = 1.1
CALLS_TOTAL = 7200
WORK_S = 0.0015
SHUFFLE_SEED = 1234
#: Method-call aggregation (the paper's grain-size adaptation), the
#: same for every scenario: without it each call is a full remoting
#: round trip and dispatch CPU — not simulated work — dominates the
#: makespan on a small host.  Kept small because a migration must wait
#: out the victim grain's executing batch: batch size bounds the pause.
AGG_CALLS = 4

#: Retry budget: the guardrails compare wall-clock makespans on a
#: shared machine, so a noisy run may re-measure.
ATTEMPTS = 3

#: The scale scenario: ten times the guarded population.  The Zipf
#: floor (every grain posts at least once) pushes the actual posted
#: count well past the target — ~21.6k calls for this pair.
SCALE_GRAINS = 10_000
SCALE_CALLS_TOTAL = 15_000
SCALE_DEADLINE_S = 480.0

class _FairCore:
    """One simulated core: FIFO tickets, one ``WORK_S`` sleep at a time.

    Every work() call on a node serializes through its node's core, so
    a node's makespan is its queued work; the sleeps release the GIL,
    so distinct nodes genuinely overlap even on a 1-CPU host.  A plain
    ``threading.Lock`` is unfair under heavy contention — a grain
    hammering the core can starve another grain's in-flight call for
    seconds, which stalls any migration waiting that call out — so the
    core hands out FIFO tickets: the pause a migration sees is bounded
    by one herd rotation.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        self._queue: deque[threading.Event] = deque()

    def run(self, duration: float) -> None:
        ticket = threading.Event()
        with self._mu:
            self._queue.append(ticket)
            if len(self._queue) == 1:
                ticket.set()
        ticket.wait()
        time.sleep(duration)
        with self._mu:
            self._queue.popleft()
            if self._queue:
                self._queue[0].set()


_cores: dict[str, _FairCore] = defaultdict(_FairCore)

#: Cluster-wide completion counter (grains run in-process over
#: loopback, so plain shared memory observes every executed call the
#: instant it lands — no per-grain drain round trips in the timing).
_done_lock = threading.Lock()
_done_count = 0


def _mark_done() -> None:
    global _done_count
    with _done_lock:
        _done_count += 1


def _reset_done() -> None:
    global _done_count
    with _done_lock:
        _done_count = 0


def _done() -> int:
    with _done_lock:
        return _done_count


@parc.parallel(
    name="bench.sched.Worker", async_methods=["work"], sync_methods=["done"]
)
class Worker:
    def __init__(self):
        self.count = 0

    def work(self):
        node = current_node.get()
        key = node.base_uri if node is not None else "local"
        _cores[key].run(WORK_S)
        self.count += 1
        _mark_done()

    def done(self):
        return self.count


def zipf_calls(
    grains: int = GRAINS, total: int = CALLS_TOTAL, s: float = ZIPF_S
) -> list[int]:
    """Per-grain call counts: Zipf weights, floor of one call each."""
    weights = [1.0 / (rank + 1) ** s for rank in range(grains)]
    norm = sum(weights)
    return [max(1, round(total * w / norm)) for w in weights]


def creation_order(grains: int = GRAINS, nodes: int = NODES) -> list[int]:
    """Grain creation sequence: the round-robin stress case.

    Grains are created heaviest-first except that the second- and
    third-heaviest are created ``nodes`` and ``2 * nodes`` positions
    after the heaviest — so a blind round-robin placement parks the
    three hottest grains on the same node.  This is the classic worst
    case a static placement cannot escape and an adaptive scheduler
    must: the oracle re-places by cost and is immune, and work
    stealing has to drain the tripled-up node at runtime.
    """
    order = [0] + [rank for rank in range(3, grains)]
    order.insert(nodes, 1)
    order.insert(2 * nodes, 2)
    return order


def call_order(calls: list[int]) -> list[int]:
    """The posting sequence: grains fire in random order, each posting
    its whole burst back-to-back — clients hammer one hot object at a
    time, which is also what lets the PO outbox aggregate consecutive
    calls into ``AGG_CALLS``-sized batches."""
    grain_order = list(range(len(calls)))
    random.Random(SHUFFLE_SEED).shuffle(grain_order)
    return [
        grain_index
        for grain_index in grain_order
        for _ in range(calls[grain_index])
    ]


class OracleLptPlacement(PlacementPolicy):
    """Longest-processing-time with perfect knowledge of grain costs.

    The policy is handed the exact per-creation cost sequence: each
    creation goes to the live node with the least total assigned work.
    No online scheduler can know this, which is what makes it the
    oracle baseline.
    """

    name = "oracle_lpt"

    def __init__(self, costs: list[int]) -> None:
        self._costs = list(costs)
        self._cursor = 0
        self._assigned: dict[int, float] = {}
        self._lock = threading.Lock()

    def choose(self, view, home_index):
        live = self._live(view)
        with self._lock:
            cost = self._costs[self._cursor % len(self._costs)]
            self._cursor += 1
            best = min(
                live, key=lambda node: self._assigned.get(node.index, 0.0)
            )
            self._assigned[best.index] = (
                self._assigned.get(best.index, 0.0) + cost
            )
            return best.index


def adaptive_config() -> SchedulerConfig:
    """Stealing knobs tuned for the bench's bursty backlog.

    The bar is deliberately high (``imbalance_ratio``, long cooldown,
    few moves per cycle): each migration pauses its grain for the
    executing batch plus replay, so the scheduler must move a few
    heavy grains once, not churn many grains repeatedly.
    """
    return SchedulerConfig(
        placement="round_robin",
        work_stealing=True,
        rebalance_interval_s=0.1,
        steal_threshold=4,
        idle_threshold=8,
        imbalance_ratio=1.3,
        max_migrations_per_cycle=8,
        migration_cooldown_s=1.5,
    )


def run_scenario(scheduler: SchedulerConfig) -> dict:
    """Post the Zipf workload under *scheduler*; return the accounting."""
    calls = zipf_calls()
    order = call_order(calls)
    scheduler = dataclasses.replace(
        scheduler, grain=GrainPolicy(agglomerate=False, max_calls=AGG_CALLS)
    )
    runtime = parc.init(ParcConfig(nodes=NODES, scheduler=scheduler))
    try:
        by_rank: dict[int, object] = {}
        for rank in creation_order():
            by_rank[rank] = parc.new(Worker)
        grains = [by_rank[rank] for rank in range(GRAINS)]
        _cores.clear()
        _reset_done()
        started = time.perf_counter()
        for grain_index in order:
            grains[grain_index].work()
        deadline = started + 120.0
        while _done() < len(order):
            assert time.perf_counter() < deadline, (
                f"stalled at {_done()}/{len(order)} executed calls"
            )
            time.sleep(0.005)
        makespan = time.perf_counter() - started
        for grain in grains:
            grain.parc_wait()
        executed = sum(grain.done() for grain in grains)
        report = runtime.placement_report()
        for grain in grains:
            grain.parc_release()
    finally:
        parc.shutdown()
    return {
        "makespan_s": makespan,
        "posted": len(order),
        "executed": executed,
        "migrations": report["migrations"],
        "steals": report["steals"],
        "calls_moved": report["calls_moved"],
        "lost_calls": report["lost_calls"],
        "migration_failures": report["migration_failures"],
    }


def run_scale() -> dict:
    """10k-grain Zipf stress under the adaptive scheduler.

    Ten times the guarded population: ~20k OS threads (one IO worker
    and one PO sender per grain), ~21.6k calls, live stealing
    throughout.  The makespan is recorded for trend-watching but not
    guarded — at this scale thread scheduling, not placement, bounds
    the wall clock on small hosts.  What must hold at any scale is the
    accounting: every posted call executes exactly once and migrations
    lose nothing.

    Two scale-specific shortcuts versus :func:`run_scenario`: progress
    is observed through the shared completion counter only (a
    per-grain ``parc_wait`` sweep costs ~20 ms each — minutes at 10k),
    and the final per-grain tally rides the synchronous ``done()``
    sweep, which the FIFO mailbox already orders after any still-queued
    asynchronous work.
    """
    calls = zipf_calls(SCALE_GRAINS, SCALE_CALLS_TOTAL)
    order = call_order(calls)
    scheduler = dataclasses.replace(
        adaptive_config(),
        grain=GrainPolicy(agglomerate=False, max_calls=AGG_CALLS),
    )
    runtime = parc.init(ParcConfig(nodes=NODES, scheduler=scheduler))
    try:
        by_rank: dict[int, object] = {}
        for rank in creation_order(SCALE_GRAINS):
            by_rank[rank] = parc.new(Worker)
        grains = [by_rank[rank] for rank in range(SCALE_GRAINS)]
        _cores.clear()
        _reset_done()
        started = time.perf_counter()
        for grain_index in order:
            grains[grain_index].work()
        deadline = started + SCALE_DEADLINE_S
        while _done() < len(order):
            assert time.perf_counter() < deadline, (
                f"stalled at {_done()}/{len(order)} executed calls"
            )
            time.sleep(0.02)
        makespan = time.perf_counter() - started
        executed = sum(grain.done() for grain in grains)
        report = runtime.placement_report()
        for grain in grains:
            grain.parc_release()
    finally:
        parc.shutdown()
    return {
        "makespan_s": makespan,
        "posted": len(order),
        "executed": executed,
        "migrations": report["migrations"],
        "steals": report["steals"],
        "calls_moved": report["calls_moved"],
        "lost_calls": report["lost_calls"],
        "migration_failures": report["migration_failures"],
    }


def run_all() -> dict[str, dict]:
    calls = zipf_calls()
    return {
        "round_robin": run_scenario(
            SchedulerConfig(placement="round_robin")
        ),
        "oracle": run_scenario(
            SchedulerConfig(
                placement=OracleLptPlacement(
                    [calls[rank] for rank in creation_order()]
                )
            )
        ),
        "adaptive": run_scenario(adaptive_config()),
    }


def _print_results(results: dict[str, dict]) -> None:
    print()
    print(
        format_table(
            ["scheduler", "makespan (s)", "migrations", "moved", "lost"],
            [
                [
                    name,
                    f"{row['makespan_s']:.2f}",
                    str(row["migrations"]),
                    str(row["calls_moved"]),
                    str(row["lost_calls"]),
                ]
                for name, row in results.items()
            ],
        )
    )


class TestAdaptiveScheduler:
    def test_adaptive_closes_on_oracle_and_beats_round_robin(self):
        for attempt in range(1, ATTEMPTS + 1):
            results = run_all()
            _print_results(results)
            for name, row in results.items():
                # Zero-loss is a correctness property, never re-rolled.
                assert row["executed"] == row["posted"], (
                    f"{name}: posted {row['posted']}, "
                    f"executed {row['executed']}"
                )
                assert row["lost_calls"] == 0, (name, row)
            adaptive = results["adaptive"]
            assert adaptive["migrations"] >= 1, (
                "the stealing loop never moved a grain"
            )
            vs_oracle = (
                adaptive["makespan_s"] / results["oracle"]["makespan_s"]
            )
            vs_rr = (
                results["round_robin"]["makespan_s"]
                / adaptive["makespan_s"]
            )
            print(
                f"adaptive/oracle: {vs_oracle:.2f}  "
                f"round_robin/adaptive: {vs_rr:.2f}"
            )
            if vs_oracle <= 1.5 and vs_rr >= 1.3:
                return
            if attempt == ATTEMPTS:
                assert vs_oracle <= 1.5, (
                    f"adaptive {adaptive['makespan_s']:.2f}s is "
                    f"{vs_oracle:.2f}x the oracle"
                )
                assert vs_rr >= 1.3, (
                    f"adaptive only {vs_rr:.2f}x over round-robin"
                )


class TestSchedulerScale:
    def test_ten_thousand_grains_lose_nothing(self):
        stats = run_scale()
        print()
        print(
            format_table(
                ["counter", "value"],
                [
                    [name, f"{value:.1f}" if name == "makespan_s" else value]
                    for name, value in sorted(stats.items())
                ],
                title=f"SCHED — {SCALE_GRAINS} Zipf grains, adaptive stealing",
            )
        )
        assert stats["executed"] == stats["posted"], stats
        assert stats["lost_calls"] == 0, stats
        assert stats["migration_failures"] == 0, stats
        # The skew is real at this scale too: stealing must engage.
        assert stats["migrations"] >= 1, stats
