"""Unit tests for parallel-class declaration and method classification."""

from __future__ import annotations

import textwrap

import pytest

from repro.core.model import (
    MethodKind,
    ParallelClassTable,
    classify_method,
    infer_method_kinds,
    parallel,
    parallel_class_table,
    public_methods,
)
from repro.errors import PreprocessError, ScooppError


class TestClassification:
    def test_annotation_none_is_async(self):
        def method(self) -> None:
            return None

        assert classify_method(method) is MethodKind.ASYNC

    def test_annotation_value_is_sync(self):
        def method(self) -> int:
            return 1

        assert classify_method(method) is MethodKind.SYNC

    def test_string_annotation_none(self):
        def method(self) -> "None":
            pass

        assert classify_method(method) is MethodKind.ASYNC

    def test_ast_detects_bare_return(self):
        # Defined via exec'd source that inspect can't see -> SYNC default;
        # so build from a real module-level function instead.
        assert classify_method(_no_value_return) is MethodKind.ASYNC

    def test_ast_detects_value_return(self):
        assert classify_method(_value_return) is MethodKind.SYNC

    def test_nested_function_returns_ignored(self):
        assert classify_method(_nested_return) is MethodKind.ASYNC

    def test_conditional_return_none_is_async(self):
        assert classify_method(_return_none_literal) is MethodKind.ASYNC

    def test_yield_means_sync(self):
        assert classify_method(_generator_method) is MethodKind.SYNC

    def test_unavailable_source_defaults_sync(self):
        namespace: dict = {}
        exec(  # noqa: S102 - deliberately sourceless function
            textwrap.dedent(
                """
                def ghost(self):
                    pass
                """
            ),
            namespace,
        )
        assert classify_method(namespace["ghost"]) is MethodKind.SYNC


def _no_value_return(self):
    if self:
        return
    print("side effect")


def _value_return(self):
    if self:
        return 42
    return None


def _nested_return(self):
    def helper():
        return 99

    helper()


def _return_none_literal(self):
    return None


def _generator_method(self):
    yield 1


class TestInference:
    def test_overrides_win(self):
        class Target:
            def looks_sync(self):
                return 1

            def looks_async(self):
                pass

        kinds = infer_method_kinds(
            Target, async_methods=["looks_sync"], sync_methods=["looks_async"]
        )
        assert kinds["looks_sync"] is MethodKind.ASYNC
        assert kinds["looks_async"] is MethodKind.SYNC

    def test_conflicting_overrides_rejected(self):
        class Target:
            def m(self):
                pass

        with pytest.raises(PreprocessError, match="both"):
            infer_method_kinds(Target, async_methods=["m"], sync_methods=["m"])

    def test_unknown_override_rejected(self):
        class Target:
            def m(self):
                pass

        with pytest.raises(PreprocessError, match="missing"):
            infer_method_kinds(Target, async_methods=["ghost"])

    def test_private_and_static_excluded(self):
        class Target:
            def visible(self):
                pass

            def _hidden(self):
                pass

            @staticmethod
            def helper():
                pass

            @classmethod
            def maker(cls):
                pass

        assert public_methods(Target) == ["visible"]


class TestParallelDecorator:
    def test_registers_in_table(self):
        @parallel(name="test.model.Registered")
        class Registered:
            def go(self) -> None:
                pass

        info = parallel_class_table.by_name("test.model.Registered")
        assert info.cls is Registered
        assert info.async_methods == ["go"]
        assert Registered._parc_parallel_info is info

    def test_lookup_by_class(self):
        @parallel(name="test.model.ByClass")
        class ByClass:
            def value(self) -> int:
                return 1

        info = parallel_class_table.by_class(ByClass)
        assert info.sync_methods == ["value"]

    def test_unknown_lookups(self):
        table = ParallelClassTable()
        with pytest.raises(ScooppError, match="@parallel"):
            table.by_name("missing.Class")

        class NotParallel:
            pass

        with pytest.raises(ScooppError):
            table.by_class(NotParallel)

    def test_name_collision_rejected(self):
        table = ParallelClassTable()

        class A:
            pass

        class B:
            pass

        from repro.core.model import ParallelClassInfo

        table.add(ParallelClassInfo(cls=A, wire_name="dup.Name"))
        with pytest.raises(ScooppError):
            table.add(ParallelClassInfo(cls=B, wire_name="dup.Name"))

    def test_same_class_reregistration_ok(self):
        table = ParallelClassTable()

        class C:
            pass

        from repro.core.model import ParallelClassInfo

        info = ParallelClassInfo(cls=C, wire_name="dup.C")
        table.add(info)
        table.add(ParallelClassInfo(cls=C, wire_name="dup.C"))
        assert table.names() == ["dup.C"]

    def test_info_method_lists_sorted(self):
        @parallel(name="test.model.Sorted")
        class Sorted:
            def zebra(self) -> None:
                pass

            def alpha(self) -> None:
                pass

            def get(self) -> int:
                return 0

        info = parallel_class_table.by_name("test.model.Sorted")
        assert info.async_methods == ["alpha", "zebra"]
        assert info.sync_methods == ["get"]
