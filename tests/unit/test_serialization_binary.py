"""Unit tests for the binary formatter."""

from __future__ import annotations

import array
import math
from dataclasses import dataclass

import numpy as np
import pytest

from repro.errors import (
    SerializationError,
    UnknownTypeError,
    WireFormatError,
)
from repro.serialization import BinaryFormatter, SerializationRegistry
from repro.serialization.binary import (
    read_uvarint,
    unzigzag,
    write_uvarint,
    zigzag,
)
from repro.serialization.registry import serializable


@serializable(name="test.bin.Point")
@dataclass
class Point:
    x: int
    y: float


@serializable(name="test.bin.TreeNode")
class TreeNode:
    def __init__(self, value=None):
        self.value = value
        self.children = []


@serializable(name="test.bin.Stateful")
class Stateful:
    def __init__(self):
        self.secret = "runtime-only"
        self.kept = 1

    def __getstate__(self):
        return {"kept": self.kept}

    def __setstate__(self, state):
        self.kept = state["kept"]
        self.secret = "restored"


@pytest.fixture
def formatter():
    return BinaryFormatter()


def roundtrip(formatter, value):
    return formatter.loads(formatter.dumps(value))


class TestScalars:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -1, 2**31, -(2**31), 2**62, "", "héllo",
         "line\nbreak", b"", b"\x00\xff", 0.0, -0.0, 1.5, 1e300, -1e-300,
         complex(1.5, -2.5)],
    )
    def test_roundtrip(self, formatter, value):
        result = roundtrip(formatter, value)
        assert result == value
        assert type(result) is type(value)

    def test_huge_int_roundtrip(self, formatter):
        value = 12345678901234567890123456789012345678901234567890
        assert roundtrip(formatter, value) == value
        assert roundtrip(formatter, -value) == -value

    def test_int_boundary_64bit(self, formatter):
        for value in [(1 << 63) - 1, -(1 << 63), 1 << 63, -(1 << 63) - 1]:
            assert roundtrip(formatter, value) == value

    def test_nan_roundtrip(self, formatter):
        result = roundtrip(formatter, float("nan"))
        assert math.isnan(result)

    def test_inf_roundtrip(self, formatter):
        assert roundtrip(formatter, float("inf")) == float("inf")
        assert roundtrip(formatter, float("-inf")) == float("-inf")

    def test_bool_is_not_int(self, formatter):
        # bool subclasses int; the formatter must preserve the exact type.
        assert roundtrip(formatter, True) is True
        assert roundtrip(formatter, 1) == 1
        assert roundtrip(formatter, 1) is not True


class TestContainers:
    @pytest.mark.parametrize(
        "value",
        [[], [1, 2, 3], (), (1,), {"a": 1}, {1: "x", (2, 3): [4]},
         set(), {1, 2}, frozenset({3, 4}), [[1], [2, [3]]],
         bytearray(b"mut"), {"mixed": [1, "two", 3.0, None, True]}],
    )
    def test_roundtrip(self, formatter, value):
        result = roundtrip(formatter, value)
        assert result == value
        assert type(result) is type(value)

    def test_dict_preserves_insertion_order(self, formatter):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(roundtrip(formatter, value)) == ["z", "a", "m"]

    def test_shared_reference_identity(self, formatter):
        shared = [1, 2]
        value = {"first": shared, "second": shared}
        result = roundtrip(formatter, value)
        assert result["first"] is result["second"]

    def test_distinct_equal_lists_stay_distinct(self, formatter):
        value = [[1, 2], [1, 2]]
        result = roundtrip(formatter, value)
        assert result[0] == result[1]
        assert result[0] is not result[1]

    def test_self_referential_list(self, formatter):
        value = [1]
        value.append(value)
        result = roundtrip(formatter, value)
        assert result[0] == 1
        assert result[1] is result

    def test_self_referential_dict(self, formatter):
        value = {}
        value["me"] = value
        result = roundtrip(formatter, value)
        assert result["me"] is result

    def test_cycle_through_tuple_rejected(self, formatter):
        inner = []
        value = (inner,)
        inner.append(value)
        with pytest.raises(WireFormatError):
            roundtrip(formatter, value)

    def test_array_roundtrip(self, formatter):
        for typecode in "bBhHiIlLqQfd":
            value = array.array(typecode, [0, 1, 2])
            result = roundtrip(formatter, value)
            assert result == value
            assert result.typecode == typecode

    def test_ndarray_roundtrip(self, formatter):
        value = np.arange(12, dtype=np.int64).reshape(3, 4)
        result = roundtrip(formatter, value)
        assert result.dtype == value.dtype
        assert result.shape == value.shape
        assert (result == value).all()

    def test_ndarray_float32(self, formatter):
        value = np.linspace(0, 1, 7, dtype=np.float32)
        result = roundtrip(formatter, value)
        assert result.dtype == np.float32
        assert np.allclose(result, value)

    def test_object_dtype_rejected(self, formatter):
        value = np.array([object()], dtype=object)
        with pytest.raises(SerializationError):
            formatter.dumps(value)


class TestObjects:
    def test_dataclass_roundtrip(self, formatter):
        result = roundtrip(formatter, Point(3, 4.5))
        assert isinstance(result, Point)
        assert (result.x, result.y) == (3, 4.5)

    def test_object_graph_with_cycle(self, formatter):
        root = TreeNode("root")
        child = TreeNode("child")
        root.children.append(child)
        child.children.append(root)  # cycle through registered objects
        result = roundtrip(formatter, root)
        assert result.value == "root"
        assert result.children[0].value == "child"
        assert result.children[0].children[0] is result

    def test_getstate_setstate_honoured(self, formatter):
        original = Stateful()
        original.kept = 7
        result = roundtrip(formatter, original)
        assert result.kept == 7
        assert result.secret == "restored"

    def test_unregistered_class_rejected(self, formatter):
        class Unregistered:
            pass

        with pytest.raises(UnknownTypeError):
            formatter.dumps(Unregistered())

    def test_constructor_not_called_on_decode(self, formatter):
        calls = []

        @serializable(name="test.bin.CtorSpy")
        class CtorSpy:
            def __init__(self):
                calls.append(1)
                self.x = 0

        spy = CtorSpy()
        calls.clear()
        result = roundtrip(formatter, spy)
        assert calls == []
        assert result.x == 0


class TestWireErrors:
    def test_trailing_bytes_rejected(self, formatter):
        data = formatter.dumps(1) + b"extra"
        with pytest.raises(WireFormatError):
            formatter.loads(data)

    def test_truncated_payload_rejected(self, formatter):
        data = formatter.dumps("hello world")
        with pytest.raises(WireFormatError):
            formatter.loads(data[:-3])

    def test_empty_input_rejected(self, formatter):
        with pytest.raises(WireFormatError):
            formatter.loads(b"")

    def test_unknown_tag_rejected(self, formatter):
        with pytest.raises(WireFormatError):
            formatter.loads(b"\xff")

    def test_bad_backreference_rejected(self, formatter):
        import io

        out = io.BytesIO()
        out.write(b"R")
        write_uvarint(out, 99)
        with pytest.raises(WireFormatError):
            formatter.loads(out.getvalue())


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**63])
    def test_uvarint_roundtrip(self, value):
        import io

        out = io.BytesIO()
        write_uvarint(out, value)
        assert read_uvarint(io.BytesIO(out.getvalue())) == value

    def test_negative_uvarint_rejected(self):
        import io

        with pytest.raises(SerializationError):
            write_uvarint(io.BytesIO(), -1)

    def test_truncated_uvarint_rejected(self):
        import io

        with pytest.raises(WireFormatError):
            read_uvarint(io.BytesIO(b"\x80"))

    @pytest.mark.parametrize("value", [0, 1, -1, 63, -64, 2**62, -(2**62)])
    def test_zigzag_roundtrip(self, value):
        assert unzigzag(zigzag(value)) == value


class TestRegistryScoping:
    def test_private_registry_is_isolated(self):
        registry = SerializationRegistry()

        class Local:
            def __init__(self):
                self.v = 1

        registry.register(Local, "scoped.Local")
        scoped = BinaryFormatter(registry)
        result = scoped.loads(scoped.dumps(Local()))
        assert result.v == 1
        # The default formatter does not know this class.
        with pytest.raises(UnknownTypeError):
            BinaryFormatter().dumps(Local())
