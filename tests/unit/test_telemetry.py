"""Unit tests for the telemetry subsystem (tracer + metrics)."""

from __future__ import annotations

import json
import threading
import time

import pytest

import repro.core as parc
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    get_global_tracer,
    set_global_tracer,
)


class TestTracer:
    def test_span_records_duration(self):
        tracer = Tracer()
        with tracer.span("test", "work", detail=1):
            time.sleep(0.005)
        events = tracer.events()
        assert len(events) == 1
        assert events[0].name == "work"
        assert events[0].category == "test"
        assert events[0].duration_us >= 4000
        assert events[0].args == {"detail": 1}

    def test_span_records_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("test", "failing"):
                raise ValueError("inside")
        assert len(tracer.events()) == 1

    def test_instant(self):
        tracer = Tracer()
        tracer.instant("test", "marker", value=3)
        event = tracer.events()[0]
        assert event.phase == "i"
        assert event.duration_us == 0.0

    def test_capacity_bounded_with_drop_count(self):
        tracer = Tracer(capacity=5)
        for index in range(9):
            tracer.instant("test", f"e{index}")
        assert len(tracer.events()) == 5
        assert tracer.dropped == 4
        assert [event.name for event in tracer.events()] == [
            "e4", "e5", "e6", "e7", "e8"
        ]

    def test_chrome_export_shape(self):
        tracer = Tracer()
        with tracer.span("cat", "s"):
            pass
        tracer.instant("cat", "i")
        document = tracer.to_chrome_trace()
        assert {event["ph"] for event in document["traceEvents"]} == {"X", "i"}
        for event in document["traceEvents"]:
            assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)
        json.dumps(document)  # must be serializable

    def test_dump_writes_valid_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("cat", "s"):
            pass
        path = tracer.dump(tmp_path / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded["otherData"]["generator"] == "pyparc"

    def test_threads_get_distinct_tids(self):
        tracer = Tracer()

        def record():
            with tracer.span("cat", "thread-span"):
                pass

        threads = [threading.Thread(target=record) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        document = tracer.to_chrome_trace()
        tids = {event["tid"] for event in document["traceEvents"]}
        assert len(tids) == 3

    def test_span_durations_filter(self):
        tracer = Tracer()
        with tracer.span("a", "x"):
            pass
        with tracer.span("b", "y"):
            pass
        assert len(tracer.span_durations()) == 2
        assert len(tracer.span_durations("a")) == 1

    def test_clear(self):
        tracer = Tracer(capacity=1)
        tracer.instant("c", "1")
        tracer.instant("c", "2")
        tracer.clear()
        assert tracer.events() == []
        assert tracer.dropped == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestGlobalTracerIntegration:
    def test_io_executions_traced(self, plain_runtime):
        @parc.parallel(
            name="telemetry.Pinger", async_methods=["ping"], sync_methods=["count"]
        )
        class Pinger:
            def __init__(self):
                self.n = 0

            def ping(self):
                self.n += 1

            def count(self):
                return self.n

        tracer = Tracer()
        set_global_tracer(tracer)
        try:
            pinger = parc.new(Pinger)
            pinger.ping()
            pinger.ping()
            assert pinger.count() == 2
            pinger.parc_release()
        finally:
            set_global_tracer(None)
        names = [event.name for event in tracer.events()]
        assert names.count("Pinger.ping") == 2
        assert "Pinger.count" in names
        sync_flags = {
            event.name: event.args.get("sync") for event in tracer.events()
        }
        assert sync_flags["Pinger.ping"] is False
        assert sync_flags["Pinger.count"] is True

    def test_global_tracer_set_get(self):
        tracer = Tracer()
        set_global_tracer(tracer)
        assert get_global_tracer() is tracer
        set_global_tracer(None)
        assert get_global_tracer() is None


class TestMetrics:
    def test_counter(self):
        counter = Counter("requests")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = Gauge("queue_depth")
        gauge.set(3)
        gauge.add(-1)
        assert gauge.value == 2.0

    def test_histogram_buckets(self):
        histogram = Histogram("latency", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.total == pytest.approx(5.0605)
        counts = dict(histogram.bucket_counts())
        assert counts[0.001] == 1
        assert counts[0.01] == 2
        assert counts[0.1] == 1
        assert counts[float("inf")] == 1

    def test_histogram_quantile(self):
        histogram = Histogram("q", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.6, 1.5, 3.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 4.0
        with pytest.raises(ValueError):
            histogram.quantile(2.0)

    def test_histogram_validation(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(2.0, 1.0))

    def test_registry_reuse_and_type_safety(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        assert registry.counter("c") is counter
        with pytest.raises(ValueError):
            registry.gauge("c")

    def test_registry_snapshot_and_render(self):
        registry = MetricsRegistry()
        registry.counter("calls").inc(3)
        registry.gauge("depth").set(1.5)
        registry.histogram("lat").observe(0.02)
        snapshot = registry.snapshot()
        assert snapshot["calls"] == 3
        assert snapshot["depth"] == 1.5
        assert snapshot["lat_count"] == 1
        text = registry.render()
        assert "calls 3" in text
        assert "depth 1.5" in text
