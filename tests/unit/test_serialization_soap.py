"""Unit tests for the SOAP formatter and its escaping/parsing."""

from __future__ import annotations

import array
from dataclasses import dataclass

import numpy as np
import pytest

from repro.errors import UnknownTypeError, WireFormatError
from repro.serialization import BinaryFormatter, SoapFormatter
from repro.serialization.registry import serializable
from repro.serialization.soap import escape_text, unescape_text


@serializable(name="test.soap.Record")
@dataclass
class Record:
    label: str
    values: list


@pytest.fixture
def formatter():
    return SoapFormatter()


def roundtrip(formatter, value):
    return formatter.loads(formatter.dumps(value))


class TestEscaping:
    @pytest.mark.parametrize(
        "text",
        ["", "plain", "<tag>", "a&b", 'quo"te', "new\nline", "\x00\x01",
         "unicode: ñ € 日本語", "mixed <&> \t end", "]]>", "&#x41;"],
    )
    def test_escape_roundtrip(self, text):
        assert unescape_text(escape_text(text)) == text

    def test_escaped_output_contains_no_raw_markup(self):
        escaped = escape_text('<v t="str">&')
        assert "<" not in escaped
        assert '"' not in escaped
        # Every & must start a recognised entity.
        index = 0
        while (index := escaped.find("&", index)) != -1:
            assert escaped[index:].startswith(
                ("&amp;", "&lt;", "&gt;", "&quot;", "&#x")
            )
            index += 1

    def test_unterminated_entity_rejected(self):
        with pytest.raises(WireFormatError):
            unescape_text("&amp")

    def test_unknown_entity_rejected(self):
        with pytest.raises(WireFormatError):
            unescape_text("&bogus;")


class TestRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [None, True, False, 42, -7, 2**70, 3.25, float("inf"), "text",
         "needs <escaping> & \"quotes\"", b"\x00binary\xff", bytearray(b"x"),
         [1, [2, [3]]], (1, "two"), {"k": [1, 2]}, {1, 2}, frozenset({3}),
         complex(0.5, -1.5)],
    )
    def test_values(self, formatter, value):
        result = roundtrip(formatter, value)
        assert result == value
        assert type(result) is type(value)

    def test_nan(self, formatter):
        import math

        assert math.isnan(roundtrip(formatter, float("nan")))

    def test_shared_refs_and_cycles(self, formatter):
        shared = [1]
        value = {"a": shared, "b": shared}
        result = roundtrip(formatter, value)
        assert result["a"] is result["b"]
        cyclic = []
        cyclic.append(cyclic)
        result = roundtrip(formatter, cyclic)
        assert result[0] is result

    def test_array_and_ndarray(self, formatter):
        arr = array.array("i", [10, -20, 30])
        assert roundtrip(formatter, arr) == arr
        matrix = np.eye(3)
        result = roundtrip(formatter, matrix)
        assert (result == matrix).all()

    def test_registered_object(self, formatter):
        record = Record(label="r<1>", values=[1, None])
        result = roundtrip(formatter, record)
        assert isinstance(result, Record)
        assert result.label == "r<1>"
        assert result.values == [1, None]

    def test_unregistered_rejected(self, formatter):
        class Nope:
            pass

        with pytest.raises(UnknownTypeError):
            formatter.dumps(Nope())


class TestEnvelope:
    def test_output_is_soap_wrapped(self, formatter):
        text = formatter.dumps(1).decode()
        assert text.startswith("<soap:Envelope")
        assert text.endswith("</soap:Envelope>")

    def test_missing_envelope_rejected(self, formatter):
        with pytest.raises(WireFormatError):
            formatter.loads(b'<v t="int">1</v>')

    def test_non_utf8_rejected(self, formatter):
        with pytest.raises(WireFormatError):
            formatter.loads(b"\xff\xfe\x00")

    def test_trailing_content_rejected(self, formatter):
        good = formatter.dumps(1).decode()
        tampered = good.replace(
            "</soap:Body>", '<v t="int">2</v></soap:Body>'
        )
        with pytest.raises(WireFormatError):
            formatter.loads(tampered.encode())

    def test_malformed_value_rejected(self, formatter):
        body = '<v t="int">not-a-number</v>'
        payload = (
            '<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/'
            f'envelope/"><soap:Body>{body}</soap:Body></soap:Envelope>'
        )
        with pytest.raises(WireFormatError):
            formatter.loads(payload.encode())

    def test_unknown_type_tag_rejected(self, formatter):
        body = '<v t="mystery">x</v>'
        payload = (
            '<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/'
            f'envelope/"><soap:Body>{body}</soap:Body></soap:Envelope>'
        )
        with pytest.raises(WireFormatError):
            formatter.loads(payload.encode())


class TestSizeContrast:
    """The Fig. 8b premise: SOAP output is materially larger than binary."""

    def test_soap_larger_than_binary_for_int_arrays(self):
        payload = array.array("i", range(1024))
        soap_size = len(SoapFormatter().dumps(payload))
        binary_size = len(BinaryFormatter().dumps(payload))
        assert soap_size > binary_size * 1.25

    def test_soap_much_larger_for_structures(self):
        value = [{"key": index, "flag": True} for index in range(100)]
        soap_size = len(SoapFormatter().dumps(value))
        binary_size = len(BinaryFormatter().dumps(value))
        assert soap_size > binary_size * 3

    def test_formatters_agree_on_value(self):
        value = {"nested": [1, (2.5, "x")], "b": b"\x01"}
        binary = BinaryFormatter()
        soap = SoapFormatter()
        assert binary.loads(binary.dumps(value)) == soap.loads(soap.dumps(value))
