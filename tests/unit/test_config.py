"""ParcConfig and the init()/session() configuration surface."""

from __future__ import annotations

import pickle

import pytest

import repro.core as parc
from repro.core import GrainPolicy, ParcConfig, TelemetryConfig
from repro.errors import NotRunningError, ScooppError


class TestParcConfig:
    def test_defaults_mirror_init_defaults(self):
        config = ParcConfig()
        assert config.nodes == 4
        assert config.channel == "loopback"
        assert config.grain is None
        assert config.placement == "round_robin"
        assert config.dispatch_pool_size == 16
        assert config.worker_processes == 0
        assert config.worker_modules == ()
        assert config.heartbeat_s is None
        assert config.breaker is None
        assert config.chaos_plan is None
        assert config.chaos_controller is None
        assert config.same_node_transport is None
        assert config.telemetry == TelemetryConfig()
        assert config.telemetry.enabled is False

    def test_validation(self):
        with pytest.raises(ScooppError, match="nodes"):
            ParcConfig(nodes=0)
        with pytest.raises(ScooppError, match="worker_processes"):
            ParcConfig(worker_processes=-1)
        with pytest.raises(ScooppError, match="telemetry"):
            ParcConfig(telemetry=True)  # type: ignore[arg-type]
        with pytest.raises(ScooppError, match="same_node_transport"):
            ParcConfig(same_node_transport="smoke-signals")
        assert ParcConfig(same_node_transport="shm").same_node_transport == "shm"

    def test_worker_modules_normalized_to_tuple(self):
        config = ParcConfig(worker_modules=["a", "b"])
        assert config.worker_modules == ("a", "b")

    def test_from_kwargs_accepts_every_documented_init_kwarg(self):
        config = ParcConfig.from_kwargs(
            nodes=2,
            channel="tcp",
            grain=GrainPolicy(max_calls=4),
            placement="least_loaded",
            dispatch_pool_size=8,
            worker_processes=0,
            worker_modules=("mod",),
            heartbeat_s=0.5,
            breaker=None,
            chaos_plan=None,
            chaos_controller=None,
        )
        assert config.nodes == 2
        assert config.channel == "tcp"
        assert config.placement == "least_loaded"
        assert config.heartbeat_s == 0.5

    def test_from_kwargs_warns_and_drops_unknown_keys(self):
        with pytest.warns(UserWarning, match="max_nodes"):
            config = ParcConfig.from_kwargs(nodes=3, max_nodes=9)
        assert config.nodes == 3
        assert not hasattr(config, "max_nodes")

    def test_picklable_for_worker_spawn(self):
        config = ParcConfig(telemetry=TelemetryConfig(enabled=True))
        clone = pickle.loads(pickle.dumps(config))
        assert clone == config


class TestInitForms:
    def test_init_with_config_object(self):
        runtime = parc.init(ParcConfig(nodes=2))
        try:
            assert runtime.cluster.num_nodes == 2
        finally:
            parc.shutdown()

    def test_init_legacy_positional_int_is_nodes(self):
        runtime = parc.init(2)
        try:
            assert runtime.cluster.num_nodes == 2
        finally:
            parc.shutdown()

    def test_init_rejects_config_plus_kwargs(self):
        with pytest.raises(ScooppError, match="not both"):
            parc.init(ParcConfig(), channel="tcp")

    def test_init_legacy_kwargs(self):
        runtime = parc.init(nodes=2, channel="loopback", heartbeat_s=None)
        try:
            assert runtime.cluster.num_nodes == 2
        finally:
            parc.shutdown()


class TestSession:
    def test_session_yields_runtime_and_shuts_down(self):
        with parc.session(ParcConfig(nodes=1)) as runtime:
            assert parc.current_runtime() is runtime
        with pytest.raises(NotRunningError):
            parc.current_runtime()

    def test_session_shuts_down_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with parc.session(nodes=1):
                raise RuntimeError("boom")
        with pytest.raises(NotRunningError):
            parc.current_runtime()


class TestTelemetryConfig:
    def test_defaults_off(self):
        config = TelemetryConfig()
        assert config.enabled is False
        assert config.sample_rate == 1.0
        assert config.capacity == 100_000

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_rate=1.5)
        with pytest.raises(ValueError):
            TelemetryConfig(sample_rate=-0.1)
        with pytest.raises(ValueError):
            TelemetryConfig(capacity=0)
