"""The scheme-registry channel factory (repro.channels.create)."""

from __future__ import annotations

import pytest

from repro import channels
from repro.channels.breaker import BreakerChannel, BreakerPolicy
from repro.channels.factory import register_scheme, register_wrapper
from repro.channels.http import HttpChannel
from repro.channels.loopback import LoopbackChannel
from repro.channels.tcp import TcpChannel
from repro.chaos import FaultPlan, FaultyChannel
from repro.errors import ChannelError
from repro.telemetry import MetricsRegistry


class TestBaseSchemes:
    def test_every_builtin_base_scheme(self):
        assert set(channels.available_kinds()) >= {
            "loopback",
            "tcp",
            "http",
            "aio",
            "shm",
        }
        assert isinstance(channels.create("loopback"), LoopbackChannel)
        assert isinstance(channels.create("http"), HttpChannel)
        tcp = channels.create("tcp")
        try:
            assert isinstance(tcp, TcpChannel)
        finally:
            tcp.close()
        shm = channels.create("shm")
        try:
            assert shm.scheme == "shm"
        finally:
            shm.close()

    def test_unknown_base_rejected_with_catalog(self):
        with pytest.raises(ChannelError, match="loopback"):
            channels.create("carrier-pigeon")

    def test_base_opts_forwarded(self):
        from repro.serialization import BinaryFormatter

        formatter = BinaryFormatter()
        channel = channels.create("loopback", formatter=formatter)
        assert channel.formatter is formatter


class TestWrappers:
    def test_chaos_wraps_base(self):
        plan = FaultPlan(seed=0)
        channel = channels.create("chaos+loopback", chaos_plan=plan)
        assert isinstance(channel, FaultyChannel)
        assert isinstance(channel.inner, LoopbackChannel)
        assert channel.plan is plan

    def test_breaker_wraps_base(self):
        policy = BreakerPolicy(failure_threshold=2)
        channel = channels.create("breaker+loopback", breaker_policy=policy)
        assert isinstance(channel, BreakerChannel)
        assert channel.policy is policy

    def test_stacking_order_leftmost_outermost(self):
        metrics = MetricsRegistry()
        channel = channels.create(
            "breaker+chaos+loopback",
            chaos_plan=FaultPlan(seed=1),
            breaker_policy=BreakerPolicy(),
            metrics=metrics,
        )
        assert isinstance(channel, BreakerChannel)
        assert isinstance(channel.inner, FaultyChannel)
        assert isinstance(channel.inner.inner, LoopbackChannel)

    def test_samenode_wraps_socket_base(self):
        from repro.shm import SameNodeChannel

        channel = channels.create("samenode+tcp")
        try:
            assert isinstance(channel, SameNodeChannel)
            # Presents the inner scheme: slots into tcp URI routing.
            assert channel.scheme == "tcp"
        finally:
            channel.close()

    def test_full_backplane_stack(self):
        from repro.shm import SameNodeChannel

        channel = channels.create(
            "breaker+chaos+samenode+tcp",
            chaos_plan=FaultPlan(seed=1),
            breaker_policy=BreakerPolicy(),
        )
        try:
            assert isinstance(channel, BreakerChannel)
            assert isinstance(channel.inner, FaultyChannel)
            assert isinstance(channel.inner.inner, SameNodeChannel)
        finally:
            channel.close()

    def test_unknown_wrapper_rejected(self):
        with pytest.raises(ChannelError, match="wrapper"):
            channels.create("teleport+loopback")

    def test_unconsumed_wrapper_option_rejected(self):
        # A silently ignored chaos_plan would run a test without its
        # faults; the factory refuses instead.
        with pytest.raises(ChannelError, match="chaos_plan"):
            channels.create("loopback", chaos_plan=FaultPlan(seed=0))
        with pytest.raises(ChannelError, match="breaker_policy"):
            channels.create(
                "chaos+loopback", breaker_policy=BreakerPolicy()
            )

    def test_metrics_without_consumer_is_tolerated(self):
        # metrics is cross-cutting: many call sites pass it
        # unconditionally, and a bare base channel just ignores it.
        channel = channels.create("loopback", metrics=MetricsRegistry())
        assert isinstance(channel, LoopbackChannel)


class TestRegistration:
    def test_register_scheme_and_create(self):
        marker = object()

        def make(**opts):
            channel = LoopbackChannel(**opts)
            channel.marker = marker
            return channel

        register_scheme("loopback2", make)
        try:
            channel = channels.create("loopback2")
            assert channel.marker is marker
        finally:
            register_scheme("loopback2", LoopbackChannel, replace=True)

    def test_duplicate_scheme_rejected(self):
        with pytest.raises(ChannelError, match="already registered"):
            register_scheme("loopback", LoopbackChannel)

    def test_invalid_names_rejected(self):
        with pytest.raises(ChannelError):
            register_scheme("a+b", LoopbackChannel)
        with pytest.raises(ChannelError):
            register_wrapper("", lambda inner: inner)

    def test_register_wrapper_and_create(self):
        seen = {}

        def wrap(inner, **opts):
            seen["inner"] = inner
            seen.update(opts)
            return inner

        register_wrapper("passthru", wrap, opt_names=("metrics",))
        try:
            metrics = MetricsRegistry()
            channel = channels.create("passthru+loopback", metrics=metrics)
            assert isinstance(channel, LoopbackChannel)
            assert seen["inner"] is channel
            assert seen["metrics"] is metrics
        finally:
            # No unregister API; replace with an identity to neutralize.
            register_wrapper(
                "passthru", lambda inner, **_: inner, replace=True
            )
