"""Unit tests for clocks, platform models, and network curves.

The ordering assertions here ARE the paper's qualitative claims: if a
calibration edit ever breaks "MPI < RMI < Mono latency" or "Mono 1.1.7 ≫
1.0.5 bandwidth", these tests fail before any benchmark runs.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.perfmodel import (
    JAVA_NIO,
    JAVA_RMI,
    MONO_105_TCP,
    MONO_117_HTTP,
    MONO_117_TCP,
    MPI_MPICH,
    MS_NET,
    PLATFORMS,
    PlatformModel,
    VirtualClock,
    WallClock,
    bandwidth_curve,
    payload_bandwidth,
    pingpong_round_trip,
    platform_by_name,
    transfer_time,
)
from repro.perfmodel.network import dominates, figure8_sizes, half_power_point
from repro.perfmodel.platforms import SUN_JVM, WIRE_CEILING_BPS


class TestClocks:
    def test_wall_clock_monotonic(self):
        clock = WallClock()
        assert clock.now() <= clock.now()

    def test_virtual_clock_advance(self):
        clock = VirtualClock(start=10.0)
        assert clock.now() == 10.0
        assert clock.advance(5.0) == 15.0
        assert clock.advance_to(20.0) == 20.0

    def test_virtual_clock_rejects_backwards(self):
        clock = VirtualClock()
        clock.advance(5.0)
        with pytest.raises(SimulationError):
            clock.advance(-1.0)
        with pytest.raises(SimulationError):
            clock.advance_to(1.0)


class TestModelValidation:
    def test_bad_latency(self):
        with pytest.raises(ValueError):
            PlatformModel(name="x", one_way_latency_s=0, wire_bandwidth_Bps=1)

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            PlatformModel(name="x", one_way_latency_s=1, wire_bandwidth_Bps=0)

    def test_bad_expansion(self):
        with pytest.raises(ValueError):
            PlatformModel(
                name="x",
                one_way_latency_s=1,
                wire_bandwidth_Bps=1,
                wire_expansion=0.5,
            )

    def test_bad_pool(self):
        with pytest.raises(ValueError):
            PlatformModel(
                name="x",
                one_way_latency_s=1,
                wire_bandwidth_Bps=1,
                thread_pool_limit=0,
            )

    def test_with_overrides(self):
        tweaked = MONO_117_TCP.with_overrides(thread_pool_limit=None)
        assert tweaked.thread_pool_limit is None
        assert tweaked.one_way_latency_s == MONO_117_TCP.one_way_latency_s

    def test_lookup_by_name(self):
        assert platform_by_name("Mono 1.1.7 (Tcp)") is MONO_117_TCP
        with pytest.raises(KeyError):
            platform_by_name("Mono 9.9")


class TestPaperCalibration:
    """Assertions lifted directly from §4's reported numbers."""

    def test_latency_ordering(self):
        assert (
            MPI_MPICH.one_way_latency_s
            < JAVA_RMI.one_way_latency_s
            < MONO_117_TCP.one_way_latency_s
        )

    def test_latency_values_match_paper(self):
        assert MPI_MPICH.one_way_latency_s == pytest.approx(100e-6)
        assert JAVA_RMI.one_way_latency_s == pytest.approx(273e-6)
        assert MONO_117_TCP.one_way_latency_s == pytest.approx(520e-6)

    def test_nio_latency_close_to_mono(self):
        ratio = JAVA_NIO.one_way_latency_s / MONO_117_TCP.one_way_latency_s
        assert 0.7 < ratio < 1.1  # "very close to the Java nio package"

    def test_bandwidth_ordering_fig8a(self):
        assert (
            MPI_MPICH.wire_bandwidth_Bps
            > JAVA_RMI.wire_bandwidth_Bps
            > MONO_117_TCP.wire_bandwidth_Bps
        )

    def test_mono_release_gap_fig8b(self):
        ratio = MONO_117_TCP.wire_bandwidth_Bps / MONO_105_TCP.wire_bandwidth_Bps
        assert ratio > 5  # "radically increased from release 1.0.5"

    def test_http_channel_slowest_fig8b(self):
        assert MONO_117_HTTP.wire_bandwidth_Bps < MONO_105_TCP.wire_bandwidth_Bps

    def test_sequential_gaps(self):
        assert MONO_117_TCP.compute_scale_float == pytest.approx(1.4)  # +40%
        assert MS_NET.compute_scale_float == pytest.approx(1.1)  # +10%
        assert SUN_JVM.compute_scale_float == 1.0
        assert MONO_117_TCP.compute_scale_int == pytest.approx(1.0)  # sieve

    def test_nothing_exceeds_wire_ceiling(self):
        for model in PLATFORMS:
            assert model.wire_bandwidth_Bps <= WIRE_CEILING_BPS

    def test_mono_pool_is_capped(self):
        assert MONO_117_TCP.thread_pool_limit is not None
        assert JAVA_RMI.thread_pool_limit is None


class TestNetworkCurves:
    def test_transfer_time_components(self):
        model = PlatformModel(
            name="t", one_way_latency_s=1.0, wire_bandwidth_Bps=100.0
        )
        assert transfer_time(model, 0) == pytest.approx(1.0)
        assert transfer_time(model, 100) == pytest.approx(2.0)

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            transfer_time(MPI_MPICH, -1)
        with pytest.raises(ValueError):
            payload_bandwidth(MPI_MPICH, 0)

    def test_pingpong_is_double(self):
        assert pingpong_round_trip(JAVA_RMI, 1000) == pytest.approx(
            2 * transfer_time(JAVA_RMI, 1000)
        )

    def test_bandwidth_monotonic_in_size(self):
        sizes = figure8_sizes(3)
        curve = bandwidth_curve(MONO_117_TCP, sizes)
        bandwidths = [bandwidth for _size, bandwidth in curve]
        assert bandwidths == sorted(bandwidths)

    def test_bandwidth_saturates_below_asymptote(self):
        top = payload_bandwidth(MPI_MPICH, 100 * 1024 * 1024)
        assert top < MPI_MPICH.wire_bandwidth_Bps
        assert top > 0.9 * MPI_MPICH.wire_bandwidth_Bps / MPI_MPICH.wire_expansion

    def test_half_power_point(self):
        model = PlatformModel(
            name="h", one_way_latency_s=0.001, wire_bandwidth_Bps=1e6
        )
        size = half_power_point(model)
        half = payload_bandwidth(model, size)
        assert half == pytest.approx(model.wire_bandwidth_Bps / 2, rel=0.01)

    def test_figure8_sizes_span(self):
        sizes = figure8_sizes(2)
        assert sizes[0] == 1.0
        assert sizes[-1] >= 1024 * 1024
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    def test_dominates(self):
        sizes = figure8_sizes(2)
        fast = bandwidth_curve(MPI_MPICH, sizes)
        slow = bandwidth_curve(MONO_117_TCP, sizes)
        assert dominates(fast, slow)
        assert not dominates(slow, fast)
