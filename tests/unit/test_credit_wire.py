"""Wire-interop tests for credit-based backpressure.

The credit exchange is asymmetric and optional on both ends: a client
requests credits with a flag bit, a server grants them only when asked
and only when it has a grantor.  Every mixed pairing must degrade to the
plain (uncredited) protocol — these tests pin that matrix across the
tcp, aio and shm transports.
"""

from __future__ import annotations

import pytest

from repro.aio import AioTcpChannel
from repro.channels.tcp import TcpChannel
from repro.flow import DEFAULT_WINDOW, CreditGate, CreditGrantor
from repro.shm import ShmChannel


def echo_handler(path, body, headers):
    return f"{path}:".encode() + bytes(body)


def granting_handler(window=10, pressure=0.0):
    """An echo handler advertising credits, as RemotingHost.listen does."""

    def handler(path, body, headers):
        return f"{path}:".encode() + bytes(body)

    grantor = CreditGrantor(window=window)
    grantor.add_source(lambda: pressure)
    handler.credit_grantor = grantor
    return handler


@pytest.fixture(params=["tcp", "aio", "shm"])
def transport(request):
    return request.param


def make_channel(kind, credits):
    if kind == "tcp":
        return TcpChannel(credits=credits)
    if kind == "aio":
        return AioTcpChannel(credits=credits)
    return ShmChannel(credits=credits)


def authority_for(kind):
    return "auto" if kind == "shm" else "127.0.0.1:0"


class TestCreditInterop:
    def test_credited_client_plain_server(self, transport):
        """A server with no grantor answers uncredited; calls still work."""
        channel = make_channel(transport, credits=True)
        binding = channel.listen(authority_for(transport), echo_handler)
        try:
            for index in range(5):
                payload = str(index).encode()
                assert (
                    channel.call(binding.authority, "p", payload)
                    == b"p:" + payload
                )
        finally:
            binding.close()
            channel.close()

    def test_uncredited_client_granting_server(self, transport):
        """An old client never sees a grant it did not ask for."""
        channel = make_channel(transport, credits=False)
        binding = channel.listen(
            authority_for(transport), granting_handler(window=4)
        )
        try:
            for index in range(5):
                payload = str(index).encode()
                assert (
                    channel.call(binding.authority, "p", payload)
                    == b"p:" + payload
                )
        finally:
            binding.close()
            channel.close()

    def test_credited_exchange(self, transport):
        """Both sides credit-aware: calls flow and grants are adopted."""
        channel = make_channel(transport, credits=True)
        binding = channel.listen(
            authority_for(transport), granting_handler(window=10, pressure=0.5)
        )
        try:
            for index in range(5):
                payload = str(index).encode()
                assert (
                    channel.call(binding.authority, "p", payload)
                    == b"p:" + payload
                )
            if transport in ("tcp", "shm"):
                gate = channel._gate_for(binding.authority)
                assert gate is not None
                # window=10 at pressure 0.5 advertises 5.
                assert gate.window == 5
        finally:
            binding.close()
            channel.close()


class TestCreditGateWiring:
    def test_tcp_gate_starts_at_default_window(self):
        channel = TcpChannel(credits=True)
        binding = channel.listen("127.0.0.1:0", echo_handler)
        try:
            channel.call(binding.authority, "p", b"x")
            gate = channel._gate_for(binding.authority)
            # Plain server: no grant ever arrives, the window never moves.
            assert gate.window == DEFAULT_WINDOW
        finally:
            binding.close()
            channel.close()

    def test_credits_off_means_no_gate(self):
        channel = TcpChannel(credits=False)
        try:
            assert channel._gate_for("anywhere:1") is None
        finally:
            channel.close()

    def test_saturated_server_grants_probe_window(self):
        """Full pressure shrinks the advertised window to the floor."""
        channel = TcpChannel(credits=True)
        binding = channel.listen(
            "127.0.0.1:0", granting_handler(window=64, pressure=1.0)
        )
        try:
            channel.call(binding.authority, "p", b"x")
            assert channel._gate_for(binding.authority).window == 1
            # The shrunken window still serves sequential traffic.
            assert channel.call(binding.authority, "q", b"y") == b"q:y"
        finally:
            binding.close()
            channel.close()

    def test_gate_is_per_authority(self):
        channel = TcpChannel(credits=True)
        a = channel.listen("127.0.0.1:0", granting_handler(window=8))
        b = channel.listen(
            "127.0.0.1:0", granting_handler(window=64, pressure=0.75)
        )
        try:
            channel.call(a.authority, "p", b"")
            channel.call(b.authority, "p", b"")
            assert channel._gate_for(a.authority).window == 8
            assert channel._gate_for(b.authority).window == 16
        finally:
            a.close()
            b.close()
            channel.close()
