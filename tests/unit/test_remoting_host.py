"""Unit tests for the remoting host: publication, dispatch, lifetime."""

from __future__ import annotations

import pytest

from repro.channels import LoopbackChannel
from repro.channels.services import ChannelServices
from repro.errors import (
    RemoteInvocationError,
    RemotingError,
)
from repro.perfmodel import VirtualClock
from repro.remoting import (
    MarshalByRefObject,
    ObjRef,
    RemotingHost,
    WellKnownObjectMode,
)
from repro.remoting.proxy import RemoteProxy, is_proxy, proxy_uri


class Counter(MarshalByRefObject):
    def __init__(self):
        self.n = 0

    def incr(self, by=1):
        self.n += by
        return self.n

    def _hidden(self):
        return "secret"

    def fail(self):
        raise RuntimeError("intentional")


class Greeter(MarshalByRefObject):
    def greet(self, name):
        return f"hello {name}"


@pytest.fixture
def host():
    services = ChannelServices()
    services.register_channel(LoopbackChannel())
    remoting_host = RemotingHost(name="test-host", services=services)
    remoting_host.listen(LoopbackChannel(), "auto")
    yield remoting_host
    remoting_host.close()


def proxy_to(host, path):
    uri = f"{host.uris[0]}/{path}"
    return host.get_object(uri)


class TestPublication:
    def test_publish_and_call(self, host):
        counter = Counter()
        ref = host.publish(counter, "counter")
        assert "counter" in ref.uris[0]
        proxy = proxy_to(host, "counter")
        # resolve_local shortcut: same host gets the live object back...
        # so call through a fresh client host to force the wire path.
        assert proxy.incr() in (1,)

    def test_publish_requires_mbr(self, host):
        class Plain:
            pass

        with pytest.raises(RemotingError, match="MarshalByRefObject"):
            host.publish(Plain())

    def test_duplicate_path_rejected(self, host):
        host.publish(Counter(), "dup")
        with pytest.raises(RemotingError):
            host.publish(Counter(), "dup")

    def test_republish_same_object_returns_same_ref(self, host):
        counter = Counter()
        first = host.publish(counter, "same")
        second = host.publish(counter)
        assert first.uris == second.uris

    def test_auto_path_generated(self, host):
        ref = host.publish(Counter())
        assert "auto/counter-" in ref.uris[0]

    def test_unpublish(self, host):
        counter = Counter()
        host.publish(counter, "gone")
        host.unpublish("gone")
        assert not counter.is_published()
        assert "gone" not in host.published_paths()

    def test_published_paths_sorted(self, host):
        host.publish(Counter(), "b")
        host.publish(Counter(), "a")
        assert host.published_paths() == ["a", "b"]


class TestWellKnownModes:
    def test_singleton_keeps_state(self, host):
        host.register_well_known(Counter, "wk", WellKnownObjectMode.SINGLETON)
        proxy = proxy_to(host, "wk")
        assert proxy.incr() == 1
        assert proxy.incr() == 2

    def test_singleton_constructed_lazily(self, host):
        constructed = []

        class Lazy(MarshalByRefObject):
            def __init__(self):
                constructed.append(1)

            def ping(self):
                return "pong"

        host.register_well_known(Lazy, "lazy")
        assert constructed == []
        proxy_to(host, "lazy").ping()
        assert constructed == [1]

    def test_single_call_resets_state(self, host):
        host.register_well_known(Counter, "sc", WellKnownObjectMode.SINGLE_CALL)
        proxy = proxy_to(host, "sc")
        assert proxy.incr() == 1
        assert proxy.incr() == 1  # fresh instance per call

    def test_well_known_requires_mbr(self, host):
        class Plain:
            pass

        with pytest.raises(RemotingError):
            host.register_well_known(Plain, "bad")

    def test_failing_constructor_reported(self, host):
        class Broken(MarshalByRefObject):
            def __init__(self):
                raise ValueError("no")

            def x(self):
                return 1

        host.register_well_known(Broken, "broken")
        with pytest.raises(RemoteInvocationError, match="ActivationError"):
            proxy_to(host, "broken").x()


class TestDispatch:
    def test_unknown_object(self, host):
        with pytest.raises(RemoteInvocationError, match="UnknownObjectError"):
            proxy_to(host, "missing").anything()

    def test_unknown_method(self, host):
        host.publish(Greeter(), "greeter")
        with pytest.raises(RemoteInvocationError, match="no remote method"):
            proxy_to(host, "greeter").nonexistent()

    def test_private_method_blocked(self, host):
        host.publish(Counter(), "private-test")
        proxy = proxy_to(host, "private-test")
        with pytest.raises(AttributeError):
            proxy._hidden  # noqa: B018 - attribute access is the test

    def test_user_exception_carries_traceback(self, host):
        host.publish(Counter(), "failing")
        try:
            proxy_to(host, "failing").fail()
        except RemoteInvocationError as exc:
            assert "intentional" in str(exc)
            assert "RuntimeError" in exc.remote_traceback
        else:
            pytest.fail("expected RemoteInvocationError")

    def test_kwargs_pass_through(self, host):
        host.publish(Counter(), "kw")
        assert proxy_to(host, "kw").incr(by=5) == 5

    def test_one_way_executes_and_acks_immediately(self, host):
        import time

        host.publish(Counter(), "ow")
        proxy = proxy_to(host, "ow")
        proxy.incr.one_way()
        deadline = time.time() + 5
        while time.time() < deadline:
            if proxy.incr() >= 2:
                break
            time.sleep(0.01)
        else:
            pytest.fail("one-way call never executed")

    def test_one_way_failures_recorded(self, host):
        import time

        host.publish(Counter(), "owf")
        proxy = proxy_to(host, "owf")
        proxy.fail.one_way()
        deadline = time.time() + 5
        while time.time() < deadline and not host.one_way_failures:
            time.sleep(0.01)
        failures = host.one_way_failures
        assert failures
        assert failures[0][1] == "fail"


class TestReferences:
    def test_returned_mbr_becomes_proxy_on_foreign_host(self, host):
        class Factory(MarshalByRefObject):
            def make(self):
                return Counter()

        host.register_well_known(Factory, "factory")
        client_services = ChannelServices()
        client_services.register_channel(LoopbackChannel())
        client = RemotingHost(name="client", services=client_services)
        try:
            factory = client.get_object(f"{host.uris[0]}/factory")
            counter = factory.make()
            assert is_proxy(counter)
            assert counter.incr() == 1
            assert counter.incr() == 2
        finally:
            client.close()

    def test_reference_shortcut_on_home_host(self, host):
        class Holder(MarshalByRefObject):
            def __init__(self):
                self.target = Counter()

            def get_target(self):
                return self.target

        holder = Holder()
        host.publish(holder, "holder")
        # Decoding on the same host resolves to the live object.
        result = proxy_to(host, "holder").get_target()
        assert result is holder.target

    def test_objref_validation(self):
        with pytest.raises(RemotingError):
            ObjRef(uris=())

    def test_proxy_uri_helpers(self, host):
        host.publish(Counter(), "uri-test")
        proxy = proxy_to(host, "uri-test")
        assert proxy_uri(proxy).endswith("/uri-test")
        with pytest.raises(RemotingError):
            proxy_uri(object())

    def test_proxy_equality_by_target(self, host):
        host.publish(Counter(), "eq-test")
        first = proxy_to(host, "eq-test")
        second = proxy_to(host, "eq-test")
        assert first == second
        assert hash(first) == hash(second)

    def test_proxy_no_usable_channel(self):
        services = ChannelServices()  # nothing registered
        proxy = RemoteProxy(ObjRef(uris=("tcp://h:1/x",)), services=services)
        with pytest.raises(RemotingError, match="no usable channel"):
            proxy.anything()


class TestLifetime:
    def test_leases_renew_on_call(self):
        clock = VirtualClock()
        services = ChannelServices()
        services.register_channel(LoopbackChannel())
        host = RemotingHost(name="lease-host", services=services, clock=clock)
        host.listen(LoopbackChannel(), "auto")
        try:
            counter = Counter()
            host.objref_for(counter)  # implicit publish: finite lease
            path = counter._parc_path
            clock.advance(299.0)
            host.get_object(f"{host.uris[0]}/{path}").incr()
            clock.advance(200.0)  # would have expired without the renewal
            assert host.collect_expired() == []
            clock.advance(301.0)
            assert host.collect_expired() == [path]
            assert path not in host.published_paths()
        finally:
            host.close()

    def test_explicit_publish_is_immortal(self):
        clock = VirtualClock()
        services = ChannelServices()
        services.register_channel(LoopbackChannel())
        host = RemotingHost(name="lease-host2", services=services, clock=clock)
        try:
            host.publish(Counter(), "pinned")
            clock.advance(10_000_000.0)
            assert host.collect_expired() == []
        finally:
            host.close()


class TestLifecycle:
    def test_double_listen_same_scheme_rejected(self, host):
        with pytest.raises(RemotingError):
            host.listen(LoopbackChannel(), "auto")

    def test_close_idempotent(self, host):
        host.close()
        host.close()

    def test_listen_after_close_rejected(self, host):
        host.close()
        with pytest.raises(RemotingError):
            host.listen(LoopbackChannel(), "auto")

    def test_context_manager(self):
        services = ChannelServices()
        with RemotingHost(name="cm", services=services) as cm_host:
            assert cm_host.published_paths() == []
