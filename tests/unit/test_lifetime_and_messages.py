"""Unit tests for lease bookkeeping and the remoting wire messages."""

from __future__ import annotations

import pytest

from repro.perfmodel import VirtualClock
from repro.remoting.lifetime import DEFAULT_TTL_SECONDS, Lease, LeaseManager
from repro.remoting.messages import CallMessage, RemoteErrorInfo, ReturnMessage
from repro.serialization import BinaryFormatter, SoapFormatter


class TestLease:
    def test_finite_lease_expires(self):
        lease = Lease(path="p", ttl=10.0, expires_at=10.0)
        assert not lease.expired(9.9)
        assert lease.expired(10.1)

    def test_renew_extends(self):
        lease = Lease(path="p", ttl=10.0, expires_at=10.0)
        lease.renew(now=8.0)
        assert lease.expires_at == 18.0

    def test_renew_never_shortens(self):
        lease = Lease(path="p", ttl=10.0, expires_at=50.0)
        lease.renew(now=5.0)
        assert lease.expires_at == 50.0

    def test_infinite_lease(self):
        lease = Lease(path="p", ttl=float("inf"), expires_at=float("inf"))
        assert lease.is_infinite
        assert not lease.expired(1e18)
        lease.renew(now=0.0)  # no-op, no overflow


class TestLeaseManager:
    def test_register_is_idempotent(self):
        clock = VirtualClock()
        manager = LeaseManager(clock=clock)
        first = manager.register("a", ttl=5.0)
        second = manager.register("a", ttl=99.0)  # ignored: already leased
        assert first is second
        assert first.ttl == 5.0

    def test_expiry_and_drop(self):
        clock = VirtualClock()
        manager = LeaseManager(clock=clock)
        manager.register("a", ttl=5.0)
        manager.register("b", ttl=50.0)
        clock.advance(10.0)
        assert manager.expired_paths() == ["a"]
        manager.drop("a")
        assert manager.expired_paths() == []
        assert len(manager) == 1

    def test_renew_unknown_path_ignored(self):
        manager = LeaseManager(clock=VirtualClock())
        manager.renew("ghost")  # must not raise

    def test_activity_keeps_object_alive(self):
        clock = VirtualClock()
        manager = LeaseManager(clock=clock)
        manager.register("busy", ttl=10.0)
        for _ in range(5):
            clock.advance(8.0)
            manager.renew("busy")
        assert manager.expired_paths() == []
        clock.advance(11.0)
        assert manager.expired_paths() == ["busy"]

    def test_default_ttl_matches_dotnet(self):
        assert DEFAULT_TTL_SECONDS == 300.0

    def test_lease_of(self):
        manager = LeaseManager(clock=VirtualClock())
        manager.register("x", ttl=1.0)
        assert manager.lease_of("x").path == "x"
        assert manager.lease_of("y") is None


class TestWireMessages:
    def test_call_message_normalizes_list_args(self):
        message = CallMessage(uri="u", method="m", args=[1, 2])
        assert message.args == (1, 2)

    def test_call_message_roundtrips_both_formatters(self):
        message = CallMessage(
            uri="obj/1", method="work", args=(1, "x"), kwargs={"k": [2]},
            one_way=True,
        )
        for formatter in (BinaryFormatter(), SoapFormatter()):
            decoded = formatter.loads(formatter.dumps(message))
            assert isinstance(decoded, CallMessage)
            assert decoded.uri == "obj/1"
            assert decoded.method == "work"
            assert decoded.args == (1, "x")
            assert decoded.kwargs == {"k": [2]}
            assert decoded.one_way is True

    def test_return_message_value_xor_error(self):
        ok = ReturnMessage(value=42)
        assert not ok.is_error
        failed = ReturnMessage(
            error=RemoteErrorInfo(type_name="ValueError", message="bad")
        )
        assert failed.is_error

    def test_error_info_from_exception(self):
        try:
            raise KeyError("missing")
        except KeyError as exc:
            info = RemoteErrorInfo.from_exception(exc, "trace text")
        assert info.type_name == "KeyError"
        assert "missing" in info.message
        assert info.traceback_text == "trace text"

    def test_return_message_roundtrip_with_error(self):
        message = ReturnMessage(
            error=RemoteErrorInfo("RuntimeError", "boom", "tb")
        )
        formatter = BinaryFormatter()
        decoded = formatter.loads(formatter.dumps(message))
        assert decoded.is_error
        assert decoded.error.type_name == "RuntimeError"
        assert decoded.error.traceback_text == "tb"
