"""Unit tests for the shm channel, doorbells, and same-node routing."""

from __future__ import annotations

import os
import select
import threading

import pytest

from repro.channels.buffers import BufferPool
from repro.channels.factory import create
from repro.channels.tcp import TcpChannel
from repro.errors import ChannelClosedError, ChannelError, RemoteInvocationError
from repro.shm import (
    Doorbell,
    SameNodeChannel,
    ShmChannel,
    shm_available,
    socket_path_for,
)
from repro.telemetry import MetricsRegistry


def echo_handler(path, body, headers):
    prefix = headers.get("prefix", "")
    return f"{prefix}{path}:".encode() + bytes(body)


@pytest.fixture
def shm_pair():
    channel = ShmChannel(ring_size=16 * 1024)
    binding = channel.listen("auto", echo_handler)
    yield channel, binding
    binding.close()
    channel.close()


class TestShmChannel:
    def test_echo(self, shm_pair):
        channel, binding = shm_pair
        assert channel.call(binding.authority, "obj/1", b"hi") == b"obj/1:hi"

    def test_headers_delivered(self, shm_pair):
        channel, binding = shm_pair
        result = channel.call(
            binding.authority, "p", b"x", headers={"prefix": ">"}
        )
        assert result == b">p:x"

    def test_empty_body(self, shm_pair):
        channel, binding = shm_pair
        assert channel.call(binding.authority, "p", b"") == b"p:"

    def test_body_larger_than_ring_streams_through(self, shm_pair):
        """A payload several times the ring size must flow via wrap/park."""
        channel, binding = shm_pair
        body = bytes(range(256)) * 512  # 128 KiB through a 16 KiB ring
        result = channel.call(binding.authority, "big", body)
        assert result == b"big:" + body

    def test_sequential_reuse_pools_connection(self, shm_pair):
        channel, binding = shm_pair
        for index in range(20):
            payload = str(index).encode()
            assert channel.call(binding.authority, "n", payload) == b"n:" + payload

    def test_concurrent_clients(self, shm_pair):
        channel, binding = shm_pair
        errors = []

        def worker(tag):
            try:
                for index in range(10):
                    payload = f"{tag}-{index}".encode()
                    got = channel.call(binding.authority, "c", payload)
                    assert got == b"c:" + payload
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_handler_error_propagates(self):
        def boom(path, body, headers):
            raise RuntimeError("kaput")

        channel = ShmChannel()
        binding = channel.listen("auto", boom)
        try:
            with pytest.raises((ChannelError, RemoteInvocationError)):
                channel.round_trip(binding.authority, "p", {"x": 1})
        finally:
            binding.close()
            channel.close()

    def test_round_trip_structured(self, shm_pair):
        channel, binding = shm_pair

        # round_trip runs the payload codec over the frame body; echo
        # hands back path-prefixed bytes, so serve a real responder.
        def responder(path, body, headers):
            request = channel.formatter.loads(bytes(body))
            return channel.formatter.dumps(request * 2)

        binding2 = channel.listen("auto", responder)
        try:
            assert channel.round_trip(binding2.authority, "p", 21) == 42
        finally:
            binding2.close()

    def test_unknown_authority_raises(self):
        channel = ShmChannel()
        try:
            with pytest.raises(ChannelError):
                channel.call("no-such-authority", "p", b"")
        finally:
            channel.close()

    def test_duplicate_authority_rejected(self, shm_pair):
        channel, binding = shm_pair
        with pytest.raises(ChannelError, match="already bound"):
            channel.listen(binding.authority, echo_handler)

    def test_closed_channel_rejects_calls(self):
        channel = ShmChannel()
        binding = channel.listen("auto", echo_handler)
        authority = binding.authority
        binding.close()
        channel.close()
        with pytest.raises((ChannelClosedError, ChannelError)):
            channel.call(authority, "p", b"")

    def test_authority_reusable_after_close(self):
        channel = ShmChannel()
        binding = channel.listen("reuse-me", echo_handler)
        binding.close()
        binding2 = channel.listen("reuse-me", echo_handler)
        try:
            assert channel.call("reuse-me", "p", b"y") == b"p:y"
        finally:
            binding2.close()
            channel.close()

    def test_tiny_ring_rejected(self):
        with pytest.raises(ChannelError, match="ring_size"):
            ShmChannel(ring_size=128)

    def test_shm_available_tracks_listener(self):
        channel = ShmChannel()
        binding = channel.listen("auto", echo_handler)
        authority = binding.authority
        assert shm_available(authority)
        binding.close()
        channel.close()
        assert not shm_available(authority)

    def test_metrics_exposed(self):
        registry = MetricsRegistry()
        channel = ShmChannel(metrics=registry)
        binding = channel.listen("auto", echo_handler)
        try:
            channel.call(binding.authority, "p", bytes(1024))
        finally:
            binding.close()
            channel.close()
        snap = registry.snapshot()
        assert snap["shm.frames"] >= 2  # request + response
        assert snap["shm.bytes"] > 2048
        assert "shm.doorbell.rings" in snap
        assert "shm.wait.parks" in snap
        assert "shm.ring.occupancy_mean" in snap

    def test_legacy_formatter_path(self):
        """fastpath=False still interoperates over the same rings."""
        channel = ShmChannel(fastpath=False)
        binding = channel.listen("auto", echo_handler)
        try:
            assert channel.call(binding.authority, "p", b"z") == b"p:z"
        finally:
            binding.close()
            channel.close()


class TestFactoryComposition:
    def test_create_shm(self):
        channel = create("shm")
        try:
            assert channel.scheme == "shm"
        finally:
            channel.close()

    def test_breaker_shm_stack(self):
        channel = create("breaker+shm")
        binding = channel.listen("auto", echo_handler)
        try:
            assert channel.call(binding.authority, "p", b"b") == b"p:b"
        finally:
            binding.close()
            channel.close()

    def test_chaos_shm_stack(self):
        channel = create("chaos+shm")
        binding = channel.listen("auto", echo_handler)
        try:
            assert channel.call(binding.authority, "p", b"c") == b"p:c"
        finally:
            binding.close()
            channel.close()

    def test_samenode_tcp_stack(self):
        channel = create("samenode+tcp")
        try:
            assert isinstance(channel, SameNodeChannel)
            assert channel.scheme == "tcp"  # presents the inner scheme
        finally:
            channel.close()


class TestSameNodeRouting:
    def test_remote_authority_stays_on_wire(self):
        registry = MetricsRegistry()
        tcp = TcpChannel()
        binding = tcp.listen("127.0.0.1:0", echo_handler)
        router = SameNodeChannel(tcp, metrics=registry)
        try:
            # No shm handshake socket for this authority: wire route.
            assert router.call(binding.authority, "p", b"w") == b"p:w"
            snap = registry.snapshot()
            assert snap["shm.router.wire_calls"] == 1
            assert snap["shm.router.shm_calls"] == 0
        finally:
            binding.close()
            router.close()

    def test_colocated_authority_routes_shm(self):
        registry = MetricsRegistry()
        tcp = TcpChannel()
        binding = tcp.listen("127.0.0.1:0", echo_handler)
        router = SameNodeChannel(tcp, metrics=registry)
        shm_binding = router.shm.listen(binding.authority, echo_handler)
        try:
            assert router.call(binding.authority, "p", b"s") == b"p:s"
            snap = registry.snapshot()
            assert snap["shm.router.shm_calls"] == 1
            assert snap["shm.router.wire_calls"] == 0
        finally:
            shm_binding.close()
            binding.close()
            router.close()

    def test_setup_failure_demotes_to_wire(self, tmp_path):
        """A stale handshake socket file must not strand the authority."""
        registry = MetricsRegistry()
        tcp = TcpChannel()
        binding = tcp.listen("127.0.0.1:0", echo_handler)
        router = SameNodeChannel(tcp, metrics=registry)
        # Fake a dead co-located peer: the path exists but nothing
        # accepts, so shm establishment fails before any bytes move.
        path = socket_path_for(binding.authority)
        with open(path, "w"):
            pass
        try:
            assert router.call(binding.authority, "p", b"f") == b"p:f"
            snap = registry.snapshot()
            assert snap["shm.router.fallbacks"] == 1
            assert snap["shm.router.wire_calls"] == 1
            # Demoted: later calls skip the probe entirely.
            assert router.call(binding.authority, "p", b"g") == b"p:g"
            assert registry.snapshot()["shm.router.wire_calls"] == 2
        finally:
            os.unlink(path)
            binding.close()
            router.close()

    def test_listen_delegates_to_inner(self):
        tcp = TcpChannel()
        router = SameNodeChannel(tcp)
        binding = router.listen("127.0.0.1:0", echo_handler)
        try:
            assert ":" in binding.authority  # a real socket authority
        finally:
            binding.close()
            router.close()


class TestDoorbell:
    def test_ring_makes_fd_readable(self):
        bell = Doorbell.create()
        try:
            readable, _, _ = select.select([bell.fileno()], [], [], 0)
            assert not readable
            bell.ring()
            readable, _, _ = select.select([bell.fileno()], [], [], 1)
            assert readable
        finally:
            bell.close()

    def test_drain_clears_pending_rings(self):
        bell = Doorbell.create()
        try:
            bell.ring()
            bell.ring()
            bell.drain()
            readable, _, _ = select.select([bell.fileno()], [], [], 0)
            assert not readable
        finally:
            bell.close()

    def test_ring_after_close_is_noop(self):
        bell = Doorbell.create()
        bell.close()
        bell.ring()  # must not raise
        bell.drain()


class TestBufferPoolConcurrency:
    def test_concurrent_checkout_return(self):
        """Hammer acquire/release from many threads; every buffer the
        pool hands out must come back empty and never be shared."""
        pool = BufferPool(max_buffers=8)
        errors = []
        barrier = threading.Barrier(6)

        def worker(tag):
            try:
                barrier.wait()
                for index in range(300):
                    buf = pool.acquire()
                    assert len(buf) == 0, "pool handed out a dirty buffer"
                    marker = f"{tag}:{index}".encode()
                    buf += marker
                    assert bytes(buf) == marker, "buffer shared across threads"
                    pool.release(buf)
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(pool) <= 8

    def test_release_with_live_view_drops_buffer(self):
        pool = BufferPool()
        buf = pool.acquire()
        buf += b"data"
        view = memoryview(buf)
        pool.release(buf)  # cannot clear: must be dropped, not pooled
        assert len(pool) == 0
        view.release()
