"""Unit tests for the implementation-object container (active objects)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.impl import ImplementationObject
from repro.errors import ScooppError


class Recorder:
    def __init__(self):
        self.log = []
        self.lock = threading.Lock()

    def record(self, value):
        with self.lock:
            self.log.append(value)

    def slow(self, value, delay=0.01):
        time.sleep(delay)
        self.record(value)

    def get_log(self):
        with self.lock:
            return list(self.log)

    def boom(self):
        raise ValueError("exploding method")


@pytest.fixture
def impl():
    container = ImplementationObject(Recorder(), "test.Recorder")
    yield container
    container.dispose()


class TestOrdering:
    def test_fifo_order_async(self, impl):
        for index in range(50):
            impl.enqueue("record", (index,))
        impl.drain()
        assert impl.invoke("get_log") == list(range(50))

    def test_batch_runs_in_order(self, impl):
        impl.enqueue_batch("record", [((index,), {}) for index in range(10)])
        impl.drain()
        assert impl.invoke("get_log") == list(range(10))

    def test_sync_after_async_sees_everything(self, impl):
        for index in range(5):
            impl.enqueue("record", (index,))
        # No drain: the sync call queues behind pending tasks.
        assert impl.invoke("get_log") == list(range(5))

    def test_interleaved_batches_and_singles(self, impl):
        impl.enqueue("record", ("a",))
        impl.enqueue_batch("record", [(("b",), {}), (("c",), {})])
        impl.enqueue("record", ("d",))
        assert impl.invoke("get_log") == ["a", "b", "c", "d"]

    def test_serial_execution_no_races(self):
        class Unsafe:
            def __init__(self):
                self.counter = 0

            def bump(self):
                snapshot = self.counter
                time.sleep(0.0005)
                self.counter = snapshot + 1

            def value(self):
                return self.counter

        container = ImplementationObject(Unsafe(), "test.Unsafe")
        try:
            for _ in range(20):
                container.enqueue("bump")
            assert container.invoke("value") == 20
        finally:
            container.dispose()


class TestSyncInvocation:
    def test_result_returned(self, impl):
        impl.enqueue("record", (1,))
        assert impl.invoke("get_log") == [1]

    def test_error_raised_to_caller(self, impl):
        with pytest.raises(ValueError, match="exploding"):
            impl.invoke("boom")

    def test_kwargs(self, impl):
        impl.invoke("slow", ("x",), {"delay": 0.0})
        assert impl.invoke("get_log") == ["x"]


class TestAsyncFailures:
    def test_async_failure_recorded_not_raised(self, impl):
        impl.enqueue("boom")
        impl.drain()
        failures = impl.async_failures()
        assert len(failures) == 1
        assert failures[0][0] == "boom"
        assert "exploding" in failures[0][1]

    def test_failure_does_not_stop_worker(self, impl):
        impl.enqueue("boom")
        impl.enqueue("record", ("after",))
        assert impl.invoke("get_log") == ["after"]

    def test_failure_log_bounded(self, impl):
        for _ in range(40):
            impl.enqueue("boom")
        impl.drain()
        assert len(impl.async_failures()) <= 32


class TestLifecycle:
    def test_drain_waits_for_all_work(self, impl):
        for index in range(5):
            impl.enqueue("slow", (index,), {"delay": 0.005})
        impl.drain()
        assert impl.stats()["queued"] == 0
        assert len(impl.invoke("get_log")) == 5

    def test_dispose_then_enqueue_rejected(self):
        container = ImplementationObject(Recorder(), "test.Recorder")
        container.dispose()
        with pytest.raises(ScooppError, match="disposed"):
            container.enqueue("record", (1,))

    def test_dispose_completes_pending_work(self):
        recorder = Recorder()
        container = ImplementationObject(recorder, "test.Recorder")
        for index in range(10):
            container.enqueue("slow", (index,), {"delay": 0.002})
        container.dispose()
        assert recorder.get_log() == list(range(10))

    def test_stats_shape(self, impl):
        impl.enqueue("record", (1,))
        impl.drain()
        stats = impl.stats()
        assert stats["class_name"] == "test.Recorder"
        assert stats["processed"] >= 1
        assert stats["busy_s"] >= 0.0
        assert stats["async_failures"] == 0

    def test_queue_length_counts_active(self, impl):
        release = threading.Event()

        class Slow:
            def wait(self):
                release.wait(5)

        container = ImplementationObject(Slow(), "test.Slow")
        try:
            container.enqueue("wait")
            deadline = time.time() + 5
            while container.queue_length == 0 and time.time() < deadline:
                time.sleep(0.001)
            assert container.queue_length >= 1
            release.set()
            container.drain()
            assert container.queue_length == 0
        finally:
            release.set()
            container.dispose()


class TestExecutionCallback:
    def test_callback_receives_class_and_duration(self):
        seen = []

        def on_execution(class_name, elapsed):
            seen.append((class_name, elapsed))

        container = ImplementationObject(
            Recorder(), "test.Recorder", on_execution=on_execution
        )
        try:
            container.invoke("record", (1,))
            assert seen
            assert seen[0][0] == "test.Recorder"
            assert seen[0][1] >= 0.0
        finally:
            container.dispose()

    def test_callback_errors_do_not_break_work(self):
        def broken_callback(class_name, elapsed):
            raise RuntimeError("stats backend down")

        container = ImplementationObject(
            Recorder(), "test.Recorder", on_execution=broken_callback
        )
        try:
            assert container.invoke("get_log") == []
        finally:
            container.dispose()
