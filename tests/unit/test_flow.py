"""Unit tests for the flow-control package and its integration points.

Covers the credit gate/grantor pair, shed-policy parsing, the elastic
controller's hysteresis, the bounded priority mailbox (including the
drain-vs-active accounting regression), and the retry policy's overload
veto.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.impl import ImplementationObject, _IOMailbox, _Task
from repro.errors import ChannelError, CircuitOpenError, OverloadError
from repro.flow import (
    MIN_GRANT,
    CreditGate,
    CreditGrantor,
    ElasticController,
    ElasticPolicy,
    ShedPolicy,
    estimate_p99,
)
from repro.remoting.resilience import RetryPolicy, call_with_retry
from repro.telemetry import MetricsRegistry


class TestCreditGate:
    def test_acquire_release_counts(self):
        gate = CreditGate(window=2)
        gate.acquire()
        gate.acquire()
        assert gate.in_flight == 2
        gate.release()
        assert gate.in_flight == 1

    def test_full_gate_sheds_after_stall_budget(self):
        gate = CreditGate(window=1, stall_timeout_s=0.05)
        gate.acquire()
        started = time.monotonic()
        with pytest.raises(OverloadError):
            gate.acquire()
        assert time.monotonic() - started >= 0.04

    def test_release_unblocks_stalled_sender(self):
        gate = CreditGate(window=1, stall_timeout_s=5.0)
        gate.acquire()
        acquired = threading.Event()

        def second():
            gate.acquire()
            acquired.set()

        thread = threading.Thread(target=second, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        gate.release()
        assert acquired.wait(timeout=2.0)

    def test_grant_growth_wakes_stalled_sender(self):
        gate = CreditGate(window=1, stall_timeout_s=5.0)
        gate.acquire()
        acquired = threading.Event()

        def second():
            gate.acquire()
            acquired.set()

        threading.Thread(target=second, daemon=True).start()
        time.sleep(0.05)
        gate.observe_grant(8)
        assert acquired.wait(timeout=2.0)
        assert gate.window == 8

    def test_grant_clamped_to_min(self):
        gate = CreditGate(window=4)
        gate.observe_grant(0)
        assert gate.window == MIN_GRANT

    def test_shrink_below_in_flight_blocks_new_sends(self):
        gate = CreditGate(window=4, stall_timeout_s=0.05)
        gate.acquire()
        gate.acquire()
        gate.observe_grant(1)
        with pytest.raises(OverloadError):
            gate.acquire()
        # Draining below the new window re-admits senders.
        gate.release()
        gate.release()
        gate.acquire()

    def test_metrics_emitted(self):
        metrics = MetricsRegistry()
        gate = CreditGate(window=1, stall_timeout_s=0.01, metrics=metrics)
        gate.acquire()
        with pytest.raises(OverloadError):
            gate.acquire()
        exported = metrics.export()
        assert exported["flow.credit.stalls"]["value"] == 1
        assert exported["flow.credit.sheds"]["value"] == 1
        assert exported["flow.credit.window"]["value"] == 1


class TestCreditGrantor:
    def test_idle_grantor_advertises_full_window(self):
        grantor = CreditGrantor(window=32)
        assert grantor.grant() == 32

    def test_pressure_shrinks_grant(self):
        grantor = CreditGrantor(window=32)
        grantor.add_source(lambda: 0.5)
        assert grantor.grant() == 16

    def test_saturation_floors_at_min_grant(self):
        grantor = CreditGrantor(window=32)
        grantor.add_source(lambda: 1.0)
        assert grantor.grant() == MIN_GRANT

    def test_worst_source_wins(self):
        grantor = CreditGrantor(window=100)
        grantor.add_source(lambda: 0.1)
        grantor.add_source(lambda: 0.75)
        assert grantor.grant() == 25

    def test_failing_source_reads_as_idle(self):
        grantor = CreditGrantor(window=8)
        grantor.add_source(lambda: 1 / 0)
        assert grantor.grant() == 8


class TestShedPolicy:
    def test_defaults_to_fail_fast(self):
        assert ShedPolicy.parse(None).kind == "fail_fast"
        assert ShedPolicy.parse("fail_fast").budget_s is None

    def test_deadline_with_budget(self):
        policy = ShedPolicy.parse("deadline:0.25")
        assert policy.kind == "deadline"
        assert policy.budget_s == 0.25

    @pytest.mark.parametrize(
        "spec", ["deadline", "deadline:", "deadline:nope", "deadline:-1", "lifo"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            ShedPolicy.parse(spec)


class TestElasticController:
    def test_scales_out_after_consecutive_high_samples(self):
        controller = ElasticController(
            ElasticPolicy(min_workers=1, max_workers=4, out_consecutive=2)
        )
        assert controller.observe(workers=1, queued_total=100) is None
        assert controller.observe(workers=1, queued_total=100) == "out"

    def test_respects_max_workers(self):
        controller = ElasticController(
            ElasticPolicy(min_workers=1, max_workers=2, out_consecutive=1)
        )
        assert controller.observe(workers=2, queued_total=1000) is None

    def test_scales_in_after_long_idle_run(self):
        controller = ElasticController(
            ElasticPolicy(min_workers=1, max_workers=4, in_consecutive=3)
        )
        for _ in range(2):
            assert controller.observe(workers=2, queued_total=0) is None
        assert controller.observe(workers=2, queued_total=0) == "in"

    def test_respects_min_workers(self):
        controller = ElasticController(
            ElasticPolicy(min_workers=2, max_workers=4, in_consecutive=1)
        )
        assert controller.observe(workers=2, queued_total=0) is None

    def test_cooldown_suppresses_samples_after_action(self):
        controller = ElasticController(
            ElasticPolicy(
                min_workers=1, max_workers=4, out_consecutive=1, cooldown=2
            )
        )
        assert controller.observe(workers=1, queued_total=100) == "out"
        # cooldown=2 swallows exactly the next two samples.
        assert controller.observe(workers=2, queued_total=100) is None
        assert controller.observe(workers=2, queued_total=100) is None
        assert controller.observe(workers=2, queued_total=100) == "out"

    def test_high_p99_reads_as_pressure_even_with_shallow_queues(self):
        controller = ElasticController(
            ElasticPolicy(min_workers=1, max_workers=4, out_consecutive=1)
        )
        assert controller.observe(workers=1, queued_total=0, p99_s=5.0) == "out"

    def test_high_p99_vetoes_scale_in(self):
        controller = ElasticController(
            ElasticPolicy(min_workers=1, max_workers=4, in_consecutive=1)
        )
        assert (
            controller.observe(workers=2, queued_total=0, p99_s=5.0) is None
        )


class TestEstimateP99:
    def test_no_observations(self):
        assert estimate_p99([(0.1, 0)], 0) is None

    def test_picks_bucket_holding_percentile(self):
        buckets = [(0.01, 90), (0.1, 8), (1.0, 2)]
        assert estimate_p99(buckets, 100) == 1.0

    def test_all_fast(self):
        assert estimate_p99([(0.01, 100), (0.1, 0)], 100) == 0.01

    def test_past_last_bucket_is_inf(self):
        assert estimate_p99([(0.01, 0)], 100) == float("inf")


def _task(method="record", args=()):
    return _Task(
        method=method, args=args, kwargs={}, posted_at=time.monotonic()
    )


class TestIOMailbox:
    def test_priority_drain_order(self):
        box = _IOMailbox(lane_of={"urgent": "high", "bulk": "low"})
        box.put("bulk", [_task("bulk")])
        box.put("record", [_task("record")])
        box.put("urgent", [_task("urgent")])
        order = [box.pop()[0].method for _ in range(3)]
        assert order == ["urgent", "record", "bulk"]

    def test_unknown_lane_falls_back_to_normal(self):
        box = _IOMailbox(lane_of={"odd": "express"})
        assert box.lane_for("odd") == "normal"

    def test_depth_bound_sheds_with_overload_error(self):
        box = _IOMailbox(depth=2)
        box.put("record", [_task(), _task()])
        with pytest.raises(OverloadError):
            box.put("record", [_task()])

    def test_lanes_are_bounded_independently(self):
        box = _IOMailbox(depth=1, lane_of={"urgent": "high"})
        box.put("record", [_task()])
        box.put("urgent", [_task("urgent")])  # different lane: admitted
        with pytest.raises(OverloadError):
            box.put("record", [_task()])

    def test_drain_waits_for_active_batch(self):
        # Regression: drain() must not return while a dequeued batch is
        # still executing (queued counters alone read as empty then).
        box = _IOMailbox()
        box.put("record", [_task(), _task()])
        batch = box.pop()
        drained = threading.Event()

        def drain():
            box.drain()
            drained.set()

        threading.Thread(target=drain, daemon=True).start()
        time.sleep(0.05)
        assert not drained.is_set()
        box.batch_done(len(batch))
        assert drained.wait(timeout=2.0)

    def test_drain_under_concurrent_enqueue_sees_all_work(self):
        recorder = []
        lock = threading.Lock()

        class Sink:
            def record(self, value):
                with lock:
                    recorder.append(value)

        impl = ImplementationObject(Sink(), "test.Sink")
        try:
            stop = threading.Event()

            def producer():
                index = 0
                while not stop.is_set():
                    impl.enqueue("record", (index,))
                    index += 1

            thread = threading.Thread(target=producer, daemon=True)
            thread.start()
            time.sleep(0.05)
            stop.set()
            thread.join()
            impl.drain()
            with lock:
                seen = len(recorder)
            assert seen == impl.stats()["processed"]
            assert impl.stats()["queued"] == 0
        finally:
            impl.dispose()


class TestDeadlineShed:
    def test_stale_queued_work_is_dropped_at_dequeue(self):
        gate = threading.Event()

        class Slow:
            def __init__(self):
                self.ran = []

            def block(self):
                gate.wait(timeout=5.0)

            def record(self, value):
                self.ran.append(value)

        instance = Slow()
        impl = ImplementationObject(
            instance, "test.Slow", shed_policy="deadline:0.05"
        )
        try:
            impl.enqueue("block")
            time.sleep(0.02)  # let the worker pick up the blocker
            impl.enqueue("record", (1,))
            time.sleep(0.2)  # the queued record ages past its budget
            gate.set()
            impl.drain()
            assert instance.ran == []
            assert impl.stats()["shed_deadline"] == 1
        finally:
            gate.set()
            impl.dispose()


class TestRetryOverloadVeto:
    def test_overload_is_not_retried(self):
        calls = []

        def shed():
            calls.append(1)
            raise OverloadError("shed")

        with pytest.raises(OverloadError):
            call_with_retry(
                shed, policy=RetryPolicy(attempts=5, backoff_s=0.0)
            )
        assert len(calls) == 1

    def test_circuit_open_is_not_retried(self):
        calls = []

        def quarantined():
            calls.append(1)
            raise CircuitOpenError("open")

        with pytest.raises(CircuitOpenError):
            call_with_retry(
                quarantined, policy=RetryPolicy(attempts=5, backoff_s=0.0)
            )
        assert len(calls) == 1

    def test_plain_channel_error_still_retries(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ChannelError("transient")
            return "ok"

        assert (
            call_with_retry(
                flaky, policy=RetryPolicy(attempts=5, backoff_s=0.0)
            )
            == "ok"
        )
        assert len(calls) == 3

    def test_default_veto_types(self):
        policy = RetryPolicy()
        assert OverloadError in policy.no_retry_on
        assert CircuitOpenError in policy.no_retry_on
