"""Unit tests for the adaptive scheduler: views, policies, planner,
config consolidation and the mailbox migration primitives."""

from __future__ import annotations

import time

import pytest

import repro.core.config as config_module
from repro.cluster.placement import (
    LeastLoadedPlacement,
    LegacyPolicyAdapter,
    LocalityAwarePlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    coerce_policy,
    make_placement,
)
from repro.core.config import ParcConfig
from repro.core.grain import GrainPolicy
from repro.core.impl import ImplementationObject
from repro.errors import PlacementError, ScooppError
from repro.sched import (
    ClusterView,
    NodeView,
    PlannedMove,
    RebalancePlanner,
    SchedulerConfig,
)

INF = float("inf")


# -- cluster views ------------------------------------------------------------


class TestClusterView:
    def test_from_loads_marks_inf_dead(self):
        view = ClusterView.from_loads([1.0, INF, 3.0])
        assert [n.alive for n in view.nodes] == [True, False, True]
        assert [n.index for n in view.live()] == [0, 2]

    def test_effective_load_of_dead_node_is_inf(self):
        node = NodeView(index=0, base_uri="node://0", alive=False, load=7.0)
        assert node.effective_load == INF

    def test_duck_types_as_loads_sequence(self):
        view = ClusterView.from_loads([1.0, INF, 3.0])
        assert len(view) == 3
        assert view[0] == 1.0
        assert view[1] == INF
        assert list(view) == [1.0, INF, 3.0]
        assert view[1:] == [INF, 3.0]


# -- policies on the new view API ---------------------------------------------


def make_view(*nodes: NodeView) -> ClusterView:
    return ClusterView(nodes=tuple(nodes))


class TestLocalityAwarePlacement:
    def test_no_byte_evidence_degenerates_to_least_loaded(self):
        policy = LocalityAwarePlacement()
        view = ClusterView.from_loads([3.0, 1.0, 2.0])
        assert policy.choose(view, 0) == 1

    def test_wire_penalty_pulls_heavy_classes_home(self):
        # Same-node peer is slightly more loaded, but the class ships
        # 64 KiB per call: the 3x wire factor outweighs the load gap.
        policy = LocalityAwarePlacement()
        view = make_view(
            NodeView(
                index=0,
                base_uri="n0",
                load=1.5,
                same_node=True,
                bytes_per_call=64 * 1024.0,
            ),
            NodeView(
                index=1,
                base_uri="n1",
                load=1.0,
                same_node=False,
                bytes_per_call=64 * 1024.0,
            ),
        )
        # n0: 1.5 + 1*1 = 2.5; n1: 1.0 + 1*3 = 4.0
        assert policy.choose(view, 0) == 0

    def test_same_node_wins_score_ties(self):
        policy = LocalityAwarePlacement()
        view = make_view(
            NodeView(index=0, base_uri="n0", load=1.0),
            NodeView(index=1, base_uri="n1", load=1.0, same_node=True),
        )
        assert policy.choose(view, 1) == 1

    def test_skips_dead_nodes(self):
        policy = LocalityAwarePlacement()
        view = make_view(
            NodeView(index=0, base_uri="n0", alive=False, load=0.0),
            NodeView(index=1, base_uri="n1", load=9.0),
        )
        assert policy.choose(view, 0) == 1

    def test_factory_knows_locality(self):
        assert isinstance(make_placement("locality"), LocalityAwarePlacement)

    def test_bad_factors_rejected(self):
        with pytest.raises(PlacementError):
            LocalityAwarePlacement(wire_cost_factor=0)
        with pytest.raises(PlacementError):
            LocalityAwarePlacement(bytes_scale=-1)


class TestRoundRobinSkipsDead:
    def test_cycles_live_only(self):
        policy = RoundRobinPlacement()
        view = ClusterView.from_loads([0.0, INF, 0.0])
        assert [policy.choose(view, 0) for _ in range(4)] == [0, 2, 0, 2]


# -- legacy adapter -----------------------------------------------------------


class OldStylePolicy:
    """Pre-redesign shape: choose(loads, home_index) over live loads."""

    name = "old_min"

    def __init__(self):
        self.seen = []

    def choose(self, loads, home_index):
        self.seen.append((list(loads), home_index))
        return min(range(len(loads)), key=loads.__getitem__)


class TestLegacyPolicyAdapter:
    def test_wrap_warns_and_maps_back_to_directory_index(self):
        legacy = OldStylePolicy()
        with pytest.warns(DeprecationWarning, match="legacy choose"):
            adapter = coerce_policy(legacy)
        assert isinstance(adapter, LegacyPolicyAdapter)
        assert adapter.name == "old_min"
        view = make_view(
            NodeView(index=0, base_uri="n0", alive=False),
            NodeView(index=1, base_uri="n1", load=5.0),
            NodeView(index=2, base_uri="n2", load=1.0),
        )
        # The legacy policy sees only live loads [5.0, 1.0] and its pick
        # (position 1) maps back to directory index 2.
        assert adapter.choose(view, 1) == 2
        assert legacy.seen == [([5.0, 1.0], 0)]

    def test_out_of_range_pick_rejected(self):
        class Bad:
            def choose(self, loads, home_index):
                return len(loads)  # one past the end

        with pytest.warns(DeprecationWarning):
            adapter = coerce_policy(Bad())
        with pytest.raises(PlacementError, match="outside"):
            adapter.choose(ClusterView.from_loads([0.0, 0.0]), 0)

    def test_coerce_passthrough_and_names(self):
        policy = LeastLoadedPlacement()
        assert coerce_policy(policy) is policy
        assert isinstance(coerce_policy("locality"), LocalityAwarePlacement)
        with pytest.raises(PlacementError, match="no choose"):
            coerce_policy(object())

    def test_new_style_subclass_needs_no_adapter(self):
        class Pinned(PlacementPolicy):
            name = "pinned"

            def choose(self, view, home_index):
                return self._live(view)[0].index

        assert coerce_policy(Pinned()).choose(
            ClusterView.from_loads([INF, 2.0]), 0
        ) == 1


# -- planner ------------------------------------------------------------------


def report(uri, queued, grains=(), alive=True):
    return {
        "base_uri": uri,
        "alive": alive,
        "queued": queued,
        "grains": list(grains),
    }


def grain(path, backlog, high=0):
    return {"path": path, "class_name": "C", "backlog": backlog, "high": high}


def planner(**kwargs) -> RebalancePlanner:
    defaults = dict(
        work_stealing=True,
        steal_threshold=8,
        idle_threshold=2,
        imbalance_ratio=1.5,
        migration_cooldown_s=2.0,
    )
    defaults.update(kwargs)
    return RebalancePlanner(SchedulerConfig(**defaults))


class TestRebalancePlanner:
    def test_balanced_cluster_plans_nothing(self):
        p = planner()
        reports = [report("n0", 10), report("n1", 10)]
        assert p.plan(reports, 0.0) == []

    def test_steals_largest_grain_fitting_the_gap(self):
        p = planner()
        reports = [
            report(
                "n0",
                12,
                [grain("a", 5), grain("b", 4), grain("c", 3)],
            ),
            report("n1", 0),
        ]
        moves = p.plan(reports, 0.0)
        # "a" (5) fits: 0+5 <= 12-5; afterwards 5+4 > 7-4 pins the rest.
        assert [(m.path, m.victim_uri, m.target_uri) for m in moves] == [
            ("a", "n0", "n1")
        ]
        assert moves[0].kind == "steal"  # target was idle (0 <= 2)

    def test_busy_but_below_mean_target_is_rebalance(self):
        p = planner(imbalance_ratio=1.1)
        reports = [
            report("n0", 12, [grain("a", 5), grain("b", 4)]),
            report("n1", 4),
        ]
        moves = p.plan(reports, 0.0)
        assert len(moves) == 1
        assert moves[0].path == "b"  # "a" (5): 4+5 > 12-5, too big to move
        assert moves[0].kind == "rebalance"

    def test_grain_bigger_than_gap_never_relocates_the_hot_spot(self):
        p = planner()
        reports = [
            report("n0", 12, [grain("hot", 12)]),
            report("n1", 0),
        ]
        assert p.plan(reports, 0.0) == []

    def test_high_priority_backlog_pins_the_grain(self):
        p = planner()
        reports = [
            report("n0", 12, [grain("a", 5, high=1), grain("b", 4)]),
            report("n1", 0),
        ]
        moves = p.plan(reports, 0.0)
        assert [m.path for m in moves] == ["b"]

    def test_cooldown_prevents_ping_pong(self):
        p = planner()
        reports = [
            report("n0", 12, [grain("a", 5)]),
            report("n1", 0),
        ]
        assert [m.path for m in p.plan(reports, 0.0)] == ["a"]
        # Same (stale) reports inside the cooldown window: "a" is pinned.
        assert p.plan(reports, 0.5) == []
        # After the cooldown expires it may move again.
        assert [m.path for m in p.plan(reports, 3.0)] == ["a"]

    def test_dead_nodes_are_neither_victims_nor_targets(self):
        p = planner()
        reports = [
            report("n0", 12, [grain("a", 5)], alive=False),
            report("n1", 0),
        ]
        assert p.plan(reports, 0.0) == []
        reports = [
            report("n0", 12, [grain("a", 5)]),
            report("n1", 0, alive=False),
            report("n2", 0),
        ]
        moves = p.plan(reports, 0.0)
        assert [m.target_uri for m in moves] == ["n2"]

    def test_max_migrations_per_cycle(self):
        p = planner(max_migrations_per_cycle=1, imbalance_ratio=1.0001)
        reports = [
            report("n0", 20, [grain("a", 4), grain("b", 4), grain("c", 4)]),
            report("n1", 0),
        ]
        assert len(p.plan(reports, 0.0)) == 1

    def test_single_node_cluster_is_a_no_op(self):
        assert planner().plan([report("n0", 100)], 0.0) == []


# -- config consolidation -----------------------------------------------------


class TestSchedulerConfig:
    def test_validation(self):
        with pytest.raises(ScooppError):
            SchedulerConfig(rebalance_interval_s=0)
        with pytest.raises(ScooppError):
            SchedulerConfig(steal_threshold=0)
        with pytest.raises(ScooppError):
            SchedulerConfig(imbalance_ratio=0.5)
        with pytest.raises(ScooppError):
            SchedulerConfig(max_migrations_per_cycle=0)

    def test_stealing_implies_migration(self):
        config = SchedulerConfig(work_stealing=True)
        assert config.migration is True
        assert config.rebalancing_enabled is True
        assert SchedulerConfig().rebalancing_enabled is False

    def test_parc_config_folds_flat_fields_in(self):
        grain_policy = GrainPolicy(max_calls=4)
        config = ParcConfig(
            grain=grain_policy,
            scheduler=SchedulerConfig(work_stealing=True),
        )
        effective = config.effective_scheduler()
        assert effective.grain is grain_policy
        assert effective.work_stealing is True

    def test_parc_config_flat_placement_folds_in(self):
        config = ParcConfig(
            placement="least_loaded",
            scheduler=SchedulerConfig(migration=True),
        )
        assert config.effective_scheduler().placement == "least_loaded"

    def test_conflicting_grain_rejected(self):
        with pytest.raises(ScooppError, match="grain given both"):
            ParcConfig(
                grain=GrainPolicy(),
                scheduler=SchedulerConfig(grain=GrainPolicy()),
            )

    def test_conflicting_placement_rejected(self):
        with pytest.raises(ScooppError, match="placement given both"):
            ParcConfig(
                placement="least_loaded",
                scheduler=SchedulerConfig(placement="random"),
            )

    def test_flat_scheduling_warns_once_per_process(self, monkeypatch):
        monkeypatch.setattr(
            config_module, "_warned_flat_scheduling", False
        )
        with pytest.warns(DeprecationWarning, match="scheduler="):
            ParcConfig(placement="least_loaded")
        # The second config must stay silent (once per process).
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", DeprecationWarning)
            ParcConfig(placement="least_loaded")

    def test_scheduler_only_config_does_not_warn(self):
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error", DeprecationWarning)
            ParcConfig(scheduler=SchedulerConfig(placement="least_loaded"))


# -- mailbox migration primitives ---------------------------------------------


class SlowCounter:
    def __init__(self):
        self.seen = []

    def work(self, i):
        time.sleep(0.005)
        self.seen.append(i)

    def count(self):
        return len(self.seen)


class TestMailboxMigration:
    def test_begin_abort_loses_nothing(self):
        impl = ImplementationObject(SlowCounter(), "SlowCounter")
        try:
            for i in range(20):
                impl.enqueue("work", (i,), {})
            entries = impl.begin_migration()
            extracted = sum(len(batch) for batch in entries)
            executed = len(impl.instance.seen)
            # The executing batch finished on the victim; the rest were
            # extracted — nothing is both, nothing is neither.
            assert extracted + executed == 20
            assert impl.stealable_backlog() == (0, 0)
            impl.abort_migration(entries)
            impl.drain()
            assert impl.instance.seen == list(range(20))
        finally:
            impl.dispose()

    def test_complete_migration_forwards_to_new_home(self):
        victim = ImplementationObject(SlowCounter(), "SlowCounter")
        target = ImplementationObject(SlowCounter(), "SlowCounter")
        try:
            entries = victim.begin_migration()
            assert entries == []
            victim.complete_migration(target)
            assert victim.migrated
            # Stragglers that still hold the old IO keep working: async
            # calls forward into the new mailbox, sync calls relay.
            victim.enqueue("work", (1,), {})
            assert victim.invoke("count", (), {}) == 1
            assert target.instance.seen == [1]
        finally:
            target.dispose()

    def test_stats_reports_migrated(self):
        impl = ImplementationObject(SlowCounter(), "SlowCounter")
        target = ImplementationObject(SlowCounter(), "SlowCounter")
        try:
            assert impl.stats()["migrated"] is False
            impl.begin_migration()
            impl.complete_migration(target)
            assert impl.stats()["migrated"] is True
        finally:
            target.dispose()
