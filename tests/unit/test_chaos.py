"""Unit tests: fault plans, the chaos controller, FaultyChannel, breakers."""

from __future__ import annotations

import pytest

from repro.channels import LoopbackChannel
from repro.channels.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerChannel,
    BreakerPolicy,
    CircuitBreaker,
)
from repro.chaos import (
    ChaosController,
    FaultKind,
    FaultPlan,
    FaultyChannel,
    plan_from_percentages,
)
from repro.chaos.controller import strip_scheme
from repro.errors import (
    ChannelError,
    CircuitOpenError,
    FaultInjectedError,
)
from repro.telemetry import MetricsRegistry


class TestFaultPlan:
    def test_zero_fault_plan_never_injects(self):
        plan = FaultPlan(seed=1)
        for _ in range(500):
            assert plan.draw().kind is FaultKind.NONE
        assert plan.injected == 0
        assert plan.draws == 500

    def test_same_seed_same_schedule(self):
        make = lambda: plan_from_percentages(  # noqa: E731
            seed=1337, send_drop=0.2, latency=0.1, truncate=0.1
        )
        first = [make().draw().kind for _ in [0]]  # noqa: F841 - warm check
        a = make()
        b = make()
        seq_a = [a.draw().kind for _ in range(200)]
        seq_b = [b.draw().kind for _ in range(200)]
        assert seq_a == seq_b
        assert a.injected == b.injected > 0

    def test_different_seed_different_schedule(self):
        a = plan_from_percentages(seed=1, send_drop=0.3)
        b = plan_from_percentages(seed=2, send_drop=0.3)
        assert [a.draw().kind for _ in range(100)] != [
            b.draw().kind for _ in range(100)
        ]

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(rates={FaultKind.SEND_DROP: 1.5})
        with pytest.raises(ValueError):
            FaultPlan(
                rates={FaultKind.SEND_DROP: 0.7, FaultKind.RECV_DROP: 0.7}
            )
        with pytest.raises(ValueError):
            FaultPlan(rates={"send_drop": 0.1})  # type: ignore[dict-item]

    def test_max_faults_caps_injection(self):
        plan = plan_from_percentages(seed=3, send_drop=1.0, max_faults=5)
        kinds = [plan.draw().kind for _ in range(50)]
        assert kinds.count(FaultKind.SEND_DROP) == 5
        assert all(k is FaultKind.NONE for k in kinds[5:])

    def test_latency_materialized_within_range(self):
        plan = plan_from_percentages(
            seed=4, latency=1.0, latency_s=(0.001, 0.002)
        )
        for _ in range(50):
            decision = plan.draw()
            assert decision.kind is FaultKind.LATENCY
            assert 0.001 <= decision.latency_s <= 0.002

    def test_truncate_keeps_strict_prefix(self):
        plan = plan_from_percentages(seed=5, truncate=1.0)
        for _ in range(50):
            decision = plan.draw(response_size_hint=32)
            assert decision.kind is FaultKind.TRUNCATE
            assert 0 <= decision.truncate_to < 32

    def test_describe_mentions_seed(self):
        plan = plan_from_percentages(seed=99, recv_drop=0.25)
        text = plan.describe()
        assert "99" in text and "recv_drop" in text


class TestChaosController:
    def test_kill_and_revive(self):
        controller = ChaosController()
        controller.kill("tcp://127.0.0.1:9999")
        assert controller.is_killed("127.0.0.1:9999")
        decision = controller.decide("127.0.0.1:9999")
        assert decision is not None
        assert decision.kind is FaultKind.CONNECT_REFUSED
        assert controller.decide("127.0.0.1:8888") is None
        controller.revive("127.0.0.1:9999")
        assert controller.decide("127.0.0.1:9999") is None

    def test_strip_scheme(self):
        assert strip_scheme("chaos+tcp://h:1/om") == "h:1"
        assert strip_scheme("h:1") == "h:1"

    def test_drop_window_expires(self):
        now = [0.0]
        controller = ChaosController(clock=lambda: now[0])
        controller.drop_for(0.5, rate=1.0)
        assert controller.decide("a:1").kind is FaultKind.SEND_DROP
        now[0] = 0.6
        assert controller.decide("a:1") is None

    def test_drop_window_targets_authority(self):
        controller = ChaosController(clock=lambda: 0.0)
        controller.drop_for(1.0, rate=1.0, authority="tcp://a:1")
        assert controller.decide("a:1") is not None
        assert controller.decide("b:2") is None

    def test_scripted_kill_after(self):
        import threading

        controller = ChaosController()
        fired = threading.Event()
        original_kill = controller.kill

        def kill_and_signal(authority):
            original_kill(authority)
            fired.set()

        controller.kill = kill_and_signal  # type: ignore[method-assign]
        controller.kill_after(0.01, "n:1")
        assert fired.wait(2.0)
        assert controller.is_killed("n:1")
        controller.close()

    def test_close_cancels_timers(self):
        controller = ChaosController()
        controller.kill_after(30.0, "never:1")
        controller.close()
        assert not controller.is_killed("never:1")
        with pytest.raises(RuntimeError):
            controller.at(0.1, lambda: None)


def _echo_pair(plan=None, controller=None, metrics=None):
    channel = FaultyChannel(
        LoopbackChannel(), plan=plan, controller=controller, metrics=metrics
    )
    binding = channel.listen("auto", lambda path, body, headers: body.upper())
    return channel, binding


class TestFaultyChannel:
    def test_scheme_is_prefixed(self):
        channel = FaultyChannel(LoopbackChannel())
        assert channel.scheme == "chaos+loopback"

    def test_zero_fault_passthrough(self):
        channel, binding = _echo_pair()
        assert channel.call(binding.authority, "p", b"hi") == b"HI"

    def test_pre_call_faults_never_reach_server(self):
        seen = []
        channel = FaultyChannel(
            LoopbackChannel(),
            plan=plan_from_percentages(seed=1, send_drop=1.0),
        )
        binding = channel.listen(
            "auto", lambda path, body, headers: seen.append(body) or b"ok"
        )
        with pytest.raises(FaultInjectedError):
            channel.call(binding.authority, "p", b"x")
        assert seen == []

    def test_post_call_faults_execute_server_side(self):
        seen = []
        channel = FaultyChannel(
            LoopbackChannel(),
            plan=plan_from_percentages(seed=1, recv_drop=1.0),
        )
        binding = channel.listen(
            "auto", lambda path, body, headers: seen.append(body) or b"ok"
        )
        with pytest.raises(FaultInjectedError):
            channel.call(binding.authority, "p", b"x")
        assert seen == [b"x"]  # at-most-once ambiguity, reproduced

    def test_truncate_returns_strict_prefix(self):
        channel, binding = _echo_pair(
            plan=plan_from_percentages(seed=2, truncate=1.0)
        )
        response = channel.call(binding.authority, "p", b"abcdefgh")
        assert response != b"ABCDEFGH"
        assert b"ABCDEFGH".startswith(response)

    def test_controller_overrides_plan(self):
        controller = ChaosController()
        channel, binding = _echo_pair(controller=controller)
        controller.kill(binding.authority)
        with pytest.raises(FaultInjectedError, match="refused"):
            channel.call(binding.authority, "p", b"x")
        controller.revive(binding.authority)
        assert channel.call(binding.authority, "p", b"ok") == b"OK"

    def test_injection_counted_in_metrics(self):
        metrics = MetricsRegistry()
        channel, binding = _echo_pair(
            plan=plan_from_percentages(seed=1, disconnect=1.0),
            metrics=metrics,
        )
        with pytest.raises(FaultInjectedError):
            channel.call(binding.authority, "p", b"x")
        assert metrics.snapshot()["chaos.injected.disconnect"] == 1

    def test_fault_injected_error_is_channel_error(self):
        assert issubclass(FaultInjectedError, ChannelError)


class TestCircuitBreaker:
    def _breaker(self, clock, **overrides):
        policy = BreakerPolicy(
            failure_threshold=3, reset_timeout_s=1.0, **overrides
        )
        return CircuitBreaker("n:1", policy, clock=clock)

    def test_opens_after_threshold(self):
        breaker = self._breaker(lambda: 0.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_success_resets_failure_count(self):
        breaker = self._breaker(lambda: 0.0)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_half_open_probe_recovers(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(3):
            breaker.record_failure()
        now[0] = 1.5  # past the reset timeout
        assert breaker.state == HALF_OPEN
        breaker.before_call()  # the probe slot
        with pytest.raises(CircuitOpenError):
            breaker.before_call()  # second concurrent probe rejected
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.before_call()  # flows freely again

    def test_half_open_failure_reopens(self):
        now = [0.0]
        breaker = self._breaker(lambda: now[0])
        for _ in range(3):
            breaker.record_failure()
        now[0] = 1.5
        breaker.before_call()
        breaker.record_failure()
        assert breaker.state == OPEN
        now[0] = 2.0  # timeout restarted at 1.5, not elapsed yet
        with pytest.raises(CircuitOpenError):
            breaker.before_call()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(reset_timeout_s=-1)


class TestBreakerChannel:
    def _failing_channel(self, metrics=None):
        class Exploding(LoopbackChannel):
            def call(self, authority, path, body, headers=None):
                raise ChannelError("boom")

        return BreakerChannel(
            Exploding(),
            policy=BreakerPolicy(failure_threshold=2, reset_timeout_s=60.0),
            metrics=metrics,
        )

    def test_scheme_is_transparent(self):
        channel = BreakerChannel(LoopbackChannel())
        assert channel.scheme == "loopback"

    def test_opens_per_authority_and_fails_fast(self):
        metrics = MetricsRegistry()
        channel = self._failing_channel(metrics)
        for _ in range(2):
            with pytest.raises(ChannelError, match="boom"):
                channel.call("a:1", "p", b"x")
        with pytest.raises(CircuitOpenError):
            channel.call("a:1", "p", b"x")
        # Another authority has its own breaker, still closed.
        with pytest.raises(ChannelError, match="boom"):
            channel.call("b:2", "p", b"x")
        snap = metrics.snapshot()
        assert snap["breaker.opened"] == 1
        assert snap["breaker.rejected"] == 1

    def test_happy_path_flows_through(self):
        channel = BreakerChannel(LoopbackChannel())
        binding = channel.listen(
            "auto", lambda path, body, headers: body * 2
        )
        assert channel.call(binding.authority, "p", b"ab") == b"abab"
        assert channel.state_of(binding.authority) == CLOSED
