"""Unit tests for the Java RMI analog: interfaces, rmic, runtime, registry."""

from __future__ import annotations

import pytest

from repro.errors import (
    AlreadyBoundError,
    ExportError,
    NotBoundError,
    RemoteException,
)
from repro.rmi import (
    LocateRegistry,
    Naming,
    Remote,
    RmicError,
    RmiRuntime,
    UnicastRemoteObject,
    generate_stub_source,
    remote_method,
    rmic,
    verify_remote_interface,
)
from repro.rmi.interfaces import method_signature, remote_method_names


class ICalc(Remote):
    @remote_method
    def add(self, a, b):
        """Add two numbers."""
        raise NotImplementedError

    @remote_method
    def scale(self, values, factor=2, *extra, unit="x", **options):
        """Exercise every parameter kind."""
        raise NotImplementedError


class Calc(UnicastRemoteObject, ICalc):
    def add(self, a, b):
        return a + b

    def scale(self, values, factor=2, *extra, unit="x", **options):
        return {
            "scaled": [v * factor for v in values],
            "extra": list(extra),
            "unit": unit,
            "options": options,
        }


@pytest.fixture
def runtime():
    rt = RmiRuntime()
    yield rt
    rt.close()


@pytest.fixture
def registry_endpoint():
    registry_runtime, _registry = LocateRegistry.create_registry()
    yield registry_runtime.endpoint
    registry_runtime.close()


class TestInterfaceVerification:
    def test_valid_interface(self):
        assert verify_remote_interface(ICalc) == ["add", "scale"]

    def test_non_remote_rejected(self):
        class NotRemote:
            def x(self):
                pass

        with pytest.raises(RemoteException, match="does not extend Remote"):
            verify_remote_interface(NotRemote)

    def test_undeclared_method_rejected(self):
        class Sloppy(Remote):
            def forgot(self):
                pass

        with pytest.raises(RemoteException, match="@remote_method"):
            verify_remote_interface(Sloppy)

    def test_empty_interface_rejected(self):
        class Empty(Remote):
            pass

        with pytest.raises(RemoteException, match="no remote methods"):
            verify_remote_interface(Empty)

    def test_method_names_sorted(self):
        assert remote_method_names(ICalc) == ["add", "scale"]

    def test_signature_strips_self(self):
        signature = method_signature(ICalc, "add")
        assert list(signature.parameters) == ["a", "b"]


class TestRmic:
    def test_source_mentions_interface(self):
        source = generate_stub_source(ICalc)
        assert "class ICalc_Stub(RemoteStub):" in source
        assert "def add(self, a, b):" in source
        assert "RemoteException" in source

    def test_source_handles_every_parameter_kind(self):
        source = generate_stub_source(ICalc)
        assert "def scale(self, values, factor=2, *extra, unit='x', **options):" in source

    def test_stub_class_cached(self):
        assert rmic(ICalc) is rmic(ICalc)

    def test_stub_records_interface(self):
        assert rmic(ICalc)._rmi_interface is ICalc

    def test_bad_interface_rejected(self):
        class Bad(Remote):
            def oops(self):
                pass

        with pytest.raises(RmicError):
            rmic(Bad)

    def test_unrepresentable_default_rejected(self):
        class Odd(Remote):
            @remote_method
            def weird(self, x=object()):
                pass

        with pytest.raises(RmicError, match="default"):
            generate_stub_source(Odd)

    def test_generated_source_compiles_standalone(self):
        source = generate_stub_source(ICalc)
        compile(source, "<test>", "exec")


class TestRuntimeExport:
    def test_export_assigns_objref(self, runtime):
        calc = Calc.__new__(Calc)  # avoid default-runtime export
        ref = runtime.export(calc)
        assert ref.endpoint == runtime.endpoint
        assert ref.interface_name.endswith("ICalc")
        assert calc._rmi_objref == ref

    def test_duplicate_object_id_rejected(self, runtime):
        first = Calc.__new__(Calc)
        second = Calc.__new__(Calc)
        runtime.export(first, object_id="fixed")
        with pytest.raises(ExportError):
            runtime.export(second, object_id="fixed")

    def test_unexport(self, runtime):
        calc = Calc.__new__(Calc)
        ref = runtime.export(calc)
        runtime.unexport(calc)
        assert ref.object_id not in runtime.exported_ids()

    def test_no_interface_rejected(self, runtime):
        class NoInterface:
            pass

        with pytest.raises(ExportError, match="no Remote interface"):
            runtime.export(NoInterface())

    def test_ambiguous_interfaces_rejected(self, runtime):
        class IOther(Remote):
            @remote_method
            def other(self):
                pass

        class Both(ICalc, IOther):
            def add(self, a, b):
                return 0

            def scale(self, values, factor=2, *extra, unit="x", **options):
                return None

            def other(self):
                return None

        with pytest.raises(ExportError, match="multiple Remote interfaces"):
            runtime.export(Both())

    def test_explicit_interface_resolves_ambiguity(self, runtime):
        class IOther(Remote):
            @remote_method
            def other(self):
                pass

        class Both2(ICalc, IOther):
            def add(self, a, b):
                return a + b

            def scale(self, values, factor=2, *extra, unit="x", **options):
                return None

            def other(self):
                return None

        ref = runtime.export(Both2(), interface=ICalc)
        assert ref.interface_name.endswith("ICalc")


class TestRuntimeDispatch:
    def test_full_call_through_stub(self, runtime):
        calc = Calc.__new__(Calc)
        ref = runtime.export(calc)
        stub = rmic(ICalc)(ref)
        assert stub.add(2, 3) == 5

    def test_every_parameter_kind_forwarded(self, runtime):
        calc = Calc.__new__(Calc)
        ref = runtime.export(calc)
        stub = rmic(ICalc)(ref)
        result = stub.scale([1, 2], 3, "a", "b", unit="m", depth=2)
        assert result == {
            "scaled": [3, 6],
            "extra": ["a", "b"],
            "unit": "m",
            "options": {"depth": 2},
        }

    def test_user_error_is_checked_exception(self, runtime):
        calc = Calc.__new__(Calc)
        ref = runtime.export(calc)
        stub = rmic(ICalc)(ref)
        with pytest.raises(RemoteException, match="TypeError"):
            stub.add(1, None)

    def test_unknown_object_id(self, runtime):
        from repro.rmi.runtime import RmiObjRef

        stub = rmic(ICalc)(
            RmiObjRef(runtime.endpoint, "no-such", "x.ICalc")
        )
        with pytest.raises(RemoteException, match="NoSuchObjectException"):
            stub.add(1, 2)

    def test_dead_endpoint_is_checked_exception(self):
        from repro.rmi.runtime import RmiObjRef

        stub = rmic(ICalc)(RmiObjRef("127.0.0.1:9", "obj-1", "x.ICalc"))
        with pytest.raises(RemoteException):
            stub.add(1, 2)

    def test_stub_equality(self, runtime):
        calc = Calc.__new__(Calc)
        ref = runtime.export(calc)
        assert rmic(ICalc)(ref) == rmic(ICalc)(ref)


class TestRegistryAndNaming:
    def test_bind_lookup_cycle(self, registry_endpoint):
        calc = Calc()
        try:
            uri = f"rmi://{registry_endpoint}/calc"
            Naming.bind(uri, calc)
            stub = Naming.lookup(uri, ICalc)
            assert stub.add(4, 5) == 9
            assert Naming.list_names(f"rmi://{registry_endpoint}/") == ["calc"]
            Naming.unbind(uri)
            with pytest.raises(NotBoundError):
                Naming.lookup(uri, ICalc)
        finally:
            from repro.rmi.runtime import default_runtime

            default_runtime().unexport(calc)

    def test_bind_twice_rejected_rebind_allowed(self, registry_endpoint):
        calc = Calc()
        try:
            uri = f"rmi://{registry_endpoint}/dup"
            Naming.bind(uri, calc)
            with pytest.raises(AlreadyBoundError):
                Naming.bind(uri, calc)
            Naming.rebind(uri, calc)  # fine
        finally:
            from repro.rmi.runtime import default_runtime

            default_runtime().unexport(calc)

    def test_unbind_missing(self, registry_endpoint):
        with pytest.raises(NotBoundError):
            Naming.unbind(f"rmi://{registry_endpoint}/ghost")

    @pytest.mark.parametrize(
        "bad", ["http://h:1/x", "rmi://", "rmi://host-only", "rmi://h:1/"]
    )
    def test_malformed_uris(self, bad):
        with pytest.raises(RemoteException):
            Naming.unbind(bad)

    def test_rebind_requires_export(self, registry_endpoint):
        class Unexported(ICalc):
            def add(self, a, b):
                return 0

            def scale(self, values, factor=2, *extra, unit="x", **options):
                return None

        with pytest.raises(RemoteException, match="not exported"):
            Naming.rebind(
                f"rmi://{registry_endpoint}/nope", Unexported()
            )
