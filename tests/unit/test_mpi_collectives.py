"""Unit tests for MPI collectives and reduction operators."""

from __future__ import annotations

import pytest

from repro.errors import MpiError
from repro.mpi import MAX, MIN, PROD, SUM, run_mpi

SIZES = [1, 2, 3, 4, 5, 7, 8]


class TestOps:
    def test_scalar_ops(self):
        assert SUM.combine(2, 3) == 5
        assert PROD.combine(2, 3) == 6
        assert MAX.combine(2, 3) == 3
        assert MIN.combine(2, 3) == 2

    def test_elementwise_ops(self):
        assert SUM.combine([1, 2], [3, 4]) == [4, 6]
        assert MAX.combine([1, 9], [5, 2]) == [5, 9]

    def test_length_mismatch(self):
        with pytest.raises(MpiError):
            SUM.combine([1], [1, 2])

    def test_sequence_scalar_mix_rejected(self):
        with pytest.raises(MpiError):
            SUM.combine([1], 2)

    def test_strings_treated_as_scalars(self):
        assert SUM.combine("ab", "cd") == "abcd"


@pytest.mark.parametrize("size", SIZES)
class TestBcast:
    def test_from_rank_zero(self, size):
        def main(comm):
            value = {"data": [1, 2, 3]} if comm.rank == 0 else None
            return comm.bcast(value, root=0)

        results = run_mpi(size, main)
        assert all(result == {"data": [1, 2, 3]} for result in results)

    def test_from_last_rank(self, size):
        root = size - 1

        def main(comm):
            value = "payload" if comm.rank == root else None
            return comm.bcast(value, root=root)

        assert run_mpi(size, main) == ["payload"] * size


@pytest.mark.parametrize("size", SIZES)
class TestReduce:
    def test_sum_to_root(self, size):
        def main(comm):
            return comm.reduce(comm.rank + 1, SUM, root=0)

        results = run_mpi(size, main)
        assert results[0] == size * (size + 1) // 2
        assert all(result is None for result in results[1:])

    def test_allreduce_max(self, size):
        def main(comm):
            return comm.allreduce(comm.rank, MAX)

        assert run_mpi(size, main) == [size - 1] * size

    def test_elementwise_allreduce(self, size):
        def main(comm):
            return comm.allreduce([comm.rank, -comm.rank], SUM)

        total = sum(range(size))
        assert run_mpi(size, main) == [[total, -total]] * size


@pytest.mark.parametrize("size", SIZES)
class TestGatherScatter:
    def test_gather(self, size):
        def main(comm):
            return comm.gather(f"r{comm.rank}", root=0)

        results = run_mpi(size, main)
        assert results[0] == [f"r{index}" for index in range(size)]
        assert all(result is None for result in results[1:])

    def test_scatter(self, size):
        def main(comm):
            values = None
            if comm.rank == 0:
                values = [index * 2 for index in range(comm.size)]
            return comm.scatter(values, root=0)

        assert run_mpi(size, main) == [index * 2 for index in range(size)]

    def test_scatter_wrong_length_rejected(self, size):
        def main(comm):
            if comm.rank == 0:
                try:
                    comm.scatter([1] * (comm.size + 1), root=0)
                except MpiError:
                    # Unblock peers waiting for their shard.
                    for rank in range(1, comm.size):
                        comm._send_obj(None, rank, 1 << 24 | 1)
                    return "caught"
            else:
                comm._recv_obj(0, 1 << 24 | 1)
            return None

        assert run_mpi(size, main)[0] == "caught"


class TestBarrier:
    @pytest.mark.parametrize("size", SIZES)
    def test_barrier_completes(self, size):
        def main(comm):
            for _ in range(3):
                comm.barrier()
            return True

        assert all(run_mpi(size, main))

    def test_barrier_orders_phases(self):
        log: list[str] = []
        import threading

        lock = threading.Lock()

        def main(comm):
            with lock:
                log.append(f"pre-{comm.rank}")
            comm.barrier()
            with lock:
                log.append(f"post-{comm.rank}")

        run_mpi(3, main)
        first_post = min(
            index for index, entry in enumerate(log) if entry.startswith("post")
        )
        pre_entries = [entry for entry in log[:first_post] if entry.startswith("pre")]
        assert len(pre_entries) == 3  # every pre before any post


class TestSequencesOfCollectives:
    def test_back_to_back_collectives_do_not_cross(self):
        def main(comm):
            first = comm.bcast(comm.rank if comm.rank == 0 else None, root=0)
            second = comm.bcast(comm.rank if comm.rank == 1 else None, root=1)
            total = comm.allreduce(1, SUM)
            return (first, second, total)

        results = run_mpi(4, main)
        assert all(result == (0, 1, 4) for result in results)

    def test_pipeline_of_mixed_collectives(self):
        def main(comm):
            comm.barrier()
            share = comm.scatter(
                list(range(comm.size)) if comm.rank == 0 else None, root=0
            )
            doubled = comm.allreduce(share, SUM)
            gathered = comm.gather(doubled, root=0)
            comm.barrier()
            return gathered

        results = run_mpi(4, main)
        expected_total = sum(range(4))
        assert results[0] == [expected_total] * 4
