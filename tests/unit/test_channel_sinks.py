"""Unit tests for channel sink chains (compression, tracing)."""

from __future__ import annotations

import zlib

import pytest

from repro.channels import (
    CompressionSink,
    LoopbackChannel,
    MeteredChannel,
    SinkChannel,
    TcpChannel,
    TraceSink,
)
from repro.channels.sinks import COMPRESSION_HEADER, COMPRESSION_VALUE
from repro.errors import ChannelError


def echo_handler(path, body, headers):
    return body[::-1]


class TestCompressionSink:
    def test_small_bodies_pass_through(self):
        sink = CompressionSink(threshold=100)
        headers: dict[str, str] = {}
        body = b"tiny"
        assert sink.outbound(body, headers) == body
        assert COMPRESSION_HEADER not in headers

    def test_large_compressible_bodies_shrink(self):
        sink = CompressionSink(threshold=64)
        headers: dict[str, str] = {}
        body = b"abcdefgh" * 1024
        compressed = sink.outbound(body, headers)
        assert len(compressed) < len(body) // 4
        assert headers[COMPRESSION_HEADER] == COMPRESSION_VALUE
        assert sink.inbound(compressed, headers) == body

    def test_incompressible_bodies_left_alone(self):
        import random

        rng = random.Random(1)
        body = bytes(rng.randrange(256) for _ in range(4096))
        body = zlib.compress(body)  # now truly incompressible
        sink = CompressionSink(threshold=64)
        headers: dict[str, str] = {}
        assert sink.outbound(body, headers) == body
        assert COMPRESSION_HEADER not in headers

    def test_corrupt_body_reported(self):
        sink = CompressionSink()
        with pytest.raises(ChannelError, match="corrupt"):
            sink.inbound(b"not zlib", {COMPRESSION_HEADER: COMPRESSION_VALUE})

    def test_unmarked_body_not_decompressed(self):
        sink = CompressionSink()
        assert sink.inbound(b"raw", {}) == b"raw"

    def test_validation(self):
        with pytest.raises(ChannelError):
            CompressionSink(level=10)
        with pytest.raises(ChannelError):
            CompressionSink(threshold=-1)


class TestSinkChannel:
    @pytest.mark.parametrize("channel_kind", ["loopback", "tcp"])
    def test_end_to_end_with_compression(self, channel_kind):
        if channel_kind == "loopback":
            inner = LoopbackChannel()
            authority = "auto"
        else:
            inner = TcpChannel()
            authority = "127.0.0.1:0"
        channel = SinkChannel(inner, [CompressionSink(threshold=64)])
        binding = channel.listen(authority, echo_handler)
        try:
            body = b"0123456789abcdef" * 512  # 8 KB, compressible
            result = channel.call(binding.authority, "p", body)
            assert result == body[::-1]
        finally:
            binding.close()
            channel.close()

    def test_wire_bytes_actually_smaller(self):
        meter_channel = MeteredChannel(LoopbackChannel())
        channel = SinkChannel(meter_channel, [CompressionSink(threshold=64)])
        binding = channel.listen("auto", echo_handler)
        try:
            body = b"abcd" * 4096  # 16 KB of redundancy
            channel.call(binding.authority, "p", body)
            assert meter_channel.meter.request_bytes < len(body) // 8
        finally:
            binding.close()

    def test_empty_chain_is_identity(self):
        channel = SinkChannel(LoopbackChannel(), [])
        binding = channel.listen("auto", echo_handler)
        try:
            assert channel.call(binding.authority, "p", b"xy") == b"yx"
        finally:
            binding.close()

    def test_trace_sink_records_both_directions(self):
        trace = TraceSink()
        channel = SinkChannel(LoopbackChannel(), [trace])
        binding = channel.listen("auto", echo_handler)
        try:
            channel.call(binding.authority, "p", b"12345")
            directions = [direction for direction, _b, _a in trace.events]
            assert directions.count("out") == 2  # request + response
            assert directions.count("in") == 2
            trace.reset()
            assert trace.events == []
        finally:
            binding.close()

    def test_remoting_stack_over_compressed_channel(self):
        """The whole remoting layer works through a sink chain."""
        from repro.channels.services import ChannelServices
        from repro.remoting import MarshalByRefObject, RemotingHost

        class Store(MarshalByRefObject):
            def save(self, blob):
                return len(blob)

        sink_chain = [CompressionSink(threshold=64)]
        server_services = ChannelServices()
        server = RemotingHost(name="sink-server", services=server_services)
        binding = server.listen(
            SinkChannel(TcpChannel(), sink_chain), "127.0.0.1:0"
        )
        server.publish(Store(), "store")
        client_services = ChannelServices()
        client_channel = SinkChannel(TcpChannel(), sink_chain)
        client_services.register_channel(client_channel)
        client = RemotingHost(name="sink-client", services=client_services)
        try:
            store = client.get_object(f"tcp://{binding.authority}/store")
            assert store.save(list(range(500)) * 4) == 2000
        finally:
            client.close()
            server.close()
