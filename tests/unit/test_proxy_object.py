"""Unit tests for grains and proxy-object generation (aggregation rules)."""

from __future__ import annotations

import threading

import pytest

from repro.core.impl import ImplementationObject
from repro.core.model import parallel, parallel_class_table
from repro.core.proxy_object import (
    LocalGrain,
    ProxyObject,
    RemoteGrain,
    make_parallel_class,
)
from repro.errors import GrainError, ScooppError


class Sink:
    """Plain target class for grains."""

    def __init__(self):
        self.log = []
        self.lock = threading.Lock()

    def push(self, value):
        with self.lock:
            self.log.append(("push", value))

    def mark(self, value):
        with self.lock:
            self.log.append(("mark", value))

    def snapshot(self):
        with self.lock:
            return list(self.log)


@pytest.fixture
def remote_grain():
    sink = Sink()
    impl = ImplementationObject(sink, "test.Sink")
    # Long auto-flush: these tests assert exact batch boundaries.
    grain = RemoteGrain(impl, max_calls=4, flush_after_s=30.0)
    yield grain, sink
    grain.dispose()


class TestLocalGrain:
    def test_post_executes_immediately(self):
        sink = Sink()
        grain = LocalGrain(sink, "test.Sink")
        grain.post("push", (1,), {})
        assert sink.snapshot() == [("push", 1)]
        assert grain.direct_calls == 1

    def test_call_returns_value(self):
        grain = LocalGrain(Sink(), "test.Sink")
        grain.post("push", (1,), {})
        assert grain.call("snapshot", (), {}) == [("push", 1)]

    def test_flush_drain_dispose_are_noops(self):
        grain = LocalGrain(Sink(), "test.Sink")
        grain.flush()
        grain.drain()
        grain.dispose()


class TestRemoteGrainAggregation:
    def test_calls_buffer_until_max_calls(self, remote_grain):
        grain, sink = remote_grain
        for index in range(3):
            grain.post("push", (index,), {})
        grain_batches_before = grain.batches_sent
        grain.post("push", (3,), {})  # 4th call: batch ships
        grain.drain()
        assert sink.snapshot() == [("push", index) for index in range(4)]
        assert grain.batches_sent == grain_batches_before + 1

    def test_method_switch_flushes_previous_run(self, remote_grain):
        grain, sink = remote_grain
        grain.post("push", (1,), {})
        grain.post("mark", ("a",), {})  # different method: push flushes first
        grain.drain()
        assert sink.snapshot() == [("push", 1), ("mark", "a")]

    def test_sync_call_flushes_and_orders(self, remote_grain):
        grain, sink = remote_grain
        grain.post("push", (1,), {})
        grain.post("push", (2,), {})
        snapshot = grain.call("snapshot", (), {})
        assert snapshot == [("push", 1), ("push", 2)]

    def test_explicit_flush_ships_partial_batch(self, remote_grain):
        grain, sink = remote_grain
        grain.post("push", (9,), {})
        grain.flush()
        grain.drain()
        assert sink.snapshot() == [("push", 9)]

    def test_max_calls_one_sends_each_call(self):
        sink = Sink()
        impl = ImplementationObject(sink, "test.Sink")
        grain = RemoteGrain(impl, max_calls=1)
        try:
            for index in range(5):
                grain.post("push", (index,), {})
            grain.drain()
            assert len(sink.snapshot()) == 5
            assert grain.batches_sent == 5
        finally:
            grain.dispose()

    def test_program_order_across_batches(self, remote_grain):
        grain, sink = remote_grain
        expected = []
        for index in range(25):
            if index % 7 == 0:
                grain.post("mark", (index,), {})
                expected.append(("mark", index))
            else:
                grain.post("push", (index,), {})
                expected.append(("push", index))
        grain.drain()
        assert sink.snapshot() == expected

    def test_max_calls_validation(self, remote_grain):
        grain, _sink = remote_grain
        with pytest.raises(GrainError):
            RemoteGrain(grain.impl, max_calls=0)


class TestAutoFlush:
    def test_partial_batch_flushes_after_delay(self):
        """§3.1: aggregation *delays* calls; it never parks them."""
        import time

        sink = Sink()
        impl = ImplementationObject(sink, "test.Sink")
        grain = RemoteGrain(impl, max_calls=100, flush_after_s=0.01)
        try:
            grain.post("push", (1,), {})
            deadline = time.time() + 5
            while not sink.snapshot() and time.time() < deadline:
                time.sleep(0.005)
            assert sink.snapshot() == [("push", 1)]
        finally:
            grain.dispose()

    def test_burst_still_aggregates(self):
        sink = Sink()
        impl = ImplementationObject(sink, "test.Sink")
        grain = RemoteGrain(impl, max_calls=8, flush_after_s=0.5)
        try:
            for index in range(16):  # two full batches, no timer needed
                grain.post("push", (index,), {})
            grain.drain()
            assert grain.batches_sent == 2
            assert len(sink.snapshot()) == 16
        finally:
            grain.dispose()


class TestRemoteGrainLifecycle:
    def test_released_grain_rejects_use(self):
        impl = ImplementationObject(Sink(), "test.Sink")
        grain = RemoteGrain(impl, max_calls=2)
        grain.dispose()
        with pytest.raises(GrainError, match="released"):
            grain.post("push", (1,), {})

    def test_dispose_flushes_pending(self):
        sink = Sink()
        impl = ImplementationObject(sink, "test.Sink")
        grain = RemoteGrain(impl, max_calls=100)
        grain.post("push", (1,), {})
        grain.dispose()
        assert sink.snapshot() == [("push", 1)]

    def test_dispose_idempotent(self):
        impl = ImplementationObject(Sink(), "test.Sink")
        grain = RemoteGrain(impl, max_calls=2)
        grain.dispose()
        grain.dispose()

    def test_sender_error_surfaces_on_next_use(self):
        class BrokenImpl:
            def enqueue(self, *args):
                raise ConnectionError("wire cut")

            def enqueue_batch(self, *args):
                raise ConnectionError("wire cut")

            def invoke(self, *args):
                return None

            def drain(self):
                return None

            def dispose(self):
                return None

        grain = RemoteGrain(BrokenImpl(), max_calls=1)
        grain.post("push", (1,), {})
        import time

        deadline = time.time() + 5
        while time.time() < deadline:
            try:
                grain.post("push", (2,), {})
                time.sleep(0.01)
            except ScooppError as exc:
                assert "wire cut" in str(exc)
                break
        else:
            pytest.fail("sender error never surfaced")


@parallel(
    name="test.proxy.Tally",
    async_methods=["bump"],
    sync_methods=["total"],
)
class Tally:
    def __init__(self, start=0):
        self.value = start

    def bump(self, by=1):
        self.value += by

    def total(self):
        return self.value


class TestGeneratedClass:
    def test_class_shape(self):
        po_class = make_parallel_class(Tally)
        assert po_class.__name__ == "TallyPO"
        assert issubclass(po_class, ProxyObject)
        assert po_class._parc_info is parallel_class_table.by_class(Tally)
        assert callable(po_class.bump)
        assert callable(po_class.total)

    def test_class_cached(self):
        assert make_parallel_class(Tally) is make_parallel_class(Tally)

    def test_non_parallel_class_rejected(self):
        class Plain:
            pass

        with pytest.raises(ScooppError):
            make_parallel_class(Plain)

    def test_bare_proxyobject_unusable(self):
        with pytest.raises(ScooppError, match="not generated"):
            ProxyObject()

    def test_end_to_end_with_runtime(self, plain_runtime):
        po_class = make_parallel_class(Tally)
        tally = po_class(10)
        tally.bump()
        tally.bump(by=5)
        assert tally.total() == 16
        assert not tally.parc_is_local
        tally.parc_release()

    def test_repr_mentions_grain_kind(self, plain_runtime):
        tally = make_parallel_class(Tally)(0)
        assert "remote grain" in repr(tally)
        tally.parc_release()
