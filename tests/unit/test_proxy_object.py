"""Unit tests for grains and proxy-object generation (aggregation rules)."""

from __future__ import annotations

import threading

import pytest

from repro.core.impl import ImplementationObject
from repro.core.model import parallel, parallel_class_table
from repro.core.proxy_object import (
    LocalGrain,
    ProxyObject,
    RemoteGrain,
    make_parallel_class,
)
from repro.errors import GrainError, ScooppError


class Sink:
    """Plain target class for grains."""

    def __init__(self):
        self.log = []
        self.lock = threading.Lock()

    def push(self, value):
        with self.lock:
            self.log.append(("push", value))

    def mark(self, value):
        with self.lock:
            self.log.append(("mark", value))

    def snapshot(self):
        with self.lock:
            return list(self.log)


@pytest.fixture
def remote_grain():
    sink = Sink()
    impl = ImplementationObject(sink, "test.Sink")
    # Long auto-flush: these tests assert exact batch boundaries.
    grain = RemoteGrain(impl, max_calls=4, flush_after_s=30.0)
    yield grain, sink
    grain.dispose()


class TestLocalGrain:
    def test_post_executes_immediately(self):
        sink = Sink()
        grain = LocalGrain(sink, "test.Sink")
        grain.post("push", (1,), {})
        assert sink.snapshot() == [("push", 1)]
        assert grain.direct_calls == 1

    def test_call_returns_value(self):
        grain = LocalGrain(Sink(), "test.Sink")
        grain.post("push", (1,), {})
        assert grain.call("snapshot", (), {}) == [("push", 1)]

    def test_flush_drain_dispose_are_noops(self):
        grain = LocalGrain(Sink(), "test.Sink")
        grain.flush()
        grain.drain()
        grain.dispose()


class TestRemoteGrainAggregation:
    def test_calls_buffer_until_max_calls(self, remote_grain):
        grain, sink = remote_grain
        for index in range(3):
            grain.post("push", (index,), {})
        grain_batches_before = grain.batches_sent
        grain.post("push", (3,), {})  # 4th call: batch ships
        grain.drain()
        assert sink.snapshot() == [("push", index) for index in range(4)]
        assert grain.batches_sent == grain_batches_before + 1

    def test_method_switch_flushes_previous_run(self, remote_grain):
        grain, sink = remote_grain
        grain.post("push", (1,), {})
        grain.post("mark", ("a",), {})  # different method: push flushes first
        grain.drain()
        assert sink.snapshot() == [("push", 1), ("mark", "a")]

    def test_sync_call_flushes_and_orders(self, remote_grain):
        grain, sink = remote_grain
        grain.post("push", (1,), {})
        grain.post("push", (2,), {})
        snapshot = grain.call("snapshot", (), {})
        assert snapshot == [("push", 1), ("push", 2)]

    def test_explicit_flush_ships_partial_batch(self, remote_grain):
        grain, sink = remote_grain
        grain.post("push", (9,), {})
        grain.flush()
        grain.drain()
        assert sink.snapshot() == [("push", 9)]

    def test_max_calls_one_sends_each_call(self):
        sink = Sink()
        impl = ImplementationObject(sink, "test.Sink")
        grain = RemoteGrain(impl, max_calls=1)
        try:
            for index in range(5):
                grain.post("push", (index,), {})
            grain.drain()
            assert len(sink.snapshot()) == 5
            assert grain.batches_sent == 5
        finally:
            grain.dispose()

    def test_program_order_across_batches(self, remote_grain):
        grain, sink = remote_grain
        expected = []
        for index in range(25):
            if index % 7 == 0:
                grain.post("mark", (index,), {})
                expected.append(("mark", index))
            else:
                grain.post("push", (index,), {})
                expected.append(("push", index))
        grain.drain()
        assert sink.snapshot() == expected

    def test_max_calls_validation(self, remote_grain):
        grain, _sink = remote_grain
        with pytest.raises(GrainError):
            RemoteGrain(grain.impl, max_calls=0)


class TestAutoFlush:
    def test_partial_batch_flushes_after_delay(self):
        """§3.1: aggregation *delays* calls; it never parks them."""
        import time

        sink = Sink()
        impl = ImplementationObject(sink, "test.Sink")
        grain = RemoteGrain(impl, max_calls=100, flush_after_s=0.01)
        try:
            grain.post("push", (1,), {})
            deadline = time.time() + 5
            while not sink.snapshot() and time.time() < deadline:
                time.sleep(0.005)
            assert sink.snapshot() == [("push", 1)]
        finally:
            grain.dispose()

    def test_burst_still_aggregates(self):
        sink = Sink()
        impl = ImplementationObject(sink, "test.Sink")
        grain = RemoteGrain(impl, max_calls=8, flush_after_s=0.5)
        try:
            for index in range(16):  # two full batches, no timer needed
                grain.post("push", (index,), {})
            grain.drain()
            assert grain.batches_sent == 2
            assert len(sink.snapshot()) == 16
        finally:
            grain.dispose()


class TestMessageCounters:
    def test_split_tracks_kind_and_total_stays_back_compat(self, remote_grain):
        grain, sink = remote_grain
        for index in range(4):  # one full batch
            grain.post("push", (index,), {})
        grain.post("mark", ("a",), {})  # method switch -> single
        grain.flush()
        grain.drain()
        assert grain.batches == 1
        assert grain.singles == 1
        # Historical meaning preserved: total messages, either kind.
        assert grain.batches_sent == grain.batches + grain.singles == 2

    def test_singles_only_when_unaggregated(self):
        sink = Sink()
        impl = ImplementationObject(sink, "test.Sink")
        grain = RemoteGrain(impl, max_calls=1)
        try:
            for index in range(5):
                grain.post("push", (index,), {})
            grain.drain()
            assert grain.singles == 5
            assert grain.batches == 0
            assert grain.batches_sent == 5
        finally:
            grain.dispose()


class TestAutoFlushRegression:
    def test_partial_buffer_flushes_within_deadline_without_posts(self):
        """A partial batch must ship within ~flush_after_s on its own.

        Regression guard for the sender-loop timer: exactly one post,
        then silence — the auto-flush must fire with no further posts
        nudging the condition variable.
        """
        import time

        sink = Sink()
        impl = ImplementationObject(sink, "test.Sink")
        flush_after_s = 0.02
        grain = RemoteGrain(impl, max_calls=100, flush_after_s=flush_after_s)
        try:
            started = time.monotonic()
            grain.post("push", ("only",), {})
            deadline = started + 5.0
            while not sink.snapshot() and time.monotonic() < deadline:
                time.sleep(0.002)
            elapsed = time.monotonic() - started
            assert sink.snapshot() == [("push", "only")]
            # Generous bound (scheduler jitter), but far below the 5 s
            # failure deadline: the timer, not a later flush, fired.
            assert elapsed < 2.0
            assert grain.singles == 1 and grain.batches == 0
        finally:
            grain.dispose()


class ColumnTarget:
    """Target with an annotated async method for column planning."""

    def __init__(self):
        self.rows = []
        self.lock = threading.Lock()

    def step(self, x: float, n: int):
        with self.lock:
            self.rows.append((x, n))

    def snapshot(self):
        with self.lock:
            return list(self.rows)


class _RecordingImpl:
    """Wraps an ImplementationObject, recording which enqueue ran."""

    def __init__(self, inner):
        self._inner = inner
        self.calls = []

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def enqueue_batch(self, method, batch):
        self.calls.append(("batch", method, len(batch)))
        self._inner.enqueue_batch(method, batch)

    def enqueue_columns(self, method, count, columns=()):
        self.calls.append(("columns", method, count))
        self._inner.enqueue_columns(method, count, columns)


class TestColumnarAggregates:
    def _grain(self, impl):
        grain = RemoteGrain(impl, max_calls=4, flush_after_s=30.0)
        grain.columnar = True
        grain.impl_class = ColumnTarget
        return grain

    def test_homogeneous_batch_ships_columnar(self):
        target = ColumnTarget()
        impl = _RecordingImpl(ImplementationObject(target, "test.Col"))
        grain = self._grain(impl)
        try:
            for index in range(4):
                grain.post("step", (index * 1.5, index), {})
            grain.drain()
            assert ("columns", "step", 4) in impl.calls
            assert target.snapshot() == [
                (index * 1.5, index) for index in range(4)
            ]
        finally:
            grain.dispose()

    def test_kwargs_fall_back_to_row_batch(self):
        target = ColumnTarget()
        impl = _RecordingImpl(ImplementationObject(target, "test.Col"))
        grain = self._grain(impl)
        try:
            for index in range(4):
                grain.post("step", (float(index),), {"n": index})
            grain.drain()
            kinds = [kind for kind, *_rest in impl.calls]
            assert "columns" not in kinds
            assert target.snapshot() == [
                (float(index), index) for index in range(4)
            ]
        finally:
            grain.dispose()

    def test_remote_refusal_disables_columnar_and_resends_rows(self):
        from repro.errors import RemoteInvocationError

        class _RefusingImpl(_RecordingImpl):
            def enqueue_columns(self, method, count, columns=()):
                self.calls.append(("columns-refused", method, count))
                raise RemoteInvocationError("no such method enqueue_columns")

        target = ColumnTarget()
        impl = _RefusingImpl(ImplementationObject(target, "test.Col"))
        grain = self._grain(impl)
        try:
            for index in range(4):
                grain.post("step", (float(index), index), {})
            grain.drain()
            assert not grain.columnar  # switched off after the refusal
            assert ("batch", "step", 4) in impl.calls
            assert target.snapshot() == [
                (float(index), index) for index in range(4)
            ]
        finally:
            grain.dispose()

    def test_wire_observer_fed_per_send(self):
        observed = []
        target = ColumnTarget()
        impl = ImplementationObject(target, "test.Col")
        grain = RemoteGrain(impl, max_calls=4, flush_after_s=30.0)
        grain.wire_observer = lambda nbytes, calls: observed.append(
            (nbytes, calls)
        )
        try:
            for index in range(4):
                grain.post("step", (float(index), index), {})
            grain.drain()
            # One aggregate of 4 calls; a local impl has no wire, so the
            # byte figure is the 0 default — the call count still lands.
            assert observed == [(0, 4)]
        finally:
            grain.dispose()


class TestRemoteGrainLifecycle:
    def test_released_grain_rejects_use(self):
        impl = ImplementationObject(Sink(), "test.Sink")
        grain = RemoteGrain(impl, max_calls=2)
        grain.dispose()
        with pytest.raises(GrainError, match="released"):
            grain.post("push", (1,), {})

    def test_dispose_flushes_pending(self):
        sink = Sink()
        impl = ImplementationObject(sink, "test.Sink")
        grain = RemoteGrain(impl, max_calls=100)
        grain.post("push", (1,), {})
        grain.dispose()
        assert sink.snapshot() == [("push", 1)]

    def test_dispose_idempotent(self):
        impl = ImplementationObject(Sink(), "test.Sink")
        grain = RemoteGrain(impl, max_calls=2)
        grain.dispose()
        grain.dispose()

    def test_sender_error_surfaces_on_next_use(self):
        class BrokenImpl:
            def enqueue(self, *args):
                raise ConnectionError("wire cut")

            def enqueue_batch(self, *args):
                raise ConnectionError("wire cut")

            def invoke(self, *args):
                return None

            def drain(self):
                return None

            def dispose(self):
                return None

        grain = RemoteGrain(BrokenImpl(), max_calls=1)
        grain.post("push", (1,), {})
        import time

        deadline = time.time() + 5
        while time.time() < deadline:
            try:
                grain.post("push", (2,), {})
                time.sleep(0.01)
            except ScooppError as exc:
                assert "wire cut" in str(exc)
                break
        else:
            pytest.fail("sender error never surfaced")


@parallel(
    name="test.proxy.Tally",
    async_methods=["bump"],
    sync_methods=["total"],
)
class Tally:
    def __init__(self, start=0):
        self.value = start

    def bump(self, by=1):
        self.value += by

    def total(self):
        return self.value


class TestGeneratedClass:
    def test_class_shape(self):
        po_class = make_parallel_class(Tally)
        assert po_class.__name__ == "TallyPO"
        assert issubclass(po_class, ProxyObject)
        assert po_class._parc_info is parallel_class_table.by_class(Tally)
        assert callable(po_class.bump)
        assert callable(po_class.total)

    def test_class_cached(self):
        assert make_parallel_class(Tally) is make_parallel_class(Tally)

    def test_non_parallel_class_rejected(self):
        class Plain:
            pass

        with pytest.raises(ScooppError):
            make_parallel_class(Plain)

    def test_bare_proxyobject_unusable(self):
        with pytest.raises(ScooppError, match="not generated"):
            ProxyObject()

    def test_end_to_end_with_runtime(self, plain_runtime):
        po_class = make_parallel_class(Tally)
        tally = po_class(10)
        tally.bump()
        tally.bump(by=5)
        assert tally.total() == 16
        assert not tally.parc_is_local
        tally.parc_release()

    def test_repr_mentions_grain_kind(self, plain_runtime):
        tally = make_parallel_class(Tally)(0)
        assert "remote grain" in repr(tally)
        tally.parc_release()
