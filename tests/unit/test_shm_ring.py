"""Unit tests for the shm segment layout and SPSC ring halves."""

from __future__ import annotations

import threading

import pytest

from repro.shm.ring import (
    DATA_OFFSET,
    RingReader,
    RingWriter,
    client_rings,
    init_segment,
    is_closed,
    mark_closed,
    read_segment_header,
    segment_size,
    server_rings,
)

RING = 64  # tiny ring so wrap-around is cheap to hit


def make_segment(ring_size: int = RING) -> memoryview:
    buf = memoryview(bytearray(segment_size(ring_size)))
    init_segment(buf, ring_size)
    return buf


class TestSegmentHeader:
    def test_init_and_read_roundtrip(self):
        buf = make_segment(4096)
        assert read_segment_header(buf) == 4096

    def test_bad_magic_rejected(self):
        buf = make_segment()
        buf[0:4] = b"NOPE"
        with pytest.raises(ValueError, match="magic"):
            read_segment_header(buf)

    def test_bad_version_rejected(self):
        buf = make_segment()
        buf[4] = 99
        with pytest.raises(ValueError, match="version"):
            read_segment_header(buf)

    def test_segment_size_covers_both_rings(self):
        assert segment_size(RING) == DATA_OFFSET + 2 * RING

    def test_closed_flag(self):
        buf = make_segment()
        assert not is_closed(buf)
        mark_closed(buf)
        assert is_closed(buf)


class TestRingRoundTrip:
    def test_simple_write_read(self):
        buf = make_segment()
        tx, _ = client_rings(buf, RING)
        _, rx = server_rings(buf, RING)
        assert tx.write_some(b"hello") == 5
        out = bytearray(5)
        assert rx.read_into(out) == 5
        assert out == b"hello"

    def test_directions_are_independent(self):
        buf = make_segment()
        c_tx, c_rx = client_rings(buf, RING)
        s_tx, s_rx = server_rings(buf, RING)
        c_tx.write_some(b"ping")
        s_tx.write_some(b"pong")
        out = bytearray(4)
        s_rx.read_into(out)
        assert out == b"ping"
        c_rx.read_into(out)
        assert out == b"pong"

    def test_write_bounded_by_space(self):
        buf = make_segment()
        tx, _ = client_rings(buf, RING)
        assert tx.write_some(bytes(RING + 10)) == RING
        assert tx.space() == 0
        assert tx.write_some(b"x") == 0

    def test_space_reclaimed_after_read(self):
        buf = make_segment()
        tx, _ = client_rings(buf, RING)
        _, rx = server_rings(buf, RING)
        tx.write_some(bytes(RING))
        out = bytearray(10)
        rx.read_into(out)
        assert tx.space() == 10

    def test_wrap_around_preserves_byte_stream(self):
        buf = make_segment()
        tx, _ = client_rings(buf, RING)
        _, rx = server_rings(buf, RING)
        # Advance the indices to just before the physical boundary, then
        # push a chunk that must split across the wrap.
        tx.write_some(bytes(RING - 5))
        out = bytearray(RING - 5)
        rx.read_into(out)
        payload = bytes(range(20))
        assert tx.write_some(payload) == 20
        got = bytearray(20)
        assert rx.read_into(got) == 20
        assert got == payload

    def test_partial_read(self):
        buf = make_segment()
        tx, _ = client_rings(buf, RING)
        _, rx = server_rings(buf, RING)
        tx.write_some(b"abcdef")
        out = bytearray(4)
        assert rx.read_into(out) == 4
        assert out == b"abcd"
        assert rx.used() == 2


class TestZeroCopyView:
    def test_view_then_consume(self):
        buf = make_segment()
        tx, _ = client_rings(buf, RING)
        _, rx = server_rings(buf, RING)
        tx.write_some(b"payload!")
        assert rx.can_view(8)
        view = rx.view(8)
        assert bytes(view) == b"payload!"
        view.release()
        rx.consume(8)
        assert rx.used() == 0

    def test_can_view_false_across_boundary(self):
        buf = make_segment()
        tx, _ = client_rings(buf, RING)
        _, rx = server_rings(buf, RING)
        tx.write_some(bytes(RING - 5))
        out = bytearray(RING - 5)
        rx.read_into(out)
        # Head now sits 5 bytes before the boundary: a 20-byte span
        # cannot be contiguous, a 5-byte one can.
        assert not rx.can_view(20)
        assert rx.can_view(5)

    def test_view_does_not_consume(self):
        buf = make_segment()
        tx, _ = client_rings(buf, RING)
        _, rx = server_rings(buf, RING)
        tx.write_some(b"abcd")
        view = rx.view(4)
        view.release()
        assert rx.used() == 4


class TestWaitingFlags:
    def test_reader_flag_visible_to_writer(self):
        buf = make_segment()
        tx, _ = client_rings(buf, RING)
        _, rx = server_rings(buf, RING)
        assert not tx.reader_waiting()
        rx.set_waiting(True)
        assert tx.reader_waiting()
        rx.set_waiting(False)
        assert not tx.reader_waiting()

    def test_writer_flag_visible_to_reader(self):
        buf = make_segment()
        tx, _ = client_rings(buf, RING)
        _, rx = server_rings(buf, RING)
        tx.set_waiting(True)
        assert rx.writer_waiting()
        tx.set_waiting(False)
        assert not rx.writer_waiting()


class TestConcurrentStream:
    def test_threaded_producer_consumer(self):
        """A full SPSC stream across threads survives many wraps."""
        buf = make_segment()
        tx, _ = client_rings(buf, RING)
        _, rx = server_rings(buf, RING)
        total = 50_000
        payload = bytes(range(256)) * (total // 256 + 1)
        payload = payload[:total]

        def produce():
            sent = 0
            src = memoryview(payload)
            while sent < total:
                sent += tx.write_some(src[sent:])

        received = bytearray()
        worker = threading.Thread(target=produce)
        worker.start()
        chunk = bytearray(37)  # odd size: forces misaligned wraps
        while len(received) < total:
            count = rx.read_into(chunk)
            received += chunk[:count]
        worker.join()
        assert received == payload
