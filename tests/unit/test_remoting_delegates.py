"""Unit tests for asynchronous delegates (BeginInvoke/EndInvoke)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import RemotingError
from repro.remoting import AsyncResult, Delegate, OneWayDelegate


class TestDelegateBasics:
    def test_sync_invoke(self):
        delegate = Delegate(lambda a, b: a + b)
        assert delegate.invoke(2, 3) == 5
        assert delegate(2, 3) == 5

    def test_non_callable_rejected(self):
        with pytest.raises(RemotingError):
            Delegate("not callable")

    def test_begin_end_invoke(self):
        delegate = Delegate(lambda x: x * 2)
        result = delegate.begin_invoke(21)
        assert delegate.end_invoke(result) == 42

    def test_end_invoke_reraises(self):
        def bomb():
            raise ValueError("kaboom")

        delegate = Delegate(bomb)
        result = delegate.begin_invoke()
        with pytest.raises(ValueError, match="kaboom"):
            delegate.end_invoke(result)

    def test_kwargs_forwarded(self):
        delegate = Delegate(lambda a, b=0: (a, b))
        result = delegate.begin_invoke(1, b=2)
        assert delegate.end_invoke(result) == (1, 2)

    def test_begin_invoke_returns_before_completion(self):
        release = threading.Event()

        def slow():
            release.wait(5)
            return "done"

        delegate = Delegate(slow)
        started = time.perf_counter()
        result = delegate.begin_invoke()
        assert time.perf_counter() - started < 1.0
        assert not result.is_completed
        release.set()
        assert delegate.end_invoke(result) == "done"


class TestAsyncResult:
    def test_is_completed_and_wait(self):
        delegate = Delegate(lambda: 1)
        result = delegate.begin_invoke()
        assert result.wait(timeout=5)
        assert result.is_completed

    def test_wait_handle_event(self):
        delegate = Delegate(lambda: 1)
        result = delegate.begin_invoke()
        assert result.async_wait_handle.wait(timeout=5)

    def test_async_state_carried(self):
        delegate = Delegate(lambda: 1)
        result = delegate.begin_invoke(state={"tag": 7})
        assert result.async_state == {"tag": 7}

    def test_result_timeout(self):
        release = threading.Event()
        delegate = Delegate(lambda: release.wait(5))
        result = delegate.begin_invoke()
        with pytest.raises(Exception):
            result.result(timeout=0.01)
        release.set()

    def test_callback_invoked_with_result(self):
        seen = []
        done = threading.Event()

        def callback(async_result: AsyncResult) -> None:
            seen.append(async_result.result())
            done.set()

        delegate = Delegate(lambda: "value")
        delegate.begin_invoke(callback=callback)
        assert done.wait(5)
        assert seen == ["value"]


class TestConcurrency:
    def test_many_parallel_invocations(self):
        delegate = Delegate(lambda index: index * index)
        results = [delegate.begin_invoke(index) for index in range(50)]
        values = [delegate.end_invoke(result) for result in results]
        assert values == [index * index for index in range(50)]

    def test_custom_pool(self):
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=1) as pool:
            delegate = Delegate(lambda: threading.current_thread().name, pool=pool)
            first = delegate.end_invoke(delegate.begin_invoke())
            second = delegate.end_invoke(delegate.begin_invoke())
            assert first == second  # single worker thread


class TestOneWayDelegate:
    def test_executes_but_hides_result(self):
        done = threading.Event()

        def work():
            done.set()
            return "never seen"

        delegate = OneWayDelegate(work)
        result = delegate.begin_invoke()
        assert done.wait(5)
        with pytest.raises(RemotingError):
            delegate.end_invoke(result)
