"""Unit tests for the MPI analog: p2p, matching rules, requests, launcher."""

from __future__ import annotations

import array
import time

import pytest

from repro.errors import MpiError, RankError
from repro.mpi import ANY_SOURCE, ANY_TAG, World, run_mpi
from repro.mpi.p2p import Envelope, Mailbox, as_payload


class TestMailboxMatching:
    def test_fifo_per_source_and_tag(self):
        mailbox = Mailbox()
        for index in range(3):
            mailbox.deposit(Envelope(source=0, tag=5, payload=bytes([index])))
        received = [
            mailbox.collect(0, 5, timeout=1).payload[0] for _ in range(3)
        ]
        assert received == [0, 1, 2]

    def test_tag_selectivity(self):
        mailbox = Mailbox()
        mailbox.deposit(Envelope(source=0, tag=1, payload=b"one"))
        mailbox.deposit(Envelope(source=0, tag=2, payload=b"two"))
        assert mailbox.collect(0, 2, timeout=1).payload == b"two"
        assert mailbox.collect(0, 1, timeout=1).payload == b"one"

    def test_any_source_any_tag(self):
        mailbox = Mailbox()
        mailbox.deposit(Envelope(source=3, tag=9, payload=b"x"))
        envelope = mailbox.collect(ANY_SOURCE, ANY_TAG, timeout=1)
        assert (envelope.source, envelope.tag) == (3, 9)

    def test_source_selectivity(self):
        mailbox = Mailbox()
        mailbox.deposit(Envelope(source=1, tag=0, payload=b"from1"))
        mailbox.deposit(Envelope(source=2, tag=0, payload=b"from2"))
        assert mailbox.collect(2, ANY_TAG, timeout=1).payload == b"from2"

    def test_timeout(self):
        mailbox = Mailbox()
        started = time.perf_counter()
        with pytest.raises(MpiError, match="timed out"):
            mailbox.collect(0, 0, timeout=0.05)
        assert time.perf_counter() - started < 2.0

    def test_try_collect_nonblocking(self):
        mailbox = Mailbox()
        assert mailbox.try_collect(0, 0) is None
        mailbox.deposit(Envelope(source=0, tag=0, payload=b"now"))
        assert mailbox.try_collect(0, 0).payload == b"now"

    def test_closed_mailbox(self):
        mailbox = Mailbox()
        mailbox.close()
        with pytest.raises(MpiError):
            mailbox.deposit(Envelope(source=0, tag=0, payload=b""))
        with pytest.raises(MpiError):
            mailbox.collect(0, 0, timeout=None)


class TestPayloadNormalization:
    def test_bytes_pass_through(self):
        assert as_payload(b"raw") == b"raw"

    def test_buffer_protocol_types(self):
        assert as_payload(bytearray(b"ba")) == b"ba"
        assert as_payload(memoryview(b"mv")) == b"mv"
        assert as_payload(array.array("i", [1])) == array.array("i", [1]).tobytes()

    def test_numpy_arrays(self):
        import numpy as np

        data = np.arange(4, dtype=np.int32)
        assert as_payload(data) == data.tobytes()

    @pytest.mark.parametrize("bad", [{"a": 1}, [1, 2], "text", 42, None])
    def test_rich_objects_rejected(self, bad):
        with pytest.raises(MpiError, match="PackBuffer"):
            as_payload(bad)


class TestWorld:
    def test_size_validation(self):
        with pytest.raises(MpiError):
            World(0)

    def test_rank_validation(self):
        world = World(2)
        with pytest.raises(RankError):
            world.comm(2)
        with pytest.raises(RankError):
            world.comm(-1)

    def test_user_tag_range_enforced(self):
        world = World(2)
        comm = world.comm(0)
        with pytest.raises(MpiError, match="user tags"):
            comm.send(b"", dest=1, tag=1 << 30)
        with pytest.raises(MpiError):
            comm.send(b"", dest=1, tag=-1)


class TestPointToPoint:
    def test_send_recv_status(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(b"hello", dest=1, tag=4)
                return None
            payload, status = comm.recv(source=0, tag=4)
            assert status.source == 0
            assert status.tag == 4
            assert status.count == 5
            return payload

        assert run_mpi(2, main)[1] == b"hello"

    def test_non_overtaking_between_pair(self):
        def main(comm):
            if comm.rank == 0:
                for index in range(20):
                    comm.send(bytes([index]), dest=1, tag=7)
                return None
            return [comm.recv(source=0, tag=7)[0][0] for _ in range(20)]

        assert run_mpi(2, main)[1] == list(range(20))

    def test_isend_irecv(self):
        def main(comm):
            if comm.rank == 0:
                requests = [
                    comm.isend(bytes([index]), dest=1, tag=index)
                    for index in range(5)
                ]
                for request in requests:
                    assert request.test()
                    request.wait()
                return None
            requests = [comm.irecv(source=0, tag=index) for index in range(5)]
            return [request.wait(timeout=5)[0][0] for request in requests]

        assert run_mpi(2, main)[1] == list(range(5))

    def test_irecv_test_polling(self):
        def main(comm):
            if comm.rank == 0:
                time.sleep(0.05)
                comm.send(b"late", dest=1, tag=0)
                return None
            request = comm.irecv(source=0, tag=0)
            polled = request.test()  # may be False: message not sent yet
            payload, _status = request.wait(timeout=5)
            assert request.test()  # now definitely true
            return (polled, payload)

        _polled, payload = run_mpi(2, main)[1]
        assert payload == b"late"

    def test_iprobe(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(b"x", dest=1, tag=3)
                return None
            deadline = time.time() + 5
            while not comm.iprobe(source=0, tag=3):
                assert time.time() < deadline
                time.sleep(0.001)
            assert not comm.iprobe(source=0, tag=99)
            comm.recv(source=0, tag=3)
            return True

        assert run_mpi(2, main)[1] is True


class TestLauncher:
    def test_results_ordered_by_rank(self):
        results = run_mpi(4, lambda comm: comm.rank * 10)
        assert results == [0, 10, 20, 30]

    def test_failure_propagates_lowest_rank(self):
        def main(comm):
            if comm.rank in (1, 2):
                raise ValueError(f"rank {comm.rank} bad")
            # Other ranks block; finalize must wake them.
            try:
                comm.recv(source=ANY_SOURCE, tag=0)
            except MpiError:
                pass

        with pytest.raises(MpiError, match="rank 1 failed"):
            run_mpi(3, main)

    def test_single_rank_world(self):
        assert run_mpi(1, lambda comm: comm.size) == [1]

    def test_extra_args_forwarded(self):
        def main(comm, base, step=1):
            return base + comm.rank * step

        assert run_mpi(2, main, 100, step=5) == [100, 105]
