"""Unit tests for explicit pack/unpack buffers (MPI_Pack analog)."""

from __future__ import annotations

import pytest

from repro.errors import PackError
from repro.mpi import CHAR, DOUBLE, INT, LONG, PackBuffer, UnpackBuffer


class TestPackRoundtrips:
    def test_scalar_int(self):
        buffer = PackBuffer().pack(42, INT)
        assert UnpackBuffer(buffer.getvalue()).unpack(INT) == 42

    def test_int_list(self):
        buffer = PackBuffer().pack([1, -2, 3], INT)
        assert UnpackBuffer(buffer.getvalue()).unpack(INT, 3) == [1, -2, 3]

    def test_long_range(self):
        value = 2**40
        buffer = PackBuffer().pack(value, LONG)
        assert UnpackBuffer(buffer.getvalue()).unpack(LONG) == value

    def test_double(self):
        buffer = PackBuffer().pack([1.5, -2.25], DOUBLE)
        assert UnpackBuffer(buffer.getvalue()).unpack(DOUBLE, 2) == [1.5, -2.25]

    def test_text_as_char(self):
        buffer = PackBuffer().pack("héllo", CHAR)
        assert UnpackBuffer(buffer.getvalue()).unpack(CHAR) == "héllo".encode()

    def test_bytes_as_char(self):
        buffer = PackBuffer().pack(b"\x00\xff", CHAR)
        assert UnpackBuffer(buffer.getvalue()).unpack(CHAR) == b"\x00\xff"

    def test_mixed_sequence_in_order(self):
        buffer = (
            PackBuffer()
            .pack([7, 8], INT)
            .pack(3.5, DOUBLE)
            .pack("tag", CHAR)
        )
        unpacker = UnpackBuffer(buffer.getvalue())
        assert unpacker.unpack(INT, 2) == [7, 8]
        assert unpacker.unpack(DOUBLE) == 3.5
        assert unpacker.unpack(CHAR) == b"tag"
        assert unpacker.remaining == 0

    def test_len_counts_bytes(self):
        buffer = PackBuffer().pack([1, 2], INT)
        assert len(buffer) == len(buffer.getvalue())


class TestPackErrors:
    def test_int_overflow(self):
        with pytest.raises(PackError):
            PackBuffer().pack(2**40, INT)

    def test_wrong_type_in_sequence(self):
        with pytest.raises(PackError):
            PackBuffer().pack([1, "x"], INT)

    def test_text_needs_char(self):
        with pytest.raises(PackError, match="CHAR"):
            PackBuffer().pack("text", INT)


class TestUnpackErrors:
    def test_type_mismatch(self):
        data = PackBuffer().pack(1, INT).getvalue()
        with pytest.raises(PackError, match="type mismatch"):
            UnpackBuffer(data).unpack(DOUBLE)

    def test_count_mismatch(self):
        data = PackBuffer().pack([1, 2, 3], INT).getvalue()
        with pytest.raises(PackError, match="count mismatch"):
            UnpackBuffer(data).unpack(INT, 2)

    def test_unpack_past_end(self):
        data = PackBuffer().pack(1, INT).getvalue()
        unpacker = UnpackBuffer(data)
        unpacker.unpack(INT)
        with pytest.raises(PackError, match="past end"):
            unpacker.unpack(INT)

    def test_corrupt_tag(self):
        with pytest.raises(PackError, match="unknown datatype"):
            UnpackBuffer(b"\x99\x00\x00\x00\x01\x00").unpack(INT)

    def test_truncated_run(self):
        data = PackBuffer().pack([1, 2, 3], INT).getvalue()
        with pytest.raises(PackError, match="truncated"):
            UnpackBuffer(data[:-2]).unpack(INT, 3)


class TestEndToEnd:
    def test_pack_travels_through_send_recv(self):
        from repro.mpi import run_mpi

        def main(comm):
            if comm.rank == 0:
                buffer = (
                    PackBuffer()
                    .pack([10, 20], INT)
                    .pack(2.5, DOUBLE)
                    .pack("id:7", CHAR)
                )
                comm.send(buffer.getvalue(), dest=1, tag=0)
                return None
            payload, _status = comm.recv(source=0, tag=0)
            unpacker = UnpackBuffer(payload)
            return (
                unpacker.unpack(INT, 2),
                unpacker.unpack(DOUBLE),
                unpacker.unpack(CHAR),
            )

        result = run_mpi(2, main)[1]
        assert result == ([10, 20], 2.5, b"id:7")
