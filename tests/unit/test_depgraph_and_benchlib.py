"""Unit tests for the dependence tracker and the benchmark library."""

from __future__ import annotations

import pytest

from repro.benchlib import (
    fig9_curve,
    format_table,
    log_sizes,
    message_bytes_mpi,
    message_bytes_nio,
    message_bytes_remoting,
    message_bytes_rmi,
    modeled_bandwidth_from_bytes,
    modeled_time_from_bytes,
    simulate_farm,
)
from repro.benchlib.tables import human_bytes
from repro.core.depgraph import MAIN, DependenceTracker
from repro.errors import SimulationError
from repro.perfmodel import (
    JAVA_RMI,
    MONO_117_TCP,
    MPI_MPICH,
)
from repro.serialization import SoapFormatter


class TestDependenceTracker:
    def test_creation_chain_is_dag(self):
        tracker = DependenceTracker()
        tracker.record_creation(MAIN, "a")
        tracker.record_creation("a", "b")
        tracker.record_creation("a", "c")
        assert tracker.is_dag()
        assert tracker.cycles() == []

    def test_reference_cycle_detected(self):
        tracker = DependenceTracker()
        tracker.record_creation(MAIN, "a")
        tracker.record_creation("a", "b")
        tracker.record_reference("b", "a")  # b holds a reference back to a
        assert not tracker.is_dag()
        cycles = tracker.cycles()
        assert any(set(cycle) == {"a", "b"} for cycle in cycles)

    def test_self_reference_is_cycle(self):
        tracker = DependenceTracker()
        tracker.record_reference("a", "a")
        assert not tracker.is_dag()

    def test_edge_kinds_filterable(self):
        tracker = DependenceTracker()
        tracker.record_creation(MAIN, "x")
        tracker.record_reference("x", "y")
        assert tracker.edges(kind="creation") == [(MAIN, "x")]
        assert tracker.edges(kind="reference") == [("x", "y")]
        assert len(tracker) == 2

    def test_nodes_include_main(self):
        assert MAIN in DependenceTracker().nodes()


class TestMessageBytes:
    @pytest.mark.parametrize("n_ints", [0, 1, 256, 65536])
    def test_protocol_overhead_ordering(self, n_ints):
        """MPI <= nio < RMI-ish remoting < SOAP: the §2 overhead story."""
        raw, _ = message_bytes_mpi(n_ints)
        nio, _ = message_bytes_nio(n_ints)
        binary, _ = message_bytes_remoting(n_ints)
        rmi, _ = message_bytes_rmi(n_ints)
        soap, _ = message_bytes_remoting(n_ints, SoapFormatter())
        assert raw <= nio < binary
        assert binary <= rmi
        assert rmi < soap

    def test_payload_dominates_large_messages(self):
        request, response = message_bytes_remoting(1 << 18)
        payload = 4 * (1 << 18)
        assert request < payload * 1.05
        assert response < payload * 1.05

    def test_mpi_is_exactly_payload(self):
        request, response = message_bytes_mpi(100)
        assert request == response == 400


class TestModelPricing:
    def test_time_includes_both_directions(self):
        time_s = modeled_time_from_bytes(MPI_MPICH, 1000, 1000)
        assert time_s > 2 * MPI_MPICH.one_way_latency_s

    def test_bandwidth_ordering_matches_models(self):
        request, response = message_bytes_remoting(1 << 16)
        payload = 4 * (1 << 16)
        mpi = modeled_bandwidth_from_bytes(MPI_MPICH, payload, *message_bytes_mpi(1 << 16))
        rmi = modeled_bandwidth_from_bytes(JAVA_RMI, payload, *message_bytes_rmi(1 << 16))
        mono = modeled_bandwidth_from_bytes(MONO_117_TCP, payload, request, response)
        assert mpi > rmi > mono


class TestFarmSimulator:
    CHUNKS = [0.5] * 40

    def test_more_workers_never_slower(self):
        times = [
            simulate_farm(
                workers, self.CHUNKS, JAVA_RMI, 100, 10_000
            ).makespan_s
            for workers in (1, 2, 4, 8)
        ]
        assert times == sorted(times, reverse=True)

    def test_single_worker_close_to_serial(self):
        result = simulate_farm(1, self.CHUNKS, JAVA_RMI, 100, 10_000)
        serial = sum(self.CHUNKS) * JAVA_RMI.compute_scale_float
        assert result.makespan_s >= serial
        assert result.makespan_s < serial * 1.1

    def test_compute_scale_applied(self):
        fast = simulate_farm(2, self.CHUNKS, JAVA_RMI, 100, 10_000)
        slow = simulate_farm(2, self.CHUNKS, MONO_117_TCP.with_overrides(thread_pool_limit=None), 100, 10_000)
        ratio = slow.makespan_s / fast.makespan_s
        assert 1.2 < ratio < 1.6  # the ~1.4x sequential gap

    def test_pool_cap_hurts_wide_farms(self):
        capped = MONO_117_TCP.with_overrides(thread_pool_limit=2)
        uncapped = MONO_117_TCP.with_overrides(thread_pool_limit=None)
        capped_time = simulate_farm(
            8, self.CHUNKS, capped, 100, 10_000, pool_limit=2
        ).makespan_s
        free_time = simulate_farm(
            8, self.CHUNKS, uncapped, 100, 10_000
        ).makespan_s
        assert capped_time > free_time

    def test_efficiency_bounded(self):
        result = simulate_farm(4, self.CHUNKS, JAVA_RMI, 100, 10_000)
        assert 0.0 < result.efficiency <= 1.0

    def test_empty_chunks(self):
        result = simulate_farm(3, [], JAVA_RMI, 100, 10_000)
        assert result.makespan_s == 0.0
        assert result.chunks == 0

    def test_worker_validation(self):
        with pytest.raises(SimulationError):
            simulate_farm(0, self.CHUNKS, JAVA_RMI, 100, 10_000)


class TestFig9Curve:
    def test_monotone_decreasing(self):
        curve = fig9_curve(JAVA_RMI, [1, 2, 3, 4, 5, 6])
        times = [time_s for _p, time_s in curve]
        assert times == sorted(times, reverse=True)

    def test_parc_above_java_by_sequential_gap(self):
        parc = dict(fig9_curve(MONO_117_TCP, [1, 2, 4, 6]))
        java = dict(fig9_curve(JAVA_RMI, [1, 2, 4, 6]))
        for processors in (1, 2, 4, 6):
            ratio = parc[processors] / java[processors]
            assert 1.25 < ratio < 1.75, (processors, ratio)

    def test_sequential_point_is_pure_compute(self):
        (one, time_s), *_rest = fig9_curve(JAVA_RMI, [1], per_line_s=0.1, height=100)
        assert one == 1
        assert time_s == pytest.approx(10.0 * JAVA_RMI.compute_scale_float)


class TestTables:
    def test_log_sizes_strictly_increasing(self):
        sizes = log_sizes(1, 1024 * 1024, per_decade=2)
        assert sizes[0] == 1
        assert all(b > a for a, b in zip(sizes, sizes[1:]))

    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["bb", 22.5]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "-" in lines[2]
        assert len(lines) == 5

    def test_human_bytes(self):
        assert human_bytes(512) == "512 B"
        assert human_bytes(2048) == "2 KB"
        assert human_bytes(3 * 1024 * 1024) == "3 MB"
