"""Unit tests for the adaptive call path: sync fast path, batched
replies, per-method autotuning and service-time-aware scheduling.

Everything here is in-process and socket-free; the wire-level interop of
the same surfaces lives in test_returnn_wire.py.
"""

from __future__ import annotations

import math
import threading
import time

import pytest

from repro.core.config import ParcConfig
from repro.core.grain import AdaptiveGrainController
from repro.core.impl import ImplementationObject, _IOMailbox
from repro.remoting.messages import ReturnBatch
from repro.sched.config import SchedulerConfig
from repro.sched.planner import RebalancePlanner
from repro.sched.view import ClusterView, NodeView
from repro.cluster.placement import LocalityAwarePlacement
from repro.telemetry.metrics import (
    METHOD_HISTOGRAM_PREFIX,
    estimate_quantile,
    summarize_method_histograms,
)


class Recorder:
    def __init__(self):
        self.log = []
        self.lock = threading.Lock()

    def record(self, value):
        with self.lock:
            self.log.append(value)

    def slow(self, value, delay=0.02):
        time.sleep(delay)
        self.record(value)

    def get_log(self):
        with self.lock:
            return list(self.log)

    def double(self, value):
        return value * 2.0

    def pick(self, value):
        if value < 0:
            raise ValueError(f"no negatives: {value}")
        return value


# -- sync fast path -----------------------------------------------------------


class TestSyncFastPath:
    def test_idle_mailbox_serves_sync_calls_inline(self):
        impl = ImplementationObject(Recorder(), "t.R")
        try:
            for value in range(4):
                assert impl.invoke("double", (float(value),)) == value * 2.0
            assert impl.stats()["sync_inline"] == 4
        finally:
            impl.dispose()

    def test_fastpath_off_always_queues(self):
        impl = ImplementationObject(Recorder(), "t.R", sync_fastpath=False)
        try:
            assert impl.invoke("double", (2.0,)) == 4.0
            assert impl.stats()["sync_inline"] == 0
        finally:
            impl.dispose()

    def test_busy_mailbox_falls_back_to_fifo_queueing(self):
        impl = ImplementationObject(Recorder(), "t.R")
        try:
            for value in range(3):
                impl.enqueue("slow", (value,))
            before = impl.stats()["sync_inline"]
            # Queued work pending: the sync call must NOT jump the line.
            assert impl.invoke("get_log") == [0, 1, 2]
            assert impl.stats()["sync_inline"] == before
        finally:
            impl.dispose()

    def test_inline_batch_counts_every_call(self):
        impl = ImplementationObject(Recorder(), "t.R")
        try:
            reply = impl.invoke_batch(
                "double", [((float(i),), {}) for i in range(6)]
            )
            stats = impl.stats()
            assert stats["processed"] == 6
            assert stats["sync_inline"] == 6
            assert reply.count == 6
        finally:
            impl.dispose()


class TestMailboxClaim:
    def test_claim_requires_fully_idle(self):
        box = _IOMailbox()
        assert box.try_claim_idle()
        # Already claimed: a concurrent sync caller must queue.
        assert not box.try_claim_idle()
        box.release_claim()
        assert box.try_claim_idle()
        box.release_claim()

    def test_queued_work_blocks_the_claim(self):
        box = _IOMailbox()
        box.put("m", [object()])
        assert not box.try_claim_idle()

    def test_stopped_mailbox_refuses_the_claim(self):
        box = _IOMailbox()
        box.stop()
        assert not box.try_claim_idle()


# -- batched replies ----------------------------------------------------------


class TestInvokeBatch:
    def test_error_slots_carry_type_and_message(self):
        impl = ImplementationObject(Recorder(), "t.R")
        try:
            reply = impl.invoke_batch(
                "pick", [((1.0,), {}), ((-2.0,), {}), ((3.0,), {})]
            )
            assert isinstance(reply, ReturnBatch)
            assert reply.count == 3
            assert list(reply.results) == [1.0, None, 3.0]
            assert len(reply.errors) == 1
            index, type_name, message = reply.errors[0][:3]
            assert (index, type_name) == (1, "ValueError")
            assert "no negatives" in message
        finally:
            impl.dispose()

    def test_batch_preserves_fifo_with_pending_async_work(self):
        impl = ImplementationObject(Recorder(), "t.R")
        try:
            for value in range(3):
                impl.enqueue("slow", (value,))
            reply = impl.invoke_batch("record", [((99,), {})])
            assert reply.count == 1
            assert impl.invoke("get_log") == [0, 1, 2, 99]
        finally:
            impl.dispose()


# -- per-method autotuning ----------------------------------------------------


class TestDecideMethod:
    def test_no_decision_before_min_samples(self):
        controller = AdaptiveGrainController(min_samples=8)
        for _ in range(7):
            controller.observe_execution("C", 0.001, method="m")
        assert controller.decide_method("C", "m") is None

    def test_packs_to_amortize_overhead(self):
        controller = AdaptiveGrainController(
            overhead_s=500e-6, pack_factor=4.0, min_samples=4
        )
        for _ in range(8):
            controller.observe_execution("C", 0.0001, method="m")
        decision = controller.decide_method("C", "m")
        assert decision is not None
        max_calls, flush_after_s = decision
        assert max_calls == math.ceil(4.0 * 500e-6 / 0.0001)  # 20
        # flush deadline = one batch worth of work, within the clamp.
        assert flush_after_s == pytest.approx(max_calls * 0.0001)

    def test_flush_deadline_respects_floor_and_cap(self):
        controller = AdaptiveGrainController(min_samples=1)
        controller.observe_execution("C", 1e-6, method="fast")
        _calls, flush = controller.decide_method("C", "fast")
        assert flush == controller.flush_floor_s
        controller.observe_execution("C", 0.5, method="slow")
        _calls, flush = controller.decide_method("C", "slow")
        assert flush == controller.flush_cap_s

    def test_slow_methods_stay_unbatched(self):
        controller = AdaptiveGrainController(min_samples=2)
        for _ in range(4):
            controller.observe_execution("C", 0.05, method="m")
        max_calls, _flush = controller.decide_method("C", "m")
        assert max_calls == 1

    def test_method_streams_are_independent(self):
        controller = AdaptiveGrainController(min_samples=2)
        for _ in range(4):
            controller.observe_execution("C", 0.0001, method="light")
            controller.observe_execution("C", 0.05, method="heavy")
        light, _ = controller.decide_method("C", "light")
        heavy, _ = controller.decide_method("C", "heavy")
        assert light > 1
        assert heavy == 1

    def test_merge_remote_method_stats_is_sample_weighted(self):
        controller = AdaptiveGrainController()
        controller.merge_remote_method_stats("C", "m", 0.002, 10)
        controller.merge_remote_method_stats("C", "m", 0.004, 30)
        avg, samples = controller.method_stats_for("C", "m")
        assert samples == 40
        assert avg == pytest.approx((0.002 * 10 + 0.004 * 30) / 40)

    def test_merge_ignores_empty_or_nonpositive_summaries(self):
        controller = AdaptiveGrainController()
        controller.merge_remote_method_stats("C", "m", 0.002, 0)
        controller.merge_remote_method_stats("C", "m", 0.0, 5)
        assert controller.method_stats_for("C", "m") == (0.0, 0)


# -- telemetry bridge ---------------------------------------------------------


class TestHistogramSummaries:
    def test_estimate_quantile_walks_buckets(self):
        buckets = [[0.001, 50], [0.01, 40], [0.1, 10]]
        assert estimate_quantile(buckets, 100, 0.5) == 0.001
        assert estimate_quantile(buckets, 100, 0.9) == 0.01
        assert estimate_quantile(buckets, 100, 0.99) == 0.1
        assert estimate_quantile(buckets, 0, 0.5) is None
        with pytest.raises(ValueError):
            estimate_quantile(buckets, 100, 1.5)

    def test_summaries_keyed_by_span_past_the_prefix(self):
        export = {
            f"{METHOD_HISTOGRAM_PREFIX}Calc.mul": {
                "type": "histogram",
                "count": 4,
                "sum": 0.008,
                "buckets": [[0.001, 1], [0.01, 3]],
            },
            f"{METHOD_HISTOGRAM_PREFIX}Calc.idle": {
                "type": "histogram",
                "count": 0,
                "sum": 0.0,
                "buckets": [],
            },
            "parc.other.metric": {"type": "counter", "value": 7},
        }
        summaries = summarize_method_histograms(export)
        assert set(summaries) == {"Calc.mul"}
        assert summaries["Calc.mul"]["count"] == 4.0
        assert summaries["Calc.mul"]["avg_s"] == pytest.approx(0.002)
        assert summaries["Calc.mul"]["p99_s"] == 0.01


# -- service-time-aware scheduling --------------------------------------------


class TestServiceAwareView:
    def test_node_view_defaults_are_service_blind(self):
        node = NodeView(index=0, base_uri="n0")
        assert node.avg_service_s == 0.0
        assert node.p99_s == 0.0

    def test_placement_prices_backlog_in_measured_seconds(self):
        policy = LocalityAwarePlacement(service_scale_s=0.01)
        # Same queue depth; n0's calls are 100x slower.
        view = ClusterView(
            nodes=(
                NodeView(
                    index=0,
                    base_uri="n0",
                    load=1.0,
                    queue_depth=10,
                    avg_service_s=0.05,
                ),
                NodeView(
                    index=1,
                    base_uri="n1",
                    load=1.0,
                    queue_depth=10,
                    avg_service_s=0.0005,
                ),
            )
        )
        assert policy.choose(view, 0) == 1

    def test_unmeasured_nodes_keep_the_historical_score(self):
        policy = LocalityAwarePlacement()
        view = ClusterView(
            nodes=(
                NodeView(index=0, base_uri="n0", load=2.0, queue_depth=50),
                NodeView(index=1, base_uri="n1", load=1.0, queue_depth=50),
            )
        )
        # avg_service_s == 0 on both: pure least-loaded.
        assert policy.choose(view, 0) == 1


def _report(uri, queued, grains=(), avg_service_s=None):
    data = {
        "base_uri": uri,
        "alive": True,
        "queued": queued,
        "grains": list(grains),
    }
    if avg_service_s is not None:
        data["avg_service_s"] = avg_service_s
    return data


def _grain(path, backlog):
    return {"path": path, "class_name": "C", "backlog": backlog, "high": 0}


class TestServiceWeightedPlanner:
    def _planner(self, **kwargs):
        defaults = dict(
            work_stealing=True,
            steal_threshold=8,
            idle_threshold=2,
            imbalance_ratio=1.5,
            migration_cooldown_s=2.0,
        )
        defaults.update(kwargs)
        return RebalancePlanner(SchedulerConfig(**defaults))

    def test_slow_node_with_equal_depth_becomes_the_victim(self):
        p = self._planner()
        # Equal task counts, but n0's tasks are 4x slower: weighted
        # backlog 12*1.6=19.2 vs 12*0.4=4.8 crosses the 1.5x-mean bar.
        reports = [
            _report(
                "n0",
                12,
                [_grain("a", 5), _grain("b", 4)],
                avg_service_s=0.02,
            ),
            _report("n1", 12, avg_service_s=0.005),
        ]
        moves = p.plan(reports, 0.0)
        assert [(m.path, m.victim_uri, m.target_uri) for m in moves] == [
            ("a", "n0", "n1")
        ]

    def test_equal_service_times_change_nothing(self):
        p = self._planner()
        reports = [
            _report("n0", 12, avg_service_s=0.01),
            _report("n1", 12, avg_service_s=0.01),
        ]
        assert p.plan(reports, 0.0) == []

    def test_one_unmeasured_node_disables_the_weighting(self):
        p = self._planner()
        # Same shape as the victim test, but n1 has no measurement:
        # unweighted depths are equal, so nothing moves.
        reports = [
            _report(
                "n0",
                12,
                [_grain("a", 5), _grain("b", 4)],
                avg_service_s=0.02,
            ),
            _report("n1", 12),
        ]
        assert p.plan(reports, 0.0) == []


# -- config knobs -------------------------------------------------------------


class TestConfigKnobs:
    def test_sync_fastpath_defaults_on(self):
        assert ParcConfig().sync_fastpath is True
        assert ParcConfig(sync_fastpath=False).sync_fastpath is False

    def test_autotune_defaults_on(self):
        assert SchedulerConfig().autotune is True
        assert SchedulerConfig(autotune=False).autotune is False
