"""Unit tests for the asyncio channel substrate (repro.aio)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.aio import AioTcpChannel, LoopThread
from repro.channels import TcpChannel
from repro.errors import ChannelClosedError, ChannelError


def echo_handler(path, body, headers):
    return f"{path}:".encode() + body


@pytest.fixture
def aio_channel():
    channel = AioTcpChannel(request_timeout=10.0)
    yield channel
    channel.close()


@pytest.fixture
def echo_binding(aio_channel):
    binding = aio_channel.listen("127.0.0.1:0", echo_handler)
    yield binding
    binding.close()


class TestLoopThread:
    def test_runs_coroutines_from_any_thread(self):
        loop_thread = LoopThread()
        try:
            async def answer():
                return 42

            assert loop_thread.run(answer()) == 42
        finally:
            loop_thread.close()

    def test_close_is_idempotent(self):
        loop_thread = LoopThread()
        loop_thread.close()
        loop_thread.close()
        assert loop_thread.closed

    def test_rejects_work_after_close(self):
        loop_thread = LoopThread()
        loop_thread.close()

        async def never():
            return None  # pragma: no cover - submission must fail first

        coro = never()
        with pytest.raises(ChannelClosedError):
            loop_thread.run(coro)
        coro.close()

    def test_timeout_surfaces_as_channel_error(self):
        import asyncio

        loop_thread = LoopThread()
        try:
            async def stall():
                await asyncio.sleep(30)

            with pytest.raises(ChannelError, match="did not complete"):
                loop_thread.run(stall(), timeout=0.05)
        finally:
            loop_thread.close()


class TestAioChannelBasics:
    def test_scheme(self):
        assert AioTcpChannel.scheme == "aio"

    def test_window_must_be_positive(self):
        with pytest.raises(ChannelError):
            AioTcpChannel(window=0)

    def test_echo(self, aio_channel, echo_binding):
        result = aio_channel.call(echo_binding.authority, "obj", b"hi")
        assert result == b"obj:hi"

    def test_closed_channel_rejects_calls(self, echo_binding):
        channel = AioTcpChannel()
        channel.call(echo_binding.authority, "p", b"warm")
        channel.close()
        with pytest.raises(ChannelClosedError):
            channel.call(echo_binding.authority, "p", b"")

    def test_connect_refused(self, aio_channel):
        with pytest.raises(ChannelError):
            aio_channel.call("127.0.0.1:1", "p", b"")

    def test_registered_in_channel_services(self, aio_channel, echo_binding):
        from repro.channels.services import ChannelServices

        services = ChannelServices()
        services.register_channel(aio_channel)
        channel, uri = services.channel_for_uri(
            f"aio://{echo_binding.authority}/obj"
        )
        assert channel is aio_channel
        assert channel.call(uri.authority, uri.path, b"x") == b"obj:x"


class TestMultiplexing:
    def test_concurrent_callers_share_one_connection(self, aio_channel):
        """16 callers, one socket: the server sees a single connection."""

        def handler(path, body, headers):
            return body

        binding = aio_channel.listen("127.0.0.1:0", handler)
        # Count sockets server-side via the binding's transport set.
        try:
            def worker(index):
                for round_no in range(10):
                    body = f"{index}-{round_no}".encode()
                    assert aio_channel.call(
                        binding.authority, "c", body
                    ) == body

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(16)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(binding._transports) == 1
        finally:
            binding.close()

    def test_slow_call_does_not_block_fast_calls(self, aio_channel):
        """Head-of-line blocking test: responses return out of order."""
        release = threading.Event()

        def handler(path, body, headers):
            if path == "slow":
                assert release.wait(10.0)
            return path.encode()

        binding = aio_channel.listen("127.0.0.1:0", handler)
        try:
            slow_result = []
            slow_thread = threading.Thread(
                target=lambda: slow_result.append(
                    aio_channel.call(binding.authority, "slow", b"")
                )
            )
            slow_thread.start()
            time.sleep(0.05)  # let the slow request hit the wire first
            assert aio_channel.call(binding.authority, "fast", b"") == b"fast"
            assert not slow_result  # still parked behind the event
            release.set()
            slow_thread.join(timeout=10.0)
            assert slow_result == [b"slow"]
        finally:
            release.set()
            binding.close()

    def test_backpressure_queues_beyond_window(self):
        """window=1 serializes the wire but every call still completes."""
        channel = AioTcpChannel(window=1, request_timeout=30.0)
        in_handler = threading.Semaphore(0)

        def handler(path, body, headers):
            in_handler.release()
            return body

        binding = channel.listen("127.0.0.1:0", handler)
        try:
            results = []

            def worker(index):
                results.append(
                    channel.call(binding.authority, "w", str(index).encode())
                )

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert sorted(results) == sorted(
                str(i).encode() for i in range(8)
            )
        finally:
            binding.close()
            channel.close()

    def test_request_timeout(self):
        channel = AioTcpChannel(request_timeout=0.2)
        stall = threading.Event()

        def handler(path, body, headers):
            stall.wait(10.0)
            return body

        binding = channel.listen("127.0.0.1:0", handler)
        try:
            with pytest.raises(ChannelError, match="timed out"):
                channel.call(binding.authority, "p", b"")
        finally:
            stall.set()
            binding.close()
            channel.close()

    def test_handler_error_does_not_poison_connection(
        self, aio_channel, echo_binding
    ):
        """An application error fails one call, not the shared socket."""
        channel = AioTcpChannel()
        bad = channel.listen(
            "127.0.0.1:0",
            lambda path, body, headers: (_ for _ in ()).throw(
                ValueError("exploded")
            ),
        )
        try:
            with pytest.raises(ChannelError, match="exploded"):
                channel.call(bad.authority, "x", b"")
            # The same channel (and connection) keeps working elsewhere.
            assert channel.call(
                echo_binding.authority, "ok", b"1"
            ) == b"ok:1"
        finally:
            bad.close()
            channel.close()


class TestReconnect:
    def test_reconnects_after_server_restart(self):
        channel = AioTcpChannel(request_timeout=5.0)
        binding = channel.listen("127.0.0.1:0", echo_handler)
        authority = binding.authority
        try:
            assert channel.call(authority, "a", b"1") == b"a:1"
            binding.close()
            with pytest.raises(ChannelError):
                channel.call(authority, "a", b"2")
            binding = channel.listen(authority, echo_handler)
            assert channel.call(authority, "a", b"3") == b"a:3"
            reconnects = channel.metrics.counter(
                "aio.client.reconnects", ""
            ).value
            assert reconnects >= 1
        finally:
            binding.close()
            channel.close()

    def test_no_silent_retry_of_in_flight_request(self):
        """A request cut off mid-flight fails; it is never re-sent."""
        calls = []
        channel = AioTcpChannel(request_timeout=5.0)

        def handler(path, body, headers):
            calls.append(body)
            return body

        binding = channel.listen("127.0.0.1:0", echo_handler)
        authority = binding.authority
        channel.call(authority, "warm", b"")
        binding.close()  # kills the established connection
        with pytest.raises(ChannelError):
            channel.call(authority, "x", b"lost")
        binding = channel.listen(authority, handler)
        try:
            channel.call(authority, "y", b"after")
            assert calls == [b"after"]  # b"lost" never resurfaced
        finally:
            binding.close()
            channel.close()


class TestTelemetry:
    def test_gauges_return_to_zero_after_load(self, aio_channel, echo_binding):
        def worker(index):
            for _ in range(20):
                aio_channel.call(echo_binding.authority, "t", b"x")

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        metrics = aio_channel.metrics
        assert metrics.gauge("aio.client.in_flight", "").value == 0
        assert metrics.gauge("aio.client.queued", "").value == 0
        assert metrics.gauge("aio.server.in_flight", "").value == 0

    def test_shared_registry(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        channel = AioTcpChannel(metrics=registry)
        assert channel.metrics is registry
        channel.close()


class TestInterop:
    def test_classic_tcp_client_against_aio_server(self, aio_channel):
        """Uncorrelated frames from TcpChannel are served in order."""
        binding = aio_channel.listen("127.0.0.1:0", echo_handler)
        tcp = TcpChannel()
        try:
            for index in range(10):
                body = str(index).encode()
                assert tcp.call(
                    binding.authority, "seq", body
                ) == b"seq:" + body
        finally:
            tcp.close()
            binding.close()

    def test_remoting_stack_end_to_end(self):
        """aio:// URIs work through RemotingHost with stock call sites."""
        from repro.channels.services import ChannelServices
        from repro.remoting import (
            MarshalByRefObject,
            RemotingHost,
            WellKnownObjectMode,
        )

        class Doubler(MarshalByRefObject):
            def double(self, value: int) -> int:
                return 2 * value

        server_services = ChannelServices()
        host = RemotingHost(name="aio-test-server", services=server_services)
        binding = host.listen(AioTcpChannel(), "127.0.0.1:0")
        host.register_well_known(
            Doubler, "doubler", WellKnownObjectMode.SINGLETON
        )
        client_services = ChannelServices()
        client_channel = AioTcpChannel()
        client_services.register_channel(client_channel)
        client = RemotingHost(name="aio-test-client", services=client_services)
        try:
            proxy = client.get_object(f"aio://{binding.authority}/doubler")
            assert proxy.double(21) == 42
        finally:
            client.close()
            host.close()
            client_channel.close()
