"""Unit tests for the serialization class registry and surrogates."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import SerializationError, UnknownTypeError
from repro.serialization import BinaryFormatter, SerializationRegistry
from repro.serialization.registry import Surrogate, serializable


class TestRegistry:
    def test_register_and_lookup(self):
        registry = SerializationRegistry()

        class A:
            pass

        registry.register(A, "test.A")
        assert registry.wire_name_of(A) == "test.A"
        assert registry.class_of("test.A") is A
        assert A in registry
        assert len(registry) == 1

    def test_default_wire_name_is_qualified(self):
        registry = SerializationRegistry()

        class B:
            pass

        registry.register(B)
        name = registry.wire_name_of(B)
        assert name.endswith("B")
        assert "." in name

    def test_reregistration_same_pair_is_idempotent(self):
        registry = SerializationRegistry()

        class C:
            pass

        registry.register(C, "test.C")
        registry.register(C, "test.C")
        assert len(registry) == 1

    def test_name_collision_rejected(self):
        registry = SerializationRegistry()

        class D1:
            pass

        class D2:
            pass

        registry.register(D1, "test.D")
        with pytest.raises(SerializationError):
            registry.register(D2, "test.D")

    def test_unknown_class_error_mentions_decorator(self):
        registry = SerializationRegistry()

        class E:
            pass

        with pytest.raises(UnknownTypeError, match="serializable"):
            registry.wire_name_of(E)

    def test_unknown_wire_name(self):
        registry = SerializationRegistry()
        with pytest.raises(UnknownTypeError):
            registry.class_of("nowhere.Nothing")

    def test_iteration(self):
        registry = SerializationRegistry()

        class F:
            pass

        registry.register(F, "test.F")
        assert dict(iter(registry)) == {"test.F": F}


class TestStateExtraction:
    def test_plain_object_uses_dict(self):
        registry = SerializationRegistry()

        class G:
            def __init__(self):
                self.a = 1
                self.b = "two"

        registry.register(G)
        assert registry.state_of(G()) == {"a": 1, "b": "two"}

    def test_dataclass_fields_shallow(self):
        registry = SerializationRegistry()

        @dataclass
        class H:
            shared: list

        registry.register(H)
        shared = [1]
        state = registry.state_of(H(shared))
        assert state["shared"] is shared  # shallow, not copied

    def test_slots_without_getstate(self):
        registry = SerializationRegistry()

        class NoDict:
            __slots__ = ("x",)

        registry.register(NoDict)
        instance = NoDict()
        instance.x = 1
        # object.__getstate__ (3.11+) covers slots; state should hold x.
        state = registry.state_of(instance)
        assert state == {"x": 1} or state == {}

    def test_bad_getstate_rejected(self):
        registry = SerializationRegistry()

        class Bad:
            def __getstate__(self):
                return ["not", "a", "dict"]

        registry.register(Bad)
        with pytest.raises(SerializationError):
            registry.state_of(Bad())

    def test_restore_state_sets_attributes(self):
        registry = SerializationRegistry()

        class I1:
            pass

        registry.register(I1, "test.I1")
        obj = registry.new_instance("test.I1")
        registry.restore_state(obj, {"x": 5})
        assert obj.x == 5


class TestSerializableDecorator:
    def test_decorator_plain(self):
        @serializable
        class J1:
            pass

        formatter = BinaryFormatter()
        assert isinstance(formatter.loads(formatter.dumps(J1())), J1)

    def test_decorator_with_name(self):
        @serializable(name="test.registry.J2")
        class J2:
            pass

        from repro.serialization import default_registry

        assert default_registry.class_of("test.registry.J2") is J2


class _UpperSurrogate(Surrogate):
    """Test surrogate: encodes a marker type as its uppercase text."""

    wire_name = "test.registry.Upper"

    def applies_to(self, obj):
        return isinstance(obj, _Marked)

    def encode(self, obj):
        return {"text": obj.text.upper()}

    def decode(self, state):
        return state["text"]


class _Marked:
    def __init__(self, text):
        self.text = text


class TestSurrogates:
    def test_surrogate_intercepts_encoding(self):
        registry = SerializationRegistry()
        registry.register_surrogate(_UpperSurrogate())
        formatter = BinaryFormatter(registry)
        assert formatter.loads(formatter.dumps(_Marked("abc"))) == "ABC"

    def test_surrogate_applies_inside_containers(self):
        registry = SerializationRegistry()
        registry.register_surrogate(_UpperSurrogate())
        formatter = BinaryFormatter(registry)
        result = formatter.loads(formatter.dumps({"k": [_Marked("x")]}))
        assert result == {"k": ["X"]}

    def test_duplicate_surrogate_name_rejected(self):
        registry = SerializationRegistry()
        registry.register_surrogate(_UpperSurrogate())
        with pytest.raises(SerializationError):
            registry.register_surrogate(_UpperSurrogate())

    def test_same_instance_idempotent(self):
        registry = SerializationRegistry()
        surrogate = _UpperSurrogate()
        registry.register_surrogate(surrogate)
        registry.register_surrogate(surrogate)
        assert registry.surrogate_by_name("test.registry.Upper") is surrogate

    def test_surrogate_name_cannot_shadow_class(self):
        registry = SerializationRegistry()

        class K:
            pass

        registry.register(K, "test.registry.Upper")
        with pytest.raises(SerializationError):
            registry.register_surrogate(_UpperSurrogate())

    def test_surrogate_lookup_miss(self):
        registry = SerializationRegistry()
        assert registry.surrogate_for(object()) is None
        assert registry.surrogate_by_name("nope") is None
