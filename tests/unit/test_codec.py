"""Unit tests for the compiled-codec fast path (`repro.serialization.codec`)."""

from __future__ import annotations

import array
from dataclasses import dataclass, field

import pytest

from repro.errors import SerializationError, UnknownTypeError, WireFormatError
from repro.serialization import (
    BinaryFormatter,
    CodecRegistry,
    FastBinaryFormatter,
    SerializationRegistry,
    compile_codec,
    serializable,
)
from repro.serialization.codec import (
    method_column_plan,
    pack_columns,
    unpack_columns,
)


@serializable(name="test.codec.Sample")
@dataclass
class Sample:
    count: int
    ratio: float
    label: str
    blob: bytes = b""
    flag: bool = False
    payload: object = None


@serializable(name="test.codec.Nested")
@dataclass
class Nested:
    inner: Sample
    extras: list = field(default_factory=list)


@serializable(name="test.codec.Graphish")
@dataclass
class Graphish:
    items: list = field(default_factory=list)


@serializable(name="test.codec.CustomState")
class CustomState:
    def __init__(self):
        self.kept = 1

    def __getstate__(self):
        return {"kept": self.kept}

    def __setstate__(self, state):
        self.kept = state["kept"]


class Unregistered:
    pass


@pytest.fixture
def codecs():
    registry = CodecRegistry()
    registry.register(Sample)
    registry.register(Nested)
    return registry


@pytest.fixture
def fast(codecs):
    return FastBinaryFormatter(codecs=codecs)


@pytest.fixture
def generic():
    return BinaryFormatter()


SAMPLES = [
    Sample(count=7, ratio=2.5, label="hello", blob=b"\x00\xff", flag=True),
    Sample(count=-(2**62), ratio=float("inf"), label="", payload=[1, {"k": 2}]),
    Sample(count=2**100, ratio=1.0, label="big int falls back", flag=False),
    Nested(inner=Sample(1, 1.0, "in"), extras=[1, "two", (3.0,)]),
]


@pytest.mark.parametrize("value", SAMPLES, ids=lambda v: type(v).__name__)
def test_compiled_encode_is_byte_identical(generic, fast, value):
    assert generic.dumps(value) == fast.dumps(value)


@pytest.mark.parametrize("value", SAMPLES, ids=lambda v: type(v).__name__)
def test_wire_interop_both_directions(generic, fast, value):
    assert fast.loads(generic.dumps(value)) == value
    assert generic.loads(fast.dumps(value)) == value


def test_identity_memo_matches_generic(generic, fast):
    shared = Sample(1, 1.0, "shared")
    graph = [shared, shared, (shared, [shared])]
    assert generic.dumps(graph) == fast.dumps(graph)
    decoded = fast.loads(generic.dumps(graph))
    assert decoded[0] is decoded[1]
    assert decoded[2][0] is decoded[0]


def test_dumps_into_appends_to_existing_buffer(fast):
    out = bytearray(b"HDR")
    fast.dumps_into(out, Sample(1, 2.0, "x"))
    assert out[:3] == b"HDR"
    assert fast.loads(memoryview(out)[3:]) == Sample(1, 2.0, "x")


def test_loads_accepts_memoryview_and_bytearray(fast):
    payload = fast.dumps(SAMPLES[0])
    assert fast.loads(bytearray(payload)) == SAMPLES[0]
    assert fast.loads(memoryview(payload)) == SAMPLES[0]


def test_annotation_lies_fall_back_to_generic_ladder(generic, fast):
    # `count` is annotated int but holds a float: the specialized encoder
    # must not mis-tag it.  Payload stays byte-identical to the generic one.
    value = Sample(count=1.5, ratio=2, label=None, blob="not-bytes")
    assert generic.dumps(value) == fast.dumps(value)
    assert generic.loads(fast.dumps(value)) == value


def test_truncated_payloads_raise_wire_errors(fast):
    payload = fast.dumps(SAMPLES[0])
    for cut in range(len(payload)):
        with pytest.raises(SerializationError):
            fast.loads(payload[:cut])


def test_unregistered_class_raises_like_generic(generic, fast):
    with pytest.raises(UnknownTypeError):
        generic.dumps(Unregistered())
    with pytest.raises(UnknownTypeError):
        fast.dumps(Unregistered())


def test_compile_refuses_non_dataclass():
    with pytest.raises(SerializationError, match="dataclass"):
        compile_codec(CustomState)


def test_compile_refuses_custom_state_hooks():
    @dataclass
    class Hooked:
        kept: int = 0

        def __getstate__(self):
            return {"kept": self.kept}

    registry = SerializationRegistry()
    registry.register(Hooked, "test.codec.Hooked")
    with pytest.raises(SerializationError, match="__getstate__"):
        compile_codec(Hooked, registry)


def test_graph_marker_keeps_generic_path(generic):
    codecs = CodecRegistry()
    codecs.register(Sample)
    assert codecs.codec_for(Sample) is not None
    codecs.register(Graphish, graph=True)
    assert codecs.codec_for(Graphish) is None
    assert codecs.is_graph(Graphish)
    # Re-marking a compiled class as graph-shaped evicts its codec.
    codecs.register(Sample, graph=True)
    assert codecs.codec_for(Sample) is None
    fmt = FastBinaryFormatter(codecs=codecs)
    cyclic = Graphish()
    cyclic.items.append(cyclic)
    decoded = fmt.loads(generic.dumps(cyclic))
    assert decoded.items[0] is decoded


def test_codecs_registered_after_formatter_are_picked_up(generic):
    codecs = CodecRegistry()
    fmt = FastBinaryFormatter(codecs=codecs)
    value = Sample(3, 3.0, "late")
    before = fmt.dumps(value)
    codecs.register(Sample)
    after = fmt.dumps(value)
    assert before == after == generic.dumps(value)


def test_schema_drift_falls_back_to_state_restore():
    # An "old" peer compiled (a, b); the "new" class is (a, c=9).  The field
    # mismatch mid-decode must degrade to the registry's state-dict path:
    # `a` keeps its value, stray `b` is attached, missing `c` gets its
    # dataclass default.
    @dataclass
    class OldShape:
        a: int
        b: int

    @dataclass
    class NewShape:
        a: int
        c: int = 9

    old_reg = SerializationRegistry()
    old_reg.register(OldShape, "test.codec.Evolving")
    old_codecs = CodecRegistry()
    old_codecs.register(OldShape, registry=old_reg)
    new_reg = SerializationRegistry()
    new_reg.register(NewShape, "test.codec.Evolving")
    new_codecs = CodecRegistry()
    new_codecs.register(NewShape, registry=new_reg)

    old_fmt = FastBinaryFormatter(old_reg, old_codecs)
    new_fmt = FastBinaryFormatter(new_reg, new_codecs)
    decoded = new_fmt.loads(old_fmt.dumps(OldShape(a=4, b=5)))
    assert type(decoded) is NewShape
    assert decoded.a == 4
    assert decoded.c == 9
    assert decoded.b == 5  # unknown field preserved as a plain attribute


# -- columnar batch packing ---------------------------------------------------


class WithSignature:
    def step(self, x: float, n: int, anything):
        pass

    def varargs(self, *values: float):
        pass

    def kwonly(self, *, k: int = 0):
        pass


def test_method_column_plan_reads_annotations():
    assert method_column_plan(WithSignature.step) == ("float", "int", None)
    assert method_column_plan(WithSignature.varargs) is None
    assert method_column_plan(WithSignature.kwonly) is None
    assert method_column_plan(None) is None


def test_pack_columns_builds_float_blobs():
    batch = [((float(i), i, "s"), {}) for i in range(8)]
    columns = pack_columns(batch, method_column_plan(WithSignature.step))
    assert isinstance(columns[0], array.array)
    assert columns[0].typecode == "d"
    assert isinstance(columns[1], list)
    assert unpack_columns(8, columns) == batch


def test_pack_columns_verifies_floats_despite_plan():
    # The plan says float, but a caller passed an int: the column must stay
    # a list (packing into array('d') would silently coerce 1 -> 1.0).
    batch = [((1.0,), {}), ((2,), {})]
    columns = pack_columns(batch, ("float",))
    assert isinstance(columns[0], list)
    assert unpack_columns(2, columns) == batch


def test_pack_columns_rejects_heterogeneous_batches():
    assert pack_columns([]) is None
    assert pack_columns([((1,), {"k": 1})]) is None
    assert pack_columns([((1,), {}), ((1, 2), {})]) is None


def test_pack_columns_zero_arg_batch():
    batch = [((), {}) for _ in range(5)]
    assert pack_columns(batch) == ()
    assert unpack_columns(5, ()) == batch


def test_unpack_columns_length_mismatch_raises():
    with pytest.raises(SerializationError, match="mismatch"):
        unpack_columns(3, ([1, 2],))


def test_columnar_aggregate_is_materially_smaller(fast):
    # The acceptance-style size check: a 64-call aggregate in columnar form
    # must encode >=1.5x smaller than the legacy [(args, kwargs), ...] batch.
    batch = [((float(i), i), {}) for i in range(64)]
    legacy = fast.dumps(("step", batch))
    columns = pack_columns(batch)
    columnar = fast.dumps(("step", 64, columns))
    assert len(legacy) / len(columnar) >= 1.5
