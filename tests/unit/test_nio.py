"""Unit tests for the java.nio analog: ByteBuffer discipline + channels."""

from __future__ import annotations

import threading

import pytest

from repro.errors import BufferStateError, NioError
from repro.nio import (
    ByteBuffer,
    Selector,
    ServerSocketChannel,
    SocketChannel,
)


class TestBufferStateMachine:
    def test_fresh_buffer(self):
        buffer = ByteBuffer.allocate(16)
        assert buffer.capacity == 16
        assert buffer.position == 0
        assert buffer.limit == 16
        assert buffer.remaining() == 16

    def test_negative_capacity(self):
        with pytest.raises(BufferStateError):
            ByteBuffer.allocate(-1)

    def test_put_advances_position(self):
        buffer = ByteBuffer.allocate(8)
        buffer.put(b"abc")
        assert buffer.position == 3

    def test_flip_switches_to_drain(self):
        buffer = ByteBuffer.allocate(8)
        buffer.put(b"abc").flip()
        assert buffer.position == 0
        assert buffer.limit == 3
        assert buffer.get(3) == b"abc"
        assert not buffer.has_remaining()

    def test_clear_resets(self):
        buffer = ByteBuffer.allocate(8)
        buffer.put(b"abc").flip()
        buffer.get(1)
        buffer.clear()
        assert buffer.position == 0
        assert buffer.limit == 8

    def test_rewind_redrains(self):
        buffer = ByteBuffer.wrap(b"xyz")
        assert buffer.get(3) == b"xyz"
        buffer.rewind()
        assert buffer.get(3) == b"xyz"

    def test_compact_preserves_tail(self):
        buffer = ByteBuffer.allocate(8)
        buffer.put(b"abcdef").flip()
        buffer.get(2)
        buffer.compact()
        buffer.flip()
        assert buffer.get(4) == b"cdef"

    def test_mark_reset(self):
        buffer = ByteBuffer.wrap(b"abcd")
        buffer.get(1)
        buffer.mark()
        buffer.get(2)
        buffer.reset()
        assert buffer.get(2) == b"bc"

    def test_reset_without_mark(self):
        with pytest.raises(BufferStateError):
            ByteBuffer.allocate(4).reset()

    def test_mark_discarded_when_position_moves_before_it(self):
        buffer = ByteBuffer.wrap(b"abcd")
        buffer.get(2)
        buffer.mark()
        buffer.position = 1
        with pytest.raises(BufferStateError):
            buffer.reset()

    def test_overflow(self):
        with pytest.raises(BufferStateError, match="overflow"):
            ByteBuffer.allocate(2).put(b"abc")

    def test_underflow(self):
        buffer = ByteBuffer.wrap(b"a")
        with pytest.raises(BufferStateError, match="underflow"):
            buffer.get(2)

    def test_position_setter_bounds(self):
        buffer = ByteBuffer.allocate(4)
        with pytest.raises(BufferStateError):
            buffer.position = 5
        buffer.position = 4
        assert buffer.position == 4

    def test_limit_setter_clamps_position(self):
        buffer = ByteBuffer.allocate(8)
        buffer.put(b"abcdef")
        buffer.limit = 3
        assert buffer.position == 3

    def test_limit_beyond_capacity(self):
        with pytest.raises(BufferStateError):
            ByteBuffer.allocate(4).limit = 5


class TestTypedAccess:
    def test_int_roundtrip(self):
        buffer = ByteBuffer.allocate(4)
        buffer.put_int(-123456).flip()
        assert buffer.get_int() == -123456

    def test_long_roundtrip(self):
        buffer = ByteBuffer.allocate(8)
        buffer.put_long(2**40).flip()
        assert buffer.get_long() == 2**40

    def test_double_roundtrip(self):
        buffer = ByteBuffer.allocate(8)
        buffer.put_double(3.14159).flip()
        assert buffer.get_double() == 3.14159

    def test_mixed_sequence(self):
        buffer = ByteBuffer.allocate(32)
        buffer.put_int(1).put_double(2.5).put(b"xy").flip()
        assert buffer.get_int() == 1
        assert buffer.get_double() == 2.5
        assert buffer.get(2) == b"xy"

    def test_wrap_is_copy(self):
        source = bytearray(b"abc")
        buffer = ByteBuffer.wrap(bytes(source))
        source[0] = ord("z")
        assert buffer.get(1) == b"a"

    def test_advance_validation(self):
        buffer = ByteBuffer.allocate(4)
        with pytest.raises(BufferStateError):
            buffer.advance(5)
        with pytest.raises(BufferStateError):
            buffer.advance(-1)


class TestSocketChannels:
    def test_echo_with_manual_framing(self):
        server = ServerSocketChannel.open().bind(("127.0.0.1", 0))
        done = threading.Event()

        def serve() -> None:
            channel = server.accept()
            try:
                header = ByteBuffer.allocate(4)
                channel.read_fully(header)
                header.flip()
                size = header.get_int()
                body = ByteBuffer.allocate(size)
                channel.read_fully(body)
                body.flip()
                data = body.get(size)
                out = ByteBuffer.allocate(4 + size)
                out.put_int(size).put(data.upper()).flip()
                channel.write_fully(out)
            finally:
                channel.close()
                done.set()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        client = SocketChannel.open(server.local_address)
        try:
            message = b"framed by hand"
            out = ByteBuffer.allocate(4 + len(message))
            out.put_int(len(message)).put(message).flip()
            client.write_fully(out)
            header = ByteBuffer.allocate(4)
            client.read_fully(header)
            header.flip()
            size = header.get_int()
            body = ByteBuffer.allocate(size)
            client.read_fully(body)
            body.flip()
            assert body.get(size) == message.upper()
        finally:
            client.close()
            assert done.wait(5)
            server.close()

    def test_read_returns_minus_one_at_eof(self):
        server = ServerSocketChannel.open().bind(("127.0.0.1", 0))

        def close_immediately() -> None:
            server.accept().close()

        thread = threading.Thread(target=close_immediately, daemon=True)
        thread.start()
        client = SocketChannel.open(server.local_address)
        try:
            buffer = ByteBuffer.allocate(4)
            thread.join(5)
            assert client.read(buffer) == -1
        finally:
            client.close()
            server.close()

    def test_read_fully_premature_eof(self):
        server = ServerSocketChannel.open().bind(("127.0.0.1", 0))

        def send_partial() -> None:
            channel = server.accept()
            partial = ByteBuffer.wrap(b"ab")
            channel.write_fully(partial)
            channel.close()

        thread = threading.Thread(target=send_partial, daemon=True)
        thread.start()
        client = SocketChannel.open(server.local_address)
        try:
            buffer = ByteBuffer.allocate(10)
            with pytest.raises(NioError, match="EOF"):
                client.read_fully(buffer)
        finally:
            client.close()
            server.close()
            thread.join(5)

    def test_connect_failure(self):
        with pytest.raises(NioError):
            SocketChannel.open(("127.0.0.1", 1))


class TestSelector:
    def test_accept_and_read_readiness(self):
        server = ServerSocketChannel.open().bind(("127.0.0.1", 0))
        server.configure_blocking(False)
        selector = Selector.open()
        server.register(selector, __import__("selectors").EVENT_READ, "server")
        client = SocketChannel.open(server.local_address)
        try:
            keys = list(selector.select(timeout=5))
            assert len(keys) == 1
            assert keys[0].attachment == "server"
            assert keys[0].is_readable()
            accepted = keys[0].channel.accept()
            accepted.configure_blocking(False)
            accepted.register(
                selector, __import__("selectors").EVENT_READ, "conn"
            )
            client.write_fully(ByteBuffer.wrap(b"ping"))
            ready = {key.attachment for key in selector.select(timeout=5)}
            assert "conn" in ready
            buffer = ByteBuffer.allocate(4)
            assert accepted.read(buffer) == 4
            selector.unregister(accepted)
            accepted.close()
        finally:
            client.close()
            selector.close()
            server.close()
