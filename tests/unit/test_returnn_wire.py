"""Wire-interop tests for batched replies (returnN).

The returnN negotiation is one-sided and silent: a new client first tries
the aggregate ``invoke_batch`` surface and, when the peer predates it,
drops — permanently, per grain — to a loop of plain per-call ``invoke``
round-trips.  These tests pin that matrix across the tcp, aio and shm
transports (plus the chaos wrapper): a new↔new pairing batches, a
new↔old pairing loses zero calls, and the fallback's per-call responses
are *byte-identical* to a hand-written per-call client, so an old peer
cannot tell a falling-back caller from a genuinely old one.
"""

from __future__ import annotations

import pytest

from repro.aio import AioTcpChannel
from repro.channels.base import Channel
from repro.channels.services import ChannelServices
from repro.channels.tcp import TcpChannel
from repro.chaos import FaultyChannel
from repro.core.impl import ImplementationObject
from repro.core.proxy_object import RemoteGrain
from repro.errors import BatchCallError, RemoteInvocationError
from repro.remoting import RemotingHost
from repro.shm import ShmChannel


class Calc:
    """Deterministic little service: same args always mean same bytes."""

    def __init__(self):
        self.seen = 0

    def mul(self, a, b):
        self.seen += 1
        return a * b

    def pick(self, value):
        self.seen += 1
        if value < 0:
            raise ValueError(f"no negatives: {value}")
        return value * 2.0


class OldImplementationObject(ImplementationObject):
    """An IO from before the returnN change.

    ``None`` class attributes make the host's method resolution answer
    "has no remote method", exactly what a genuinely old peer says, so
    the client-side negotiation sees the real wire-level refusal.
    """

    invoke_batch = None
    invoke_columns = None


class RecordingChannel(Channel):
    """Client-side wrapper capturing every (path, request, response)."""

    def __init__(self, inner):
        super().__init__(inner.formatter)
        self.inner = inner
        self.scheme = inner.scheme
        self.exchanges = []

    def listen(self, authority, handler):
        return self.inner.listen(authority, handler)

    def call(self, authority, path, body, headers=None):
        response = self.inner.call(authority, path, body, headers=headers)
        self.exchanges.append((path, bytes(body), bytes(response)))
        return response

    def close(self):
        self.inner.close()


@pytest.fixture(params=["tcp", "aio", "shm", "chaos+tcp"])
def transport(request):
    return request.param


def make_channel(kind):
    if kind == "tcp":
        return TcpChannel()
    if kind == "aio":
        return AioTcpChannel()
    if kind == "shm":
        return ShmChannel()
    return FaultyChannel(TcpChannel())  # zero-fault chaos passthrough


def authority_for(kind):
    return "auto" if kind == "shm" else "127.0.0.1:0"


def serve_io(kind, io_class=ImplementationObject):
    """Boot a server host exposing one IO at a well-known path."""
    server = RemotingHost(name="returnn-server", services=ChannelServices())
    channel = make_channel(kind)
    binding = server.listen(channel, authority_for(kind))
    io = io_class(Calc(), "Calc")
    server.publish(io, "io")
    uri = f"{channel.scheme}://{binding.authority}/io"
    return server, io, uri


def connect(kind, uri, record=False):
    """Client host + proxy + grain for *uri*; returns all four pieces."""
    channel = make_channel(kind)
    if record:
        channel = RecordingChannel(channel)
    services = ChannelServices()
    services.register_channel(channel)
    client = RemotingHost(name="returnn-client", services=services)
    proxy = client.get_object(uri)
    grain = RemoteGrain(proxy, max_calls=4)
    return client, channel, proxy, grain


@pytest.fixture
def new_pair(transport):
    server, io, uri = serve_io(transport)
    client, channel, proxy, grain = connect(transport, uri)
    yield io, grain
    grain.dispose()
    client.close()
    io.dispose()
    server.close()


@pytest.fixture
def old_pair(transport):
    server, io, uri = serve_io(transport, io_class=OldImplementationObject)
    client, channel, proxy, grain = connect(transport, uri)
    yield io, grain
    grain.dispose()
    client.close()
    io.dispose()
    server.close()


BATCH = [((float(i), 3.0), {}) for i in range(8)]
EXPECTED = [float(i) * 3.0 for i in range(8)]


class TestNewPeerBatching:
    def test_call_many_round_trips_one_returnn(self, new_pair):
        io, grain = new_pair
        assert grain.call_many("mul", BATCH) == EXPECTED
        assert grain._sync_batched is True
        # One mailbox entry server-side, not eight.
        assert io.stats()["processed"] == len(BATCH)

    def test_error_slots_survive_the_wire(self, new_pair):
        _io, grain = new_pair
        batch = [((1.0,), {}), ((-2.0,), {}), ((3.0,), {})]
        with pytest.raises(BatchCallError) as excinfo:
            grain.call_many("pick", batch)
        error = excinfo.value
        assert error.results == [2.0, None, 6.0]
        assert set(error.failures) == {1}
        assert isinstance(error.failures[1], RemoteInvocationError)
        assert "no negatives" in str(error.failures[1])
        # The grain stays batched: an application error is not a
        # negotiation signal.
        assert grain._sync_batched is True


class TestOldPeerFallback:
    def test_fallback_loses_zero_calls(self, old_pair):
        io, grain = old_pair
        assert grain.call_many("mul", BATCH) == EXPECTED
        assert grain._sync_batched is False  # negotiated down for good
        assert io.stats()["processed"] == len(BATCH)
        # Second aggregate goes straight to per-call invokes — no
        # renewed invoke_batch probe, still no losses.
        assert grain.call_many("mul", BATCH) == EXPECTED
        assert io.stats()["processed"] == 2 * len(BATCH)

    def test_fallback_error_slots_match_batched_contract(self, old_pair):
        _io, grain = old_pair
        batch = [((1.0,), {}), ((-2.0,), {}), ((3.0,), {})]
        with pytest.raises(BatchCallError) as excinfo:
            grain.call_many("pick", batch)
        error = excinfo.value
        assert error.results == [2.0, None, 6.0]
        assert set(error.failures) == {1}
        assert isinstance(error.failures[1], RemoteInvocationError)


class TestFallbackByteIdentity:
    def test_fallback_requests_and_replies_match_plain_per_call(
        self, transport
    ):
        """An old server cannot distinguish a falling-back new client.

        Record the fallback's wire traffic, then replay the same batch
        as hand-written per-call invokes from a fresh client: after the
        one refused invoke_batch probe, every request and response byte
        must match.
        """
        server, io, uri = serve_io(
            transport, io_class=OldImplementationObject
        )
        try:
            client_a, channel_a, _proxy, grain = connect(
                transport, uri, record=True
            )
            assert grain.call_many("mul", BATCH) == EXPECTED
            fallback = list(channel_a.exchanges)

            client_b, channel_b, proxy, _grain = connect(
                transport, uri, record=True
            )
            for args, kwargs in BATCH:
                proxy.invoke("mul", args, kwargs)
            plain = list(channel_b.exchanges)
            client_b.close()

            grain.dispose()  # remote-disposes the shared IO: last
            client_a.close()
        finally:
            io.dispose()
            server.close()

        # fallback[0] is the refused invoke_batch probe; everything
        # after it is the per-call fallback loop.
        per_call = fallback[1 : 1 + len(BATCH)]
        assert len(per_call) == len(BATCH)
        assert per_call == plain[: len(BATCH)]
