"""Unit tests for framing, URI parsing, channel registry, and channels."""

from __future__ import annotations

import socket
import threading

import pytest

from repro.channels import (
    ChannelMeter,
    HttpChannel,
    LoopbackChannel,
    MeteredChannel,
    TcpChannel,
    parse_uri,
)
from repro.channels.framing import (
    CORRELATION_SIZE,
    FLAG_CORRELATED,
    HEADER_SIZE,
    MAGIC,
    encode_frame,
    parse_header,
    read_frame,
    split_correlation,
    write_frame,
)
from repro.channels.http import build_request, build_response, read_http_message
from repro.channels.services import ChannelServices
from repro.channels.tcp import _ConnectionPool, parse_host_port
from repro.errors import (
    AddressError,
    ChannelClosedError,
    ChannelError,
    WireFormatError,
)


class TestFraming:
    def test_frame_roundtrip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            write_frame(left, b"payload", flags=3)
            flags, payload = read_frame(right)
            assert flags == 3
            assert payload == b"payload"
        finally:
            left.close()
            right.close()

    def test_empty_payload(self):
        left, right = socket.socketpair()
        try:
            write_frame(left, b"")
            _flags, payload = read_frame(right)
            assert payload == b""
        finally:
            left.close()
            right.close()

    def test_frame_has_magic_prefix(self):
        assert encode_frame(b"x").startswith(MAGIC)

    def test_bad_magic_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"XX\x00\x00\x00\x00\x01a")
            with pytest.raises(WireFormatError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame_reported(self):
        left, right = socket.socketpair()
        try:
            frame = encode_frame(b"hello")
            left.sendall(frame[:4])
            left.close()
            with pytest.raises(ChannelClosedError):
                read_frame(right)
        finally:
            right.close()

    def test_oversize_frame_rejected_at_encode(self):
        from repro.channels.framing import MAX_FRAME

        with pytest.raises(WireFormatError):
            encode_frame(b"x" * (MAX_FRAME + 1))

    def test_oversize_length_rejected_at_parse(self):
        from repro.channels.framing import MAX_FRAME

        header = MAGIC + bytes([0]) + (MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(WireFormatError):
            parse_header(header)

    def test_multi_frame_stream(self):
        """Back-to-back frames on one socket each parse independently."""
        left, right = socket.socketpair()
        try:
            frames = [b"", b"one", b"x" * 70_000, b"last"]
            left.sendall(b"".join(encode_frame(frame) for frame in frames))
            for expected in frames:
                _flags, payload = read_frame(right)
                assert payload == expected
        finally:
            left.close()
            right.close()

    def test_garbage_stream_raises_not_hangs(self):
        """A non-frame byte stream fails fast with a wire error."""
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00" * (HEADER_SIZE * 3))
            with pytest.raises(WireFormatError):
                read_frame(right)
        finally:
            left.close()
            right.close()

    def test_truncated_header_raises_not_hangs(self):
        left, right = socket.socketpair()
        try:
            left.sendall(encode_frame(b"payload")[: HEADER_SIZE - 2])
            left.close()
            # ChannelClosedError is a ChannelError: callers need one
            # except clause, not a hung read.
            with pytest.raises(ChannelError):
                read_frame(right)
        finally:
            right.close()


class TestCorrelation:
    def test_round_trip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            write_frame(left, b"req", correlation_id=0xDEADBEEF)
            flags, payload = read_frame(right)
            assert flags & FLAG_CORRELATED
            correlation_id, body = split_correlation(flags, payload)
            assert correlation_id == 0xDEADBEEF
            assert body == b"req"
        finally:
            left.close()
            right.close()

    def test_uncorrelated_frame_passes_through(self):
        flags, length = parse_header(encode_frame(b"plain")[:HEADER_SIZE])
        assert not flags & FLAG_CORRELATED
        assert split_correlation(flags, b"plain") == (None, b"plain")

    def test_zero_length_body_with_correlation(self):
        frame = encode_frame(b"", correlation_id=7)
        flags, length = parse_header(frame[:HEADER_SIZE])
        assert length == CORRELATION_SIZE  # id only, empty body
        correlation_id, body = split_correlation(flags, frame[HEADER_SIZE:])
        assert correlation_id == 7
        assert body == b""

    def test_id_zero_is_valid(self):
        frame = encode_frame(b"b", correlation_id=0)
        flags, _length = parse_header(frame[:HEADER_SIZE])
        assert split_correlation(flags, frame[HEADER_SIZE:]) == (0, b"b")

    def test_correlated_flag_with_short_payload_rejected(self):
        with pytest.raises(WireFormatError):
            split_correlation(FLAG_CORRELATED, b"\x00" * (CORRELATION_SIZE - 1))


class _FakeSocket:
    """Stand-in for a pooled socket; records close()/shutdown()."""

    def __init__(self):
        self.closed = False
        self.shut_down = False

    def close(self):
        self.closed = True

    def shutdown(self, how):
        self.shut_down = True


class TestConnectionPool:
    def test_idle_bounded_per_authority(self):
        pool = _ConnectionPool(max_idle_per_authority=2)
        sockets = [_FakeSocket() for _ in range(4)]
        for fake in sockets:
            pool.checkin("a:1", fake)
        assert pool.idle_count("a:1") == 2
        assert [fake.closed for fake in sockets] == [False, False, True, True]

    def test_bound_is_per_authority(self):
        pool = _ConnectionPool(max_idle_per_authority=1)
        first, second = _FakeSocket(), _FakeSocket()
        pool.checkin("a:1", first)
        pool.checkin("b:2", second)
        assert pool.idle_count("a:1") == 1
        assert pool.idle_count("b:2") == 1
        assert not first.closed and not second.closed

    def test_stale_idle_socket_discarded_not_reused(self):
        now = [0.0]
        pool = _ConnectionPool(max_idle_s=10.0, clock=lambda: now[0])
        # A real listener so checkout can open a fresh connection after
        # rejecting the stale one.
        server = socket.create_server(("127.0.0.1", 0))
        try:
            authority = "127.0.0.1:%d" % server.getsockname()[1]
            stale = _FakeSocket()
            pool.checkin(authority, stale)
            now[0] = 11.0
            fresh = pool.checkout(authority)
            try:
                assert stale.closed  # not handed back
                assert isinstance(fresh, socket.socket)
            finally:
                fresh.close()
        finally:
            server.close()
            pool.close()

    def test_young_idle_socket_reused(self):
        now = [0.0]
        pool = _ConnectionPool(max_idle_s=10.0, clock=lambda: now[0])
        parked = _FakeSocket()
        pool.checkin("a:1", parked)
        now[0] = 9.0
        assert pool.checkout("a:1") is parked
        assert pool.idle_count("a:1") == 0

    def test_close_closes_idle_sockets(self):
        pool = _ConnectionPool()
        parked = _FakeSocket()
        pool.checkin("a:1", parked)
        pool.close()
        assert parked.closed
        with pytest.raises(ChannelClosedError):
            pool.checkout("a:1")


class TestUriParsing:
    def test_parse_ok(self):
        uri = parse_uri("tcp://10.0.0.1:4711/some/path")
        assert uri.scheme == "tcp"
        assert uri.authority == "10.0.0.1:4711"
        assert uri.path == "some/path"
        assert str(uri) == "tcp://10.0.0.1:4711/some/path"

    @pytest.mark.parametrize(
        "bad",
        ["", "no-scheme", "tcp://", "tcp:///path", "tcp://host", "://x/y"],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(AddressError):
            parse_uri(bad)

    def test_parse_host_port(self):
        assert parse_host_port("127.0.0.1:80") == ("127.0.0.1", 80)
        assert parse_host_port(":0") == ("127.0.0.1", 0)

    @pytest.mark.parametrize("bad", ["nohost", "h:not-a-port", "h:70000"])
    def test_parse_host_port_errors(self, bad):
        with pytest.raises(AddressError):
            parse_host_port(bad)


class TestChannelServices:
    def test_register_and_resolve(self):
        services = ChannelServices()
        channel = LoopbackChannel()
        services.register_channel(channel)
        assert services.channel_for("loopback") is channel
        resolved, parsed = services.channel_for_uri("loopback://x/y")
        assert resolved is channel
        assert parsed.path == "y"

    def test_unknown_scheme(self):
        with pytest.raises(ChannelError, match="scheme"):
            ChannelServices().channel_for("gopher")

    def test_duplicate_scheme_rejected(self):
        services = ChannelServices()
        services.register_channel(LoopbackChannel())
        with pytest.raises(ChannelError):
            services.register_channel(LoopbackChannel())

    def test_same_instance_idempotent(self):
        services = ChannelServices()
        channel = LoopbackChannel()
        services.register_channel(channel)
        services.register_channel(channel)

    def test_unregister(self):
        services = ChannelServices()
        services.register_channel(LoopbackChannel())
        services.unregister_channel("loopback")
        with pytest.raises(ChannelError):
            services.channel_for("loopback")


def echo_handler(path, body, headers):
    # `body` may be a memoryview into the server's reusable receive buffer
    # on the fast path — bytes-like, but must be copied to concatenate.
    prefix = headers.get("prefix", "")
    return f"{prefix}{path}:".encode() + bytes(body)


@pytest.fixture(params=["loopback", "tcp", "http", "aio"])
def channel_and_binding(request):
    if request.param == "loopback":
        channel = LoopbackChannel()
        binding = channel.listen("auto", echo_handler)
    elif request.param == "tcp":
        channel = TcpChannel()
        binding = channel.listen("127.0.0.1:0", echo_handler)
    elif request.param == "aio":
        from repro.aio import AioTcpChannel

        channel = AioTcpChannel()
        binding = channel.listen("127.0.0.1:0", echo_handler)
    else:
        channel = HttpChannel()
        binding = channel.listen("127.0.0.1:0", echo_handler)
    yield channel, binding
    binding.close()
    channel.close()


class TestChannelsCommonBehaviour:
    def test_echo(self, channel_and_binding):
        channel, binding = channel_and_binding
        result = channel.call(binding.authority, "obj/1", b"body")
        assert result == b"obj/1:body"

    def test_headers_delivered(self, channel_and_binding):
        channel, binding = channel_and_binding
        result = channel.call(
            binding.authority, "p", b"", headers={"prefix": ">>"}
        )
        assert result == b">>p:"

    def test_empty_body(self, channel_and_binding):
        channel, binding = channel_and_binding
        assert channel.call(binding.authority, "p", b"") == b"p:"

    def test_large_body(self, channel_and_binding):
        channel, binding = channel_and_binding
        body = bytes(range(256)) * 1024  # 256 KB
        result = channel.call(binding.authority, "big", body)
        assert result == b"big:" + body

    def test_sequential_reuse(self, channel_and_binding):
        channel, binding = channel_and_binding
        for index in range(20):
            assert channel.call(
                binding.authority, "n", str(index).encode()
            ) == f"n:{index}".encode()

    def test_handler_error_propagates(self, channel_and_binding):
        channel, binding = channel_and_binding

        def bad_handler(path, body, headers):
            raise ValueError("handler exploded")

        if channel.scheme == "loopback":
            inner = LoopbackChannel()
            bad = inner.listen("auto", bad_handler)
        else:
            inner = type(channel)()
            bad = inner.listen("127.0.0.1:0", bad_handler)
        try:
            with pytest.raises(ChannelError, match="handler exploded"):
                channel.call(bad.authority, "x", b"")
        finally:
            bad.close()
            if inner is not channel:
                inner.close()

    def test_concurrent_clients(self, channel_and_binding):
        channel, binding = channel_and_binding
        errors = []

        def worker(index):
            try:
                for round_no in range(5):
                    body = f"{index}-{round_no}".encode()
                    assert channel.call(binding.authority, "c", body) == b"c:" + body
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors


class TestLoopbackSpecifics:
    def test_unbound_authority(self):
        channel = LoopbackChannel()
        with pytest.raises(ChannelClosedError):
            channel.call("nobody-home", "p", b"")

    def test_duplicate_authority_rejected(self):
        channel = LoopbackChannel()
        binding = channel.listen("dup-test-x", echo_handler)
        try:
            with pytest.raises(AddressError):
                channel.listen("dup-test-x", echo_handler)
        finally:
            binding.close()

    def test_authority_reusable_after_close(self):
        channel = LoopbackChannel()
        binding = channel.listen("reuse-test-x", echo_handler)
        binding.close()
        binding2 = channel.listen("reuse-test-x", echo_handler)
        binding2.close()

    def test_body_is_copied(self):
        captured = {}

        def capture(path, body, headers):
            captured["body"] = body
            return b""

        channel = LoopbackChannel()
        binding = channel.listen("copy-test-x", capture)
        try:
            original = bytearray(b"abc")
            channel.call("copy-test-x", "p", bytes(original))
            assert captured["body"] == b"abc"
        finally:
            binding.close()


class TestTcpSpecifics:
    def test_connect_refused(self):
        channel = TcpChannel()
        with pytest.raises(ChannelError):
            channel.call("127.0.0.1:1", "p", b"")  # port 1: nothing listens

    def test_closed_channel_rejects_calls(self):
        channel = TcpChannel()
        binding = channel.listen("127.0.0.1:0", echo_handler)
        channel.close()
        try:
            with pytest.raises(ChannelClosedError):
                channel.call(binding.authority, "p", b"")
        finally:
            binding.close()

    def test_binding_reports_real_port(self):
        channel = TcpChannel()
        binding = channel.listen("127.0.0.1:0", echo_handler)
        try:
            host, port = parse_host_port(binding.authority)
            assert port > 0
        finally:
            binding.close()
            channel.close()


class TestHttpCodec:
    def test_request_shape(self):
        request = build_request("h:1", "obj/uri", {"k": "v"}, b"body")
        text = request.decode("iso-8859-1")
        assert text.startswith("POST /obj/uri HTTP/1.1\r\n")
        assert "Content-Length: 4" in text
        assert "x-parc-k: v" in text
        assert text.endswith("\r\n\r\nbody")

    def test_response_shape(self):
        response = build_response(200, "OK", b"abc")
        text = response.decode("iso-8859-1")
        assert text.startswith("HTTP/1.1 200 OK\r\n")
        assert text.endswith("\r\n\r\nabc")

    def test_read_http_message_roundtrip(self):
        left, right = socket.socketpair()
        try:
            left.sendall(build_response(500, "Oops", b"err"))
            start, headers, body = read_http_message(right)
            assert start == "HTTP/1.1 500 Oops"
            assert headers["content-length"] == "3"
            assert body == b"err"
        finally:
            left.close()
            right.close()

    def test_http_error_status_raises(self):
        channel = HttpChannel()

        def failing(path, body, headers):
            raise RuntimeError("boom")

        binding = channel.listen("127.0.0.1:0", failing)
        try:
            with pytest.raises(ChannelError, match="HTTP 500"):
                channel.call(binding.authority, "x", b"")
        finally:
            binding.close()
            channel.close()


class TestMeter:
    def test_counts_calls_and_bytes(self):
        inner = LoopbackChannel()
        metered = MeteredChannel(inner)
        binding = metered.listen("meter-test-x", echo_handler)
        try:
            metered.call("meter-test-x", "p", b"12345")
            metered.call("meter-test-x", "p", b"67")
            assert metered.meter.calls == 2
            assert metered.meter.request_bytes == 7
            assert metered.meter.response_bytes == len(b"p:12345") + len(b"p:67")
            assert metered.meter.total_bytes > 0
            metered.meter.reset()
            assert metered.meter.calls == 0
        finally:
            binding.close()

    def test_shared_meter(self):
        meter = ChannelMeter()
        first = MeteredChannel(LoopbackChannel(), meter)
        second = MeteredChannel(LoopbackChannel(), meter)
        binding = first.listen("meter-shared-x", echo_handler)
        try:
            first.call("meter-shared-x", "p", b"a")
            second.call("meter-shared-x", "p", b"b")
            assert meter.calls == 2
        finally:
            binding.close()
