"""Unit tests for serialization schema evolution (rolling upgrades).

The scenario: nodes of a cluster run different code versions during an
upgrade.  Old-format messages must decode into new classes (defaults fill
missing fields, upgrade hooks migrate renamed ones) and new-format
messages must not break old classes (unknown fields are dropped for
``__slots__`` classes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.errors import SerializationError
from repro.serialization import BinaryFormatter, SerializationRegistry, SoapFormatter


def make_pair():
    """Fresh registry + both formatters over it."""
    registry = SerializationRegistry()
    return registry, BinaryFormatter(registry), SoapFormatter(registry)


class TestMissingFieldDefaults:
    def test_dataclass_defaults_fill_missing(self):
        registry, binary, _soap = make_pair()

        @dataclass
        class ConfigV2:
            host: str = "localhost"
            port: int = 8080
            retries: int = 3  # new in v2

        registry.register(ConfigV2, "evo.Config")
        # Simulate a v1 message: encode with only the old fields.
        old_state_obj = ConfigV2.__new__(ConfigV2)
        old_state_obj.host = "remote"
        old_state_obj.port = 99
        # (no retries attribute: the v1 sender never had it)
        data = binary.dumps(old_state_obj)
        decoded = binary.loads(data)
        assert decoded.host == "remote"
        assert decoded.port == 99
        assert decoded.retries == 3  # filled from the default

    def test_default_factory_not_shared(self):
        registry, binary, _soap = make_pair()

        @dataclass
        class Bag:
            items: list = field(default_factory=list)

        registry.register(Bag, "evo.Bag")
        incomplete = Bag.__new__(Bag)  # no items attribute at all
        first = binary.loads(binary.dumps(incomplete))
        second = binary.loads(binary.dumps(incomplete))
        first.items.append(1)
        assert second.items == []  # each decode gets a fresh list

    def test_explicit_parc_field_defaults(self):
        registry, binary, _soap = make_pair()

        class Node:
            _parc_field_defaults = {"weight": 1.0, "tags": list}

            def __init__(self, name):
                self.name = name
                self.weight = 2.0
                self.tags = ["x"]

        registry.register(Node, "evo.Node")
        sparse = Node.__new__(Node)
        sparse.name = "n1"
        decoded = binary.loads(binary.dumps(sparse))
        assert decoded.name == "n1"
        assert decoded.weight == 1.0
        assert decoded.tags == []

    def test_wire_values_beat_defaults(self):
        registry, binary, _soap = make_pair()

        @dataclass
        class Point:
            x: int = 0
            y: int = 0

        registry.register(Point, "evo.Point")
        decoded = binary.loads(binary.dumps(Point(5, 7)))
        assert (decoded.x, decoded.y) == (5, 7)


class TestUpgradeHook:
    def test_field_rename_migration(self):
        registry, binary, soap = make_pair()

        class UserV2:
            def __init__(self, full_name=""):
                self.full_name = full_name

            @classmethod
            def __parc_upgrade__(cls, state):
                if "name" in state and "full_name" not in state:
                    state["full_name"] = state.pop("name")
                return state

        registry.register(UserV2, "evo.User")
        # A v1 peer sent {"name": ...}.
        v1 = UserV2.__new__(UserV2)
        v1.name = "ada"
        for formatter in (binary, soap):
            decoded = formatter.loads(formatter.dumps(v1))
            assert decoded.full_name == "ada"
            assert not hasattr(decoded, "name")

    def test_upgrade_must_return_dict(self):
        registry, binary, _soap = make_pair()

        class Broken:
            @classmethod
            def __parc_upgrade__(cls, state):
                return ["nope"]

        registry.register(Broken, "evo.Broken")
        instance = Broken()
        instance.x = 1
        with pytest.raises(SerializationError, match="__parc_upgrade__"):
            binary.loads(binary.dumps(instance))

    def test_upgrade_can_recompute(self):
        registry, binary, _soap = make_pair()

        class Temperature:
            @classmethod
            def __parc_upgrade__(cls, state):
                if "fahrenheit" in state:
                    state["celsius"] = (state.pop("fahrenheit") - 32) * 5 / 9
                return state

        registry.register(Temperature, "evo.Temp")
        old = Temperature()
        old.fahrenheit = 212.0
        decoded = binary.loads(binary.dumps(old))
        assert decoded.celsius == pytest.approx(100.0)


class TestForwardCompatibility:
    def test_slots_class_drops_unknown_fields(self):
        registry, binary, _soap = make_pair()

        class SlimV1:
            __slots__ = ("kept",)

        registry.register(SlimV1, "evo.Slim")
        # A newer peer encodes an extra field the old class cannot hold.
        # Craft the state through a stand-in with the same wire name.
        sender_registry = SerializationRegistry()

        class SlimV2:
            pass

        sender_registry.register(SlimV2, "evo.Slim")
        sender = BinaryFormatter(sender_registry)
        newer = SlimV2()
        newer.kept = "yes"
        newer.added_in_v2 = "surprise"
        decoded = binary.loads(sender.dumps(newer))
        assert isinstance(decoded, SlimV1)
        assert decoded.kept == "yes"
        assert not hasattr(decoded, "added_in_v2")

    def test_dict_class_keeps_unknown_fields(self):
        registry, binary, _soap = make_pair()

        class Roomy:
            pass

        registry.register(Roomy, "evo.Roomy")
        sender_registry = SerializationRegistry()

        class RoomyV2:
            pass

        sender_registry.register(RoomyV2, "evo.Roomy")
        sender = BinaryFormatter(sender_registry)
        newer = RoomyV2()
        newer.extra = 42
        decoded = binary.loads(sender.dumps(newer))
        assert decoded.extra == 42  # round-trippable forward data
