"""Unit tests for grain policies, the adaptive controller, and placement."""

from __future__ import annotations

import pytest

from repro.core.grain import AdaptiveGrainController, GrainDecision, GrainPolicy
from repro.cluster.placement import (
    LeastLoadedPlacement,
    RandomPlacement,
    RoundRobinPlacement,
    make_placement,
)
from repro.errors import GrainError, PlacementError


class TestGrainPolicy:
    def test_static_decision(self):
        policy = GrainPolicy(agglomerate=False, max_calls=8)
        decision = policy.decide("any.Class")
        assert decision == GrainDecision(agglomerate=False, max_calls=8)

    def test_validation(self):
        with pytest.raises(GrainError):
            GrainPolicy(max_calls=0)
        with pytest.raises(GrainError):
            GrainDecision(agglomerate=False, max_calls=0)

    def test_defaults_no_adaptation(self):
        decision = GrainPolicy().decide("x")
        assert not decision.agglomerate
        assert decision.max_calls == 1


class TestAdaptiveController:
    def make(self, **kwargs):
        defaults = dict(
            overhead_s=1e-3,
            pack_factor=4.0,
            agglomerate_factor=0.25,
            max_calls_cap=64,
            min_samples=4,
            bootstrap_max_calls=2,
        )
        defaults.update(kwargs)
        return AdaptiveGrainController(**defaults)

    def test_bootstrap_before_samples(self):
        controller = self.make()
        decision = controller.decide("cls")
        assert not decision.agglomerate
        assert decision.max_calls == 2

    def test_cheap_methods_get_packed(self):
        controller = self.make()
        for _ in range(10):
            controller.observe_execution("cls", 100e-6)  # 0.1ms << 1ms
        decision = controller.decide("cls")
        assert decision.max_calls == 40  # ceil(4 * 1ms / 0.1ms)

    def test_expensive_methods_not_packed(self):
        controller = self.make()
        for _ in range(10):
            controller.observe_execution("cls", 50e-3)
        decision = controller.decide("cls")
        assert decision.max_calls == 1
        assert not decision.agglomerate

    def test_tiny_methods_agglomerated(self):
        controller = self.make()
        for _ in range(10):
            controller.observe_execution("cls", 1e-6)
        decision = controller.decide("cls")
        assert decision.agglomerate  # 64 * 1us << 0.25 * 1ms

    def test_max_calls_capped(self):
        controller = self.make(max_calls_cap=16, agglomerate_factor=0.0001)
        for _ in range(10):
            controller.observe_execution("cls", 1e-6)
        assert controller.decide("cls").max_calls == 16

    def test_classes_tracked_independently(self):
        controller = self.make()
        for _ in range(10):
            controller.observe_execution("fast", 1e-6)
            controller.observe_execution("slow", 1.0)
        assert controller.decide("fast").agglomerate
        assert not controller.decide("slow").agglomerate

    def test_ewma_adapts_to_change(self):
        controller = self.make(ewma_alpha=0.5)
        for _ in range(10):
            controller.observe_execution("cls", 1e-6)
        for _ in range(20):
            controller.observe_execution("cls", 0.1)
        avg, _samples = controller.stats_for("cls")
        assert avg > 0.05  # forgot the old cheap samples

    def test_merge_remote_stats(self):
        controller = self.make()
        controller.merge_remote_stats("cls", avg_exec_s=2e-3, samples=10)
        avg, samples = controller.stats_for("cls")
        assert avg == pytest.approx(2e-3)
        assert samples == 10
        # Weighted merge with local observations.
        controller.merge_remote_stats("cls", avg_exec_s=4e-3, samples=10)
        avg, samples = controller.stats_for("cls")
        assert avg == pytest.approx(3e-3)
        assert samples == 20

    def test_merge_zero_samples_ignored(self):
        controller = self.make()
        controller.merge_remote_stats("cls", avg_exec_s=1.0, samples=0)
        assert controller.stats_for("cls") == (0.0, 0)

    def test_negative_time_rejected(self):
        with pytest.raises(GrainError):
            self.make().observe_execution("cls", -1.0)

    def test_validation(self):
        with pytest.raises(GrainError):
            AdaptiveGrainController(overhead_s=0)
        with pytest.raises(GrainError):
            AdaptiveGrainController(max_calls_cap=0)


def view_of(loads):
    """Shorthand: lift a plain loads vector into a ClusterView."""
    from repro.sched import ClusterView

    return ClusterView.from_loads(loads)


class TestPlacement:
    def test_round_robin_cycles(self):
        policy = RoundRobinPlacement()
        view = view_of([0.0, 0.0, 0.0])
        chosen = [policy.choose(view, 0) for _ in range(7)]
        assert chosen == [0, 1, 2, 0, 1, 2, 0]

    def test_round_robin_survives_resize(self):
        policy = RoundRobinPlacement()
        policy.choose(view_of([0.0] * 5), 0)
        assert policy.choose(view_of([0.0, 0.0]), 0) in (0, 1)

    def test_least_loaded_picks_minimum(self):
        policy = LeastLoadedPlacement()
        assert policy.choose(view_of([3.0, 1.0, 2.0]), 0) == 1

    def test_least_loaded_tie_lowest_index(self):
        policy = LeastLoadedPlacement()
        assert policy.choose(view_of([1.0, 1.0, 2.0]), 0) == 0

    def test_least_loaded_avoids_dead_nodes(self):
        policy = LeastLoadedPlacement()
        assert policy.choose(view_of([float("inf"), 5.0]), 0) == 1

    def test_random_seeded_reproducible(self):
        first = RandomPlacement(seed=42)
        second = RandomPlacement(seed=42)
        view = view_of([0.0] * 4)
        assert [first.choose(view, 0) for _ in range(10)] == [
            second.choose(view, 0) for _ in range(10)
        ]

    def test_random_in_range(self):
        policy = RandomPlacement(seed=1)
        view = view_of([0.0] * 3)
        for _ in range(50):
            assert 0 <= policy.choose(view, 0) < 3

    def test_empty_loads_rejected(self):
        for policy in (
            RoundRobinPlacement(),
            LeastLoadedPlacement(),
            RandomPlacement(),
        ):
            with pytest.raises(PlacementError):
                policy.choose(view_of([]), 0)

    def test_bare_loads_still_work_with_warning(self):
        policy = LeastLoadedPlacement()
        with pytest.warns(DeprecationWarning, match="bare loads"):
            assert policy.choose([3.0, 1.0, 2.0], 0) == 1

    def test_factory(self):
        assert isinstance(make_placement("round_robin"), RoundRobinPlacement)
        assert isinstance(make_placement("least_loaded"), LeastLoadedPlacement)
        assert isinstance(make_placement("random", seed=3), RandomPlacement)
        with pytest.raises(PlacementError, match="unknown"):
            make_placement("fifo")
