"""Unit tests for the extension surface: CAO, PO delegates, extra MPI
collectives, absolute/derived ByteBuffer ops, and the CLIs."""

from __future__ import annotations

import subprocess
import sys

import pytest

import repro.core as parc
from repro.channels import LoopbackChannel
from repro.channels.services import ChannelServices
from repro.errors import (
    BufferStateError,
    MpiError,
    RemoteInvocationError,
    RemotingError,
    ScooppError,
)
from repro.mpi import SUM, run_mpi
from repro.nio import ByteBuffer
from repro.remoting import MarshalByRefObject, RemotingHost


class Session(MarshalByRefObject):
    """Client-activated stateful object."""

    def __init__(self, user, start=0):
        self.user = user
        self.counter = start

    def bump(self):
        self.counter += 1
        return self.counter

    def whoami(self):
        return self.user


@pytest.fixture
def cao_pair():
    server_services = ChannelServices()
    server = RemotingHost(name="cao-server", services=server_services)
    binding = server.listen(LoopbackChannel(), "auto")
    type_name = server.register_activated(Session)
    client_services = ChannelServices()
    client_services.register_channel(LoopbackChannel())
    client = RemotingHost(name="cao-client", services=client_services)
    base_uri = f"loopback://{binding.authority}"
    yield server, client, base_uri, type_name
    client.close()
    server.close()


class TestClientActivatedObjects:
    def test_each_activation_is_private(self, cao_pair):
        _server, client, base, type_name = cao_pair
        alice = client.create_instance(base, type_name, "alice")
        bob = client.create_instance(base, type_name, "bob", start=100)
        assert alice.whoami() == "alice"
        assert bob.whoami() == "bob"
        assert alice.bump() == 1
        assert bob.bump() == 101
        assert alice.bump() == 2  # state is per activation

    def test_kwargs_reach_constructor(self, cao_pair):
        _server, client, base, type_name = cao_pair
        session = client.create_instance(base, type_name, "kw", start=7)
        assert session.bump() == 8

    def test_unregistered_type_rejected(self, cao_pair):
        _server, client, base, _type_name = cao_pair
        with pytest.raises(RemoteInvocationError, match="not registered"):
            client.create_instance(base, "ghost.Type")

    def test_constructor_failure_reported(self, cao_pair):
        server, client, base, _ = cao_pair

        class Fussy(MarshalByRefObject):
            def __init__(self):
                raise ValueError("no thanks")

            def x(self):
                return 1

        name = server.register_activated(Fussy, "test.Fussy")
        with pytest.raises(RemoteInvocationError, match="activation"):
            client.create_instance(base, name)

    def test_non_mbr_rejected(self, cao_pair):
        server, _client, _base, _name = cao_pair

        class Plain:
            pass

        with pytest.raises(RemotingError):
            server.register_activated(Plain)

    def test_type_name_collision_rejected(self, cao_pair):
        server, _client, _base, _name = cao_pair

        class Other(MarshalByRefObject):
            pass

        with pytest.raises(RemotingError, match="already registered"):
            server.register_activated(Other, type_name=f"{Session.__module__}.{Session.__qualname__}")

    def test_reregistering_same_class_ok(self, cao_pair):
        server, _client, _base, name = cao_pair
        assert server.register_activated(Session) == name


@parc.parallel(
    name="ext.Summer", async_methods=["add"], sync_methods=["total"]
)
class Summer:
    def __init__(self):
        self.value = 0

    def add(self, x):
        self.value += x

    def total(self):
        return self.value


class TestPoDelegates:
    def test_background_sync_call(self, plain_runtime):
        summer = parc.new(Summer)
        for value in (1, 2, 3):
            summer.add(value)
        delegate = summer.parc_delegate("total")
        handle = delegate.begin_invoke()
        assert delegate.end_invoke(handle) == 6
        summer.parc_release()

    def test_unknown_method_rejected(self, plain_runtime):
        summer = parc.new(Summer)
        with pytest.raises(ScooppError, match="no parallel method"):
            summer.parc_delegate("missing")
        summer.parc_release()

    def test_multiple_outstanding_delegates(self, plain_runtime):
        summer = parc.new(Summer)
        summer.add(5)
        delegate = summer.parc_delegate("total")
        handles = [delegate.begin_invoke() for _ in range(4)]
        assert [delegate.end_invoke(h) for h in handles] == [5, 5, 5, 5]
        summer.parc_release()


class TestExtraCollectives:
    @pytest.mark.parametrize("size", [1, 2, 3, 5])
    def test_allgather(self, size):
        results = run_mpi(size, lambda comm: comm.allgather(comm.rank * 2))
        expected = [rank * 2 for rank in range(size)]
        assert results == [expected] * size

    @pytest.mark.parametrize("size", [1, 2, 4])
    def test_alltoall(self, size):
        def main(comm):
            outgoing = [f"{comm.rank}->{dest}" for dest in range(comm.size)]
            return comm.alltoall(outgoing)

        results = run_mpi(size, main)
        for rank, received in enumerate(results):
            assert received == [f"{src}->{rank}" for src in range(size)]

    def test_alltoall_wrong_length(self):
        def main(comm):
            try:
                comm.alltoall([1])
            except MpiError:
                return "caught"

        assert run_mpi(2, main) == ["caught", "caught"]

    @pytest.mark.parametrize("size", [1, 2, 3, 6])
    def test_scan_prefix_sums(self, size):
        results = run_mpi(size, lambda comm: comm.scan(comm.rank + 1, SUM))
        assert results == [
            sum(range(1, rank + 2)) for rank in range(size)
        ]

    def test_sendrecv_ring_exchange(self):
        def main(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            payload, status = comm.sendrecv(
                bytes([comm.rank]), dest=right, source=left, send_tag=5
            )
            return (payload[0], status.source)

        results = run_mpi(4, main)
        assert results == [(3, 3), (0, 0), (1, 1), (2, 2)]


class TestBufferExtensions:
    def test_absolute_get_put(self):
        buffer = ByteBuffer.allocate(8)
        buffer.put(b"abcdefgh")
        assert buffer.get_at(2, 3) == b"cde"
        buffer.put_at(0, b"XY")
        assert buffer.get_at(0, 2) == b"XY"
        assert buffer.position == 8  # absolute ops leave position alone

    def test_absolute_bounds(self):
        buffer = ByteBuffer.wrap(b"abc")
        with pytest.raises(BufferStateError):
            buffer.get_at(2, 5)
        with pytest.raises(BufferStateError):
            buffer.put_at(-1, b"x")

    def test_slice_covers_remaining(self):
        buffer = ByteBuffer.wrap(b"abcdef")
        buffer.get(2)
        view = buffer.slice()
        assert view.capacity == 4
        assert view.get(4) == b"cdef"

    def test_duplicate_preserves_state(self):
        buffer = ByteBuffer.allocate(8)
        buffer.put(b"xyz")
        copy = buffer.duplicate()
        assert copy.position == 3
        assert copy.capacity == 8
        copy.flip()
        assert copy.get(3) == b"xyz"
        assert buffer.position == 3  # original untouched


class TestCommandLineTools:
    def test_report_cli(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.benchlib.report", "latency"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert "520" in result.stdout

    def test_report_cli_unknown(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.benchlib.report", "fig99"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 2

    def test_preprocess_cli(self, tmp_path):
        source = tmp_path / "app.py"
        source.write_text(
            "from repro.core import parallel\n\n"
            "@parallel\nclass W:\n    def go(self):\n        pass\n",
            encoding="utf-8",
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.core.preprocess", str(source)],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0
        assert (tmp_path / "app_parc.py").exists()

    def test_preprocess_cli_usage(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.core.preprocess"],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 2
        assert "usage" in result.stderr
