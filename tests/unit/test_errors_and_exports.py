"""Contract tests: the exception hierarchy and public package exports."""

from __future__ import annotations

import importlib

import pytest

from repro import errors


class TestExceptionHierarchy:
    def test_everything_derives_from_parc_error(self):
        exception_types = [
            obj
            for obj in vars(errors).values()
            if isinstance(obj, type) and issubclass(obj, BaseException)
        ]
        assert len(exception_types) > 20
        for exception_type in exception_types:
            assert issubclass(exception_type, errors.ParcError), exception_type

    @pytest.mark.parametrize(
        "child,parent",
        [
            (errors.UnknownTypeError, errors.SerializationError),
            (errors.WireFormatError, errors.SerializationError),
            (errors.ChannelClosedError, errors.ChannelError),
            (errors.AddressError, errors.ChannelError),
            (errors.UnknownObjectError, errors.RemotingError),
            (errors.ActivationError, errors.RemotingError),
            (errors.RemoteInvocationError, errors.RemotingError),
            (errors.NotBoundError, errors.RemoteException),
            (errors.AlreadyBoundError, errors.RemoteException),
            (errors.ExportError, errors.RemoteException),
            (errors.RankError, errors.MpiError),
            (errors.TruncationError, errors.MpiError),
            (errors.PackError, errors.MpiError),
            (errors.BufferStateError, errors.NioError),
            (errors.NotRunningError, errors.ScooppError),
            (errors.PlacementError, errors.ScooppError),
            (errors.PreprocessError, errors.ScooppError),
            (errors.GrainError, errors.ScooppError),
        ],
    )
    def test_branch_structure(self, child, parent):
        assert issubclass(child, parent)

    def test_checked_and_unchecked_families_disjoint(self):
        # RMI's checked RemoteException must NOT be a RemotingError:
        # catching one family can never swallow the other.
        assert not issubclass(errors.RemoteException, errors.RemotingError)
        assert not issubclass(errors.RemotingError, errors.RemoteException)

    def test_remote_invocation_error_carries_traceback(self):
        error = errors.RemoteInvocationError("failed", remote_traceback="tb")
        assert error.remote_traceback == "tb"

    def test_remote_exception_carries_cause(self):
        cause = ValueError("root")
        error = errors.RemoteException("wrapped", cause=cause)
        assert error.cause is cause


class TestPublicExports:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.core",
            "repro.cluster",
            "repro.remoting",
            "repro.rmi",
            "repro.mpi",
            "repro.nio",
            "repro.channels",
            "repro.serialization",
            "repro.perfmodel",
            "repro.benchlib",
            "repro.telemetry",
            "repro.apps.raytracer",
            "repro.apps.primes",
            "repro.apps.jgf",
        ],
    )
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_core_facade_has_model_entry_points(self):
        import repro.core as parc

        for name in ("parallel", "init", "shutdown", "new", "Farm",
                     "Pipeline", "bind", "lookup"):
            assert callable(getattr(parc, name)), name
