"""Shared fixtures for the PyParC test suite."""

from __future__ import annotations

import os
import signal

import pytest

import repro.core as parc
from repro.core import AdaptiveGrainController, GrainPolicy

#: Optional per-test watchdog (seconds), enabled by PARC_TEST_TIMEOUT.
#: The chaos CI job uses it so a hung fault-injection test fails loudly
#: instead of stalling the runner (no pytest-timeout dependency needed).
_TEST_TIMEOUT_S = float(os.environ.get("PARC_TEST_TIMEOUT", "0") or 0)


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    if _TEST_TIMEOUT_S <= 0 or not hasattr(signal, "SIGALRM"):
        return (yield)

    def _on_alarm(signum, frame):  # noqa: ARG001 - signal signature
        raise TimeoutError(
            f"{item.nodeid} exceeded PARC_TEST_TIMEOUT={_TEST_TIMEOUT_S}s"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, _TEST_TIMEOUT_S)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def runtime():
    """A 3-node loopback runtime with light aggregation; always torn down."""
    rt = parc.init(nodes=3, grain=GrainPolicy(max_calls=4))
    try:
        yield rt
    finally:
        parc.shutdown()


@pytest.fixture
def plain_runtime():
    """A 2-node runtime with no aggregation (max_calls=1)."""
    rt = parc.init(nodes=2, grain=GrainPolicy(max_calls=1))
    try:
        yield rt
    finally:
        parc.shutdown()


@pytest.fixture
def adaptive_runtime():
    """A 3-node runtime driven by the adaptive grain controller."""
    controller = AdaptiveGrainController(
        overhead_s=500e-6, min_samples=4, max_calls_cap=32
    )
    rt = parc.init(nodes=3, grain=controller)
    try:
        yield rt, controller
    finally:
        parc.shutdown()


@pytest.fixture(autouse=True)
def _no_leaked_runtime():
    """Guarantee no test leaves a global runtime behind."""
    yield
    try:
        parc.current_runtime()
    except Exception:
        return
    parc.shutdown()
    pytest.fail("test leaked a live ParC runtime; use the fixtures")
