"""Shared fixtures for the PyParC test suite."""

from __future__ import annotations

import pytest

import repro.core as parc
from repro.core import AdaptiveGrainController, GrainPolicy


@pytest.fixture
def runtime():
    """A 3-node loopback runtime with light aggregation; always torn down."""
    rt = parc.init(nodes=3, grain=GrainPolicy(max_calls=4))
    try:
        yield rt
    finally:
        parc.shutdown()


@pytest.fixture
def plain_runtime():
    """A 2-node runtime with no aggregation (max_calls=1)."""
    rt = parc.init(nodes=2, grain=GrainPolicy(max_calls=1))
    try:
        yield rt
    finally:
        parc.shutdown()


@pytest.fixture
def adaptive_runtime():
    """A 3-node runtime driven by the adaptive grain controller."""
    controller = AdaptiveGrainController(
        overhead_s=500e-6, min_samples=4, max_calls_cap=32
    )
    rt = parc.init(nodes=3, grain=controller)
    try:
        yield rt, controller
    finally:
        parc.shutdown()


@pytest.fixture(autouse=True)
def _no_leaked_runtime():
    """Guarantee no test leaves a global runtime behind."""
    yield
    try:
        parc.current_runtime()
    except Exception:
        return
    parc.shutdown()
    pytest.fail("test leaked a live ParC runtime; use the fixtures")
