"""Integration tests for the evaluation applications (§4 workloads).

The key invariant: every parallel implementation must produce *exactly*
the sequential result (JGF validates its ray tracer the same way).
"""

from __future__ import annotations

import pytest

import repro.core as parc
from repro.apps.primes import (
    PrimeServer,
    farm_count_primes,
    is_prime,
    pipeline_primes,
    sieve,
)
from repro.apps.raytracer import (
    RenderWorker,
    checksum,
    create_scene,
    farm_render,
    render,
    render_line,
    render_lines,
    rmi_farm_render,
)
from repro.apps.raytracer.parallel import make_chunks
from repro.core import GrainPolicy

WIDTH = HEIGHT = 20
GRID = 2


@pytest.fixture(scope="module")
def reference_image():
    scene = create_scene(GRID)
    image = render(scene, WIDTH, HEIGHT)
    return image, checksum(image)


class TestSequentialTracer:
    def test_image_dimensions(self, reference_image):
        image, _checksum = reference_image
        assert len(image) == HEIGHT
        assert all(len(line) == WIDTH for line in image)

    def test_pixels_are_packed_rgb(self, reference_image):
        image, _checksum = reference_image
        for line in image:
            for pixel in line:
                assert 0 <= pixel <= 0xFFFFFF

    def test_deterministic(self, reference_image):
        _image, reference = reference_image
        again = checksum(render(create_scene(GRID), WIDTH, HEIGHT))
        assert again == reference

    def test_scene_not_all_background(self, reference_image):
        image, _checksum = reference_image
        distinct = {pixel for line in image for pixel in line}
        assert len(distinct) > 10  # spheres, highlights, shadows visible

    def test_render_line_bounds(self):
        scene = create_scene(1)
        with pytest.raises(ValueError):
            render_line(scene, HEIGHT, WIDTH, HEIGHT)

    def test_render_lines_chunk(self):
        scene = create_scene(1)
        chunk = render_lines(scene, [0, 2], 8, 8)
        assert [y for y, _line in chunk] == [0, 2]

    def test_make_chunks_partition(self):
        chunks = make_chunks(10, 3)
        flattened = [y for chunk in chunks for y in chunk]
        assert flattened == list(range(10))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]

    def test_make_chunks_validation(self):
        with pytest.raises(ValueError):
            make_chunks(10, 0)

    def test_scene_grid_sizes(self):
        assert len(create_scene(1).spheres) == 1
        assert len(create_scene(2).spheres) == 8
        assert len(create_scene(4).spheres) == 64
        with pytest.raises(ValueError):
            create_scene(0)


class TestParcFarm:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_checksum_matches_sequential(self, reference_image, workers):
        _image, reference = reference_image
        parc.init(nodes=3, grain=GrainPolicy(max_calls=2))
        try:
            image = farm_render(workers, WIDTH, HEIGHT, grid=GRID, lines_per_chunk=3)
            assert checksum(image) == reference
        finally:
            parc.shutdown()

    def test_aggregated_farm_matches(self, reference_image):
        _image, reference = reference_image
        parc.init(nodes=2, grain=GrainPolicy(max_calls=16))
        try:
            image = farm_render(2, WIDTH, HEIGHT, grid=GRID, lines_per_chunk=2)
            assert checksum(image) == reference
        finally:
            parc.shutdown()

    def test_agglomerated_farm_matches(self, reference_image):
        _image, reference = reference_image
        parc.init(nodes=2, grain=GrainPolicy(agglomerate=True))
        try:
            image = farm_render(2, WIDTH, HEIGHT, grid=GRID)
            assert checksum(image) == reference
        finally:
            parc.shutdown()

    def test_worker_validation(self, plain_runtime):
        with pytest.raises(ValueError):
            farm_render(0, WIDTH, HEIGHT)

    def test_render_worker_is_parallel_class(self):
        info = parc.parallel_class_table.by_class(RenderWorker)
        assert info.async_methods == ["render_chunk"]
        assert info.sync_methods == ["collect"]


class TestRmiFarm:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_checksum_matches_sequential(self, reference_image, workers):
        _image, reference = reference_image
        image = rmi_farm_render(workers, WIDTH, HEIGHT, grid=GRID, lines_per_chunk=4)
        assert checksum(image) == reference

    def test_worker_validation(self):
        with pytest.raises(ValueError):
            rmi_farm_render(0, WIDTH, HEIGHT)


class TestMpiFarm:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_checksum_matches_sequential(self, reference_image, workers):
        from repro.apps.raytracer import mpi_farm_render

        _image, reference = reference_image
        image = mpi_farm_render(workers, WIDTH, HEIGHT, grid=GRID)
        assert checksum(image) == reference

    def test_worker_validation(self):
        from repro.apps.raytracer import mpi_farm_render

        with pytest.raises(ValueError):
            mpi_farm_render(0, WIDTH, HEIGHT)

    def test_all_three_models_agree(self, reference_image):
        """The paper's §2 comparison: three models, one result."""
        from repro.apps.raytracer import mpi_farm_render

        _image, reference = reference_image
        parc.init(nodes=2, grain=GrainPolicy(max_calls=2))
        try:
            parc_image = farm_render(2, WIDTH, HEIGHT, grid=GRID)
        finally:
            parc.shutdown()
        rmi_image = rmi_farm_render(2, WIDTH, HEIGHT, grid=GRID)
        mpi_image = mpi_farm_render(2, WIDTH, HEIGHT, grid=GRID)
        assert (
            checksum(parc_image)
            == checksum(rmi_image)
            == checksum(mpi_image)
            == reference
        )


class TestPrimes:
    def test_sieve_known_values(self):
        assert sieve(1) == []
        assert sieve(2) == [2]
        assert sieve(30) == [2, 3, 5, 7, 11, 13, 17, 19, 23, 29]
        assert len(sieve(1000)) == 168

    def test_is_prime_agrees_with_sieve(self):
        primes = set(sieve(500))
        for candidate in range(501):
            assert is_prime(candidate) == (candidate in primes)

    @pytest.mark.parametrize("workers,batch", [(1, 8), (3, 16), (4, 7)])
    def test_farm_count(self, runtime, workers, batch):
        assert farm_count_primes(300, workers=workers, batch=batch) == len(
            sieve(299)
        )

    def test_prime_server_class_metadata(self):
        info = parc.parallel_class_table.by_class(PrimeServer)
        assert info.async_methods == ["process"]
        assert set(info.sync_methods) == {"count", "found"}

    def test_farm_found_lists(self, runtime):
        server = parc.new(PrimeServer)
        server.process([2, 3, 4, 5, 6, 7, 8, 9, 10])
        assert server.found() == [2, 3, 5, 7]
        server.parc_release()

    @pytest.mark.parametrize("limit", [1, 2, 3, 50, 100])
    def test_pipeline_matches_sieve(self, runtime, limit):
        assert pipeline_primes(limit) == sieve(limit)

    def test_pipeline_with_aggregation(self):
        parc.init(nodes=2, grain=GrainPolicy(max_calls=8))
        try:
            assert pipeline_primes(80) == sieve(80)
        finally:
            parc.shutdown()

    def test_pipeline_agglomerated(self):
        parc.init(nodes=2, grain=GrainPolicy(agglomerate=True))
        try:
            assert pipeline_primes(80) == sieve(80)
        finally:
            parc.shutdown()
