"""Tests for the JGF MonteCarlo application."""

from __future__ import annotations

import math
import statistics

import pytest

from repro.apps.jgf import (
    calibrate,
    historical_series,
    monte_carlo,
    parallel_monte_carlo,
    simulate_path,
)
from repro.errors import ScooppError


class TestCalibration:
    def test_historical_series_deterministic(self):
        assert historical_series(seed=7) == historical_series(seed=7)
        assert historical_series(seed=7) != historical_series(seed=8)

    def test_series_positive(self):
        assert all(price > 0 for price in historical_series())

    def test_calibrate_recovers_parameters_roughly(self):
        # A long synthetic series' calibration should land near the
        # generating parameters (0.0005 drift, 0.012 vol).
        prices = historical_series(days=20_000, seed=3)
        drift, volatility = calibrate(prices)
        assert drift == pytest.approx(0.0005, abs=3e-4)
        assert volatility == pytest.approx(0.012, rel=0.1)

    def test_calibrate_validation(self):
        with pytest.raises(ValueError):
            calibrate([100.0])


class TestSequentialSimulation:
    def test_paths_reproducible_by_index(self):
        first = simulate_path(5, 100, 100.0, 0.0005, 0.012, base_seed=1)
        second = simulate_path(5, 100, 100.0, 0.0005, 0.012, base_seed=1)
        assert first == second

    def test_different_paths_differ(self):
        a = simulate_path(1, 100, 100.0, 0.0005, 0.012)
        b = simulate_path(2, 100, 100.0, 0.0005, 0.012)
        assert a != b

    def test_returns_bounded_below(self):
        # A return can never be below -100%.
        _mean, returns = monte_carlo(100, steps=50)
        assert all(value > -1.0 for value in returns)

    def test_expected_return_sane(self):
        mean, returns = monte_carlo(400, steps=250)
        assert len(returns) == 400
        # Drift 0.05%/day over 250 days ≈ +13%; wide tolerance for MC noise.
        assert -0.3 < mean < 0.8
        assert statistics.pstdev(returns) > 0.05  # real dispersion

    def test_validation(self):
        with pytest.raises(ValueError):
            monte_carlo(0)


class TestParallelMonteCarlo:
    @pytest.mark.parametrize("workers", [1, 2, 3, 5])
    def test_bit_identical_to_sequential(self, runtime, workers):
        expected_mean, expected_returns = monte_carlo(60, steps=40)
        mean, returns = parallel_monte_carlo(60, steps=40, workers=workers)
        assert returns == expected_returns  # exact, not approximate
        assert mean == expected_mean

    def test_partitioning_never_changes_results(self, runtime):
        baseline = parallel_monte_carlo(30, steps=20, workers=1)
        for workers in (2, 4, 7):
            assert parallel_monte_carlo(30, steps=20, workers=workers) == baseline

    def test_worker_validation(self, runtime):
        with pytest.raises(ScooppError):
            parallel_monte_carlo(10, workers=0)

    def test_independent_of_node_count(self):
        import repro.core as parc

        results = []
        for nodes in (1, 3):
            parc.init(nodes=nodes)
            try:
                results.append(parallel_monte_carlo(25, steps=15, workers=3))
            finally:
                parc.shutdown()
        assert results[0] == results[1]
