"""Integration tests: worker nodes as separate OS processes over TCP.

These exercise the full distribution story — spawn, boot-code module
imports, cross-process placement, real-socket serialization, nested
creation inside a worker process, and clean shutdown.
"""

from __future__ import annotations

import pytest

import repro.core as parc
from repro.apps.primes import PrimeServer, sieve
from repro.cluster.proc import grain_from_spec, grain_to_spec
from repro.core import AdaptiveGrainController, GrainPolicy
from repro.errors import ScooppError


WORKER_MODULES = ("repro.apps.primes",)


@pytest.fixture
def process_runtime():
    rt = parc.init(
        nodes=1,
        channel="tcp",
        grain=GrainPolicy(max_calls=4),
        worker_processes=2,
        worker_modules=WORKER_MODULES,
    )
    try:
        yield rt
    finally:
        parc.shutdown()


class TestGrainSpecs:
    def test_static_roundtrip(self):
        policy = GrainPolicy(agglomerate=True, max_calls=7)
        rebuilt = grain_from_spec(grain_to_spec(policy))
        assert rebuilt == policy

    def test_adaptive_roundtrip(self):
        controller = AdaptiveGrainController(
            overhead_s=2e-3, pack_factor=3.0, max_calls_cap=99
        )
        rebuilt = grain_from_spec(grain_to_spec(controller))
        assert isinstance(rebuilt, AdaptiveGrainController)
        assert rebuilt.overhead_s == 2e-3
        assert rebuilt.max_calls_cap == 99

    def test_unknown_spec_rejected(self):
        with pytest.raises(ScooppError):
            grain_from_spec(("mystery", {}))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ScooppError):
            grain_to_spec(object())  # type: ignore[arg-type]


class TestClusterValidation:
    def test_process_workers_need_tcp(self):
        with pytest.raises(ScooppError, match="TCP"):
            parc.init(nodes=1, channel="loopback", worker_processes=1)

    def test_negative_workers_rejected(self):
        with pytest.raises(ScooppError):
            parc.init(nodes=1, channel="tcp", worker_processes=-1)


class TestProcessCluster:
    def test_objects_placed_across_processes(self, process_runtime):
        servers = [parc.new(PrimeServer) for _ in range(3)]
        stats = process_runtime.stats()
        assert len(stats) == 3  # 1 local + 2 process nodes
        assert [node["ios"] for node in stats] == [1, 1, 1]
        for server in servers:
            server.parc_release()

    def test_cross_process_calls_correct(self, process_runtime):
        servers = [parc.new(PrimeServer) for _ in range(3)]
        for index, server in enumerate(servers):
            start = 2 + index * 100
            server.process(list(range(start, start + 100)))
        total = sum(server.count() for server in servers)
        assert total == len(sieve(301))
        for server in servers:
            server.parc_release()

    def test_aggregated_async_calls_cross_processes(self, process_runtime):
        server = parc.new(PrimeServer)
        for start in range(2, 202, 10):
            server.process(list(range(start, start + 10)))  # aggregates
        assert server.count() == len(sieve(201))
        assert server.found()[:4] == [2, 3, 5, 7]
        server.parc_release()

    def test_total_ios_counts_remote_nodes(self, process_runtime):
        servers = [parc.new(PrimeServer) for _ in range(3)]
        assert process_runtime.cluster.total_ios() == 3
        for server in servers:
            server.parc_release()
