"""Every shipped example must run to completion (subprocess smoke tests).

The examples are deliverables; these tests keep them green as the library
evolves.  Each runs with reduced problem sizes where the script accepts
arguments.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
SRC_DIR = Path(__file__).resolve().parents[2] / "src"

CASES = [
    ("quickstart.py", [], 120),
    ("divide_server.py", [], 120),
    ("prime_pipeline.py", ["80"], 180),
    ("grain_adaptation.py", [], 180),
    ("raytracer_farm.py", ["24", "24"], 300),
    ("mandelbrot_preprocessed.py", ["40", "12"], 180),
    ("jgf_kernels.py", [], 300),
    ("skeletons.py", [], 180),
    ("multiprocess_farm.py", ["20000", "2"], 300),
    ("aio_farm.py", ["10"], 180),
]


def _example_env() -> dict[str, str]:
    """The examples import ``repro`` from src/ without being installed."""
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        f"{SRC_DIR}{os.pathsep}{existing}" if existing else str(SRC_DIR)
    )
    return env


@pytest.mark.parametrize(
    "script,args,timeout", CASES, ids=[case[0] for case in CASES]
)
def test_example_runs(script, args, timeout, tmp_path):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example missing: {script}"
    result = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=tmp_path,  # examples must not depend on the repo cwd
        env=_example_env(),
    )
    assert result.returncode == 0, (
        f"{script} failed:\nstdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip()  # every example narrates what it did


def test_traced_farm_writes_valid_trace(tmp_path):
    output = tmp_path / "trace.json"
    result = subprocess.run(
        [
            sys.executable,
            str(EXAMPLES_DIR / "traced_farm.py"),
            str(output),
        ],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=tmp_path,
        env=_example_env(),
    )
    assert result.returncode == 0, result.stderr[-2000:]
    import json

    document = json.loads(output.read_text())
    assert document["traceEvents"]


def test_examples_directory_complete():
    """Every example on disk is exercised by this module."""
    on_disk = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = {case[0] for case in CASES} | {"traced_farm.py"}
    assert on_disk == covered, on_disk ^ covered
