"""Integration tests: the SCOOPP name service and lease sweeping."""

from __future__ import annotations

import time

import pytest

import repro.core as parc
from repro.channels import LoopbackChannel
from repro.channels.services import ChannelServices
from repro.core import GrainPolicy
from repro.errors import RemotingError, ScooppError
from repro.perfmodel import VirtualClock
from repro.remoting import MarshalByRefObject, RemotingHost


@parc.parallel(
    name="naming.Board", async_methods=["post"], sync_methods=["posts"]
)
class Board:
    def __init__(self, topic="general"):
        self.topic = topic
        self.entries = []

    def post(self, text):
        self.entries.append(text)

    def posts(self):
        return list(self.entries)


@parc.parallel(name="naming.Author", async_methods=[], sync_methods=["publish"])
class Author:
    def publish(self, text):
        """Looks the board up *from inside a parallel method*."""
        board = parc.lookup("board")
        board.post(text)
        board.parc_wait()
        return True


class TestNameService:
    def test_bind_lookup_roundtrip(self, runtime):
        board = parc.new(Board, "news")
        parc.bind("board", board)
        found = parc.lookup("board")
        found.post("hello")
        found.parc_wait()
        assert board.posts() == ["hello"]  # the very same IO
        parc.unbind("board")
        board.parc_release()

    def test_bind_twice_rejected_rebind_allowed(self, runtime):
        first = parc.new(Board)
        second = parc.new(Board)
        parc.bind("dup", first)
        with pytest.raises(Exception, match="already bound"):
            parc.bind("dup", second)
        parc.rebind("dup", second)
        parc.unbind("dup")
        first.parc_release()
        second.parc_release()

    def test_lookup_missing(self, runtime):
        with pytest.raises(Exception, match="not bound"):
            parc.lookup("ghost")

    def test_unbind_missing(self, runtime):
        with pytest.raises(Exception, match="not bound"):
            parc.unbind("ghost")

    def test_names_listing(self, runtime):
        a = parc.new(Board)
        b = parc.new(Board)
        parc.bind("zeta", a)
        parc.bind("alpha", b)
        assert parc.names() == ["alpha", "zeta"]
        parc.unbind("zeta")
        parc.unbind("alpha")
        a.parc_release()
        b.parc_release()

    def test_only_pos_bindable(self, runtime):
        with pytest.raises(ScooppError, match="parallel objects"):
            parc.bind("x", object())

    def test_lookup_from_inside_parallel_method(self, runtime):
        board = parc.new(Board)
        parc.bind("board", board)
        author = parc.new(Author)
        assert author.publish("from a worker") is True
        assert board.posts() == ["from a worker"]
        parc.unbind("board")
        author.parc_release()
        board.parc_release()

    def test_agglomerated_po_promoted_on_bind(self):
        parc.init(nodes=2, grain=GrainPolicy(agglomerate=True))
        try:
            board = parc.new(Board)
            assert board.parc_is_local
            parc.bind("local-board", board)
            assert not board.parc_is_local  # promoted by the crossing
            found = parc.lookup("local-board")
            found.post("promoted")
            found.parc_wait()
            assert board.posts() == ["promoted"]
        finally:
            parc.shutdown()

    def test_names_are_per_runtime(self):
        parc.init(nodes=2)
        try:
            board = parc.new(Board)
            parc.bind("ephemeral", board)
        finally:
            parc.shutdown()
        parc.init(nodes=2)
        try:
            assert parc.names() == []
        finally:
            parc.shutdown()


class TestLeaseSweeper:
    def test_background_sweeper_collects(self):
        clock = VirtualClock()
        services = ChannelServices()
        services.register_channel(LoopbackChannel())
        host = RemotingHost(name="sweep-host", services=services, clock=clock)
        host.listen(LoopbackChannel(), "auto")
        try:

            class Ephemeral(MarshalByRefObject):
                def ping(self):
                    return "pong"

            ephemeral = Ephemeral()
            host.objref_for(ephemeral)  # implicit publish, finite lease
            path = ephemeral._parc_path
            host.start_lease_sweeper(interval_s=0.02)
            host.start_lease_sweeper(interval_s=0.02)  # idempotent
            clock.advance(10_000.0)  # lease long expired in virtual time
            deadline = time.time() + 5
            while path in host.published_paths() and time.time() < deadline:
                time.sleep(0.01)
            assert path not in host.published_paths()
        finally:
            host.close()

    def test_sweeper_validation(self):
        services = ChannelServices()
        host = RemotingHost(name="sv", services=services)
        try:
            with pytest.raises(RemotingError):
                host.start_lease_sweeper(interval_s=0)
        finally:
            host.close()

    def test_sweeper_on_closed_host_rejected(self):
        services = ChannelServices()
        host = RemotingHost(name="sc", services=services)
        host.close()
        with pytest.raises(RemotingError):
            host.start_lease_sweeper()
