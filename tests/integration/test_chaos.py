"""Integration tests: scripted chaos, self-healing respawn, shutdown.

The acceptance scenario for the fault-injection substrate: a three-node
cluster loses a node mid-farm and the workload still completes, because
the failure detector declares the node dead, the circuit breaker stops
the stampede of doomed calls, and restartable grains are respawned on a
surviving node.  Non-restartable grains surface
:class:`~repro.errors.NodeLostError` promptly instead of hanging.
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

import repro.core as parc
from repro.channels.breaker import BreakerPolicy
from repro.chaos import ChaosController, plan_from_percentages
from repro.core import GrainPolicy
from repro.errors import (
    ChannelClosedError,
    NodeLostError,
    ParcError,
)


@parc.parallel(name="chaos.Square", sync_methods=["compute"], restartable=True)
class Square:
    """Stateless restartable worker: respawn loses nothing."""

    def compute(self, value):
        return value * value


@parc.parallel(name="chaos.Fragile", sync_methods=["get"])
class Fragile:
    """Stateful, NOT restartable: node death must surface NodeLostError."""

    def __init__(self):
        self.count = 0

    def get(self):
        self.count += 1
        return self.count


def _wait_for(predicate, timeout_s=8.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


def _grain_on(pos, authority):
    """POs among *pos* whose IO lives at *authority* (scheme-less)."""
    return [
        po
        for po in pos
        if po._parc_grain.home_authority() == authority
    ]


def _authority_of(node):
    return node.base_uri.split("://", 1)[1]


@pytest.fixture
def chaos_runtime():
    controller = ChaosController(seed=7)
    rt = parc.init(
        nodes=3,
        channel="chaos+tcp",
        grain=GrainPolicy(),
        heartbeat_s=0.05,
        breaker=BreakerPolicy(failure_threshold=2, reset_timeout_s=0.3),
        chaos_controller=controller,
    )
    try:
        yield rt, controller
    finally:
        parc.shutdown()


class TestSelfHealingFarm:
    def test_kill_one_of_three_mid_farm_respawns_and_completes(
        self, chaos_runtime
    ):
        rt, controller = chaos_runtime
        workers = [parc.new(Square) for _ in range(6)]
        victim = rt.cluster.nodes[1]
        victim_authority = _authority_of(victim)
        assert _grain_on(workers, victim_authority), (
            "round-robin placement should put workers on every node"
        )

        # First half of the farm: all nodes alive.
        results = [workers[i % len(workers)].compute(i) for i in range(12)]
        assert results == [i * i for i in range(12)]

        # Mid-farm: node 1 dies for real, and the chaos controller
        # blackholes its authority so even connect attempts fail fast.
        controller.kill(victim.base_uri)
        victim.close()

        # Second half: every call still completes correctly — grains that
        # lived on the dead node are respawned on survivors.
        results = [workers[i % len(workers)].compute(i) for i in range(12, 24)]
        assert results == [i * i for i in range(12, 24)]

        # Every surviving grain now lives off the dead node.
        assert not _grain_on(workers, victim_authority)

        # The failure detector and breaker both recorded the event.
        metrics = rt.cluster.metrics
        assert _wait_for(
            lambda: metrics.snapshot().get("cluster.node_down", 0) >= 1
        ), "heartbeat detector never declared the node dead"
        assert _wait_for(
            lambda: metrics.snapshot().get("breaker.opened", 0) >= 1
        ), "circuit breaker never opened for the dead authority"
        assert metrics.snapshot().get("cluster.grain_respawned", 0) >= 1
        for worker in workers:
            worker.parc_release()

    def test_detector_respawns_without_any_call(self, chaos_runtime):
        rt, controller = chaos_runtime
        workers = [parc.new(Square) for _ in range(6)]
        victim = rt.cluster.nodes[2]
        victim_authority = _authority_of(victim)
        moved = _grain_on(workers, victim_authority)
        assert moved
        controller.kill(victim.base_uri)
        victim.close()
        # No application call touches the dead node: the heartbeat loop
        # alone must notice and proactively relocate the grains.
        assert _wait_for(
            lambda: not _grain_on(workers, victim_authority)
        ), "proactive respawn never happened"
        for index, worker in enumerate(workers):
            assert worker.compute(index) == index * index
        for worker in workers:
            worker.parc_release()

    def test_non_restartable_grain_raises_node_lost(self, chaos_runtime):
        rt, controller = chaos_runtime
        fragiles = [parc.new(Fragile) for _ in range(3)]
        victim = rt.cluster.nodes[1]
        victim_authority = _authority_of(victim)
        doomed = _grain_on(fragiles, victim_authority)
        assert doomed
        controller.kill(victim.base_uri)
        victim.close()
        started = time.monotonic()
        with pytest.raises(NodeLostError, match="not restartable"):
            for po in doomed:
                po.get()
        assert time.monotonic() - started < 10.0, "NodeLostError too slow"
        # And it keeps failing fast — the grain is poisoned, not retried.
        with pytest.raises(NodeLostError):
            doomed[0].get()
        assert rt.cluster.metrics.snapshot().get("cluster.grain_lost", 0) >= 1
        survivors = [po for po in fragiles if po not in doomed]
        for po in survivors:
            assert po.get() == 1  # untouched grains still work
            po.parc_release()

    def test_scripted_drop_window_recovers(self, chaos_runtime):
        rt, controller = chaos_runtime
        workers = [parc.new(Square) for _ in range(6)]
        target = rt.cluster.nodes[2]
        target_authority = _authority_of(target)
        assert _grain_on(workers, target_authority)
        # Scenario verb: "100% drop for this node for 400ms".  The node
        # is NOT actually dead — but from the outside it is
        # indistinguishable from dead, so grains relocate and the
        # workload keeps completing.
        controller.drop_for(0.4, rate=1.0, authority=target_authority)
        results = [workers[i % len(workers)].compute(i) for i in range(12)]
        assert results == [i * i for i in range(12)]
        # Once the window expires, the heartbeat loop notices the node
        # answering again and welcomes it back (node_up transition).
        metrics = rt.cluster.metrics
        assert _wait_for(
            lambda: metrics.snapshot().get("cluster.node_up", 0) >= 1
        ), "recovered node never marked alive again"
        for worker in workers:
            worker.parc_release()


class TestGossip:
    def test_verdict_reaches_non_probing_peers(self, chaos_runtime):
        rt, controller = chaos_runtime
        victim = rt.cluster.nodes[1]
        controller.kill(victim.base_uri)
        victim.close()
        # Every surviving OM converges on the verdict — via its own
        # probes or via gossip from whoever noticed first.
        survivors = [rt.cluster.nodes[0], rt.cluster.nodes[2]]
        assert _wait_for(
            lambda: all(
                victim.base_uri in node.om.dead_nodes() for node in survivors
            )
        ), "node-down verdict did not propagate to all survivors"


class TestClusterCloseOrdering:
    @pytest.mark.parametrize("kind", ["tcp", "aio"])
    def test_in_flight_call_fails_fast_on_close(self, kind):
        """Regression: closing mid-call errors out instead of hanging."""

        @parc.parallel(
            name=f"chaos.Sleeper[{kind}]", sync_methods=["nap"]
        )
        class Sleeper:
            def nap(self, seconds):
                time.sleep(seconds)
                return "rested"

        rt = parc.init(nodes=2, channel=kind, grain=GrainPolicy())
        outcome = {}
        try:
            remote_authority = _authority_of(rt.cluster.nodes[1])
            for _ in range(8):  # round-robin: land on the remote node
                sleeper = parc.new(Sleeper)
                if sleeper._parc_grain.home_authority() == remote_authority:
                    break
                sleeper.parc_release()
            else:
                pytest.fail("could not place a grain on the remote node")

            def long_call():
                started = time.monotonic()
                try:
                    outcome["result"] = sleeper.nap(30.0)
                except ParcError as exc:
                    outcome["error"] = exc
                outcome["elapsed"] = time.monotonic() - started

            caller = threading.Thread(target=long_call, daemon=True)
            caller.start()
            time.sleep(0.3)  # let the call get onto the wire
        finally:
            parc.shutdown()
        caller.join(timeout=10.0)
        assert not caller.is_alive(), "in-flight call hung across close()"
        assert "error" in outcome, f"call should have failed: {outcome}"
        assert outcome["elapsed"] < 10.0

    def test_new_calls_after_close_raise_channel_closed(self):
        rt = parc.init(nodes=2, channel="tcp", grain=GrainPolicy())
        channel = rt.cluster.client_channel
        authority = _authority_of(rt.cluster.nodes[1])
        parc.shutdown()
        with pytest.raises(ChannelClosedError):
            channel.call(authority, "om", b"")


def _chaos_workload(seed, channel="chaos+loopback"):
    """Random-fault workload: correct answers or ParcError, never a hang."""
    plan = plan_from_percentages(
        seed=seed,
        connect_refused=0.03,
        send_drop=0.03,
        latency=0.05,
        recv_drop=0.03,
        disconnect=0.03,
        truncate=0.03,
        latency_s=(0.0005, 0.002),
    )
    parc.init(
        nodes=2,
        channel=channel,
        grain=GrainPolicy(),
        chaos_plan=plan,
    )
    completed = faulted = 0
    try:
        for i in range(40):
            try:
                worker = parc.new(Square)
            except ParcError:
                faulted += 1
                continue
            try:
                assert worker.compute(i) == i * i, "corrupt result"
                completed += 1
            except ParcError:
                faulted += 1
            try:
                worker.parc_release()
            except ParcError:
                pass
    finally:
        parc.shutdown()
    return completed, faulted


class TestSeededChaosWorkload:
    FIXED_SEEDS = (7, 1337, 20260806)

    @pytest.mark.parametrize("seed", FIXED_SEEDS)
    def test_fixed_seed_workload(self, seed):
        completed, _faulted = _chaos_workload(seed)
        assert completed > 0, "every single call faulted; rates are modest"

    @pytest.mark.parametrize("seed", FIXED_SEEDS)
    def test_fixed_seed_workload_over_shm(self, seed):
        """Fault injection composes over the shared-memory transport."""
        completed, _faulted = _chaos_workload(seed, channel="chaos+shm")
        assert completed > 0, "every single call faulted; rates are modest"

    def test_random_seed_workload(self):
        env = os.environ.get("PARC_CHAOS_SEED")
        seed = int(env) if env else random.SystemRandom().randrange(2**32)
        # Echoed so a CI failure is reproducible from the log alone.
        print(f"chaos seed: {seed} (rerun with PARC_CHAOS_SEED={seed})")
        completed, faulted = _chaos_workload(seed)
        assert completed + faulted == 40 or completed > 0
