"""Integration tests: the full SCOOPP runtime across nodes."""

from __future__ import annotations

import pytest

import repro.core as parc
from repro.core import AdaptiveGrainController, GrainPolicy
from repro.errors import NotRunningError, RemoteInvocationError, ScooppError


@parc.parallel(
    name="itest.Mailbox",
    async_methods=["deliver", "deliver_all"],
    sync_methods=["messages", "merge_from"],
)
class Mailbox:
    def __init__(self, owner="anon"):
        self.owner = owner
        self.inbox = []

    def deliver(self, message):
        self.inbox.append(message)

    def deliver_all(self, messages):
        self.inbox.extend(messages)

    def messages(self):
        return list(self.inbox)

    def merge_from(self, other_mailbox):
        """Takes a PO reference as an argument (§3.1 reference passing)."""
        for message in other_mailbox.messages():
            self.inbox.append(f"via-{self.owner}:{message}")
        return len(self.inbox)


@parc.parallel(name="itest.Spawner", async_methods=[], sync_methods=["spawn_and_fill"])
class Spawner:
    def spawn_and_fill(self, count):
        """Creates parallel objects from inside a parallel method."""
        child = parc.new(Mailbox, "child")
        for index in range(count):
            child.deliver(index)
        result = child.messages()
        child.parc_release()
        return result


class TestLifecycle:
    def test_init_twice_rejected(self, plain_runtime):
        with pytest.raises(ScooppError, match="already initialized"):
            parc.init(nodes=1)

    def test_new_before_init_rejected(self):
        with pytest.raises(NotRunningError):
            parc.new(Mailbox)

    def test_shutdown_idempotent(self):
        parc.init(nodes=1)
        parc.shutdown()
        parc.shutdown()

    def test_runtime_restart(self):
        parc.init(nodes=2)
        first = parc.new(Mailbox)
        first.deliver("x")
        assert first.messages() == ["x"]
        parc.shutdown()
        parc.init(nodes=2)
        try:
            second = parc.new(Mailbox)
            second.deliver("y")
            assert second.messages() == ["y"]
        finally:
            parc.shutdown()

    def test_stats_reflect_placements(self, runtime):
        mailboxes = [parc.new(Mailbox) for _ in range(6)]
        for mailbox in mailboxes:
            mailbox.deliver(1)
            mailbox.messages()
        counts = [node["ios"] for node in runtime.stats()]
        assert sum(counts) == 6
        assert all(count == 2 for count in counts)  # round robin over 3


class TestCallSemantics:
    def test_async_then_sync_order(self, runtime):
        mailbox = parc.new(Mailbox)
        for index in range(10):
            mailbox.deliver(index)
        assert mailbox.messages() == list(range(10))
        mailbox.parc_release()

    def test_release_flushes_pending(self, runtime):
        mailbox = parc.new(Mailbox)
        mailbox.deliver("pending")
        mailbox.parc_release()
        with pytest.raises(ScooppError):
            mailbox.deliver("after release")

    def test_parc_wait_barrier(self, runtime):
        mailbox = parc.new(Mailbox)
        for index in range(20):
            mailbox.deliver(index)
        mailbox.parc_wait()
        assert len(mailbox.messages()) == 20
        mailbox.parc_release()

    def test_sync_error_propagates(self, runtime):
        # Over the wire the failure is a RemoteInvocationError; through the
        # same-node reference shortcut it is the original exception.
        mailbox = parc.new(Mailbox)
        with pytest.raises((RemoteInvocationError, AttributeError)):
            mailbox.merge_from("not a mailbox")
        mailbox.parc_release()

    def test_constructor_args_copied_not_shared(self, plain_runtime):
        payload = ["shared"]
        mailbox = parc.new(Mailbox, payload)  # owner is a list (odd but legal)
        payload.append("mutated later")
        assert mailbox.messages() == []
        mailbox.parc_release()


class TestReferencePassing:
    def test_po_as_argument_reaches_same_io(self, runtime):
        source = parc.new(Mailbox, "src")
        sink = parc.new(Mailbox, "dst")
        source.deliver("m1")
        source.deliver("m2")
        total = sink.merge_from(source)
        assert total == 2
        assert sorted(sink.messages()) == ["via-dst:m1", "via-dst:m2"]
        source.parc_release()
        sink.parc_release()

    def test_reference_edges_recorded(self, runtime):
        source = parc.new(Mailbox, "src")
        sink = parc.new(Mailbox, "dst")
        source.deliver("m")
        sink.merge_from(source)
        reference_edges = runtime.dependence.edges(kind="reference")
        assert reference_edges  # the PO crossing recorded a dependence
        source.parc_release()
        sink.parc_release()

    def test_fully_local_reference_passing(self):
        # When both grains are agglomerated, a PO argument is just a
        # Python reference — no promotion needed, calls work directly.
        parc.init(nodes=2, grain=GrainPolicy(agglomerate=True))
        try:
            local = parc.new(Mailbox, "local")
            assert local.parc_is_local
            local.deliver("m")
            sink = parc.new(Mailbox, "sink")
            assert sink.merge_from(local) == 1
            assert local.parc_is_local  # untouched: nothing crossed a wire
        finally:
            parc.shutdown()

    def test_promote_grain_converts_local_to_remote(self):
        parc.init(nodes=2, grain=GrainPolicy(agglomerate=True))
        try:
            local = parc.new(Mailbox, "local")
            local.deliver("before")
            promoted = parc.current_runtime().promote_grain(local)
            assert not local.parc_is_local
            assert promoted is local._parc_grain
            local.deliver("after")
            assert set(local.messages()) == {"before", "after"}
            local.parc_release()
        finally:
            parc.shutdown()


class TestNestedCreation:
    def test_parallel_method_creates_parallel_objects(self, runtime):
        spawner = parc.new(Spawner)
        assert spawner.spawn_and_fill(5) == list(range(5))
        spawner.parc_release()

    def test_nested_creation_recorded_in_dependence_graph(self, runtime):
        spawner = parc.new(Spawner)
        spawner.spawn_and_fill(1)
        creation_edges = runtime.dependence.edges(kind="creation")
        parents = {parent for parent, _child in creation_edges}
        assert "main" in parents
        assert len(parents) >= 2  # some creation did NOT come from main
        spawner.parc_release()


class TestChannelsAndPolicies:
    def test_tcp_cluster(self):
        parc.init(nodes=2, channel="tcp", grain=GrainPolicy(max_calls=2))
        try:
            mailbox = parc.new(Mailbox)
            for index in range(8):
                mailbox.deliver(index)
            assert mailbox.messages() == list(range(8))
            mailbox.parc_release()
        finally:
            parc.shutdown()

    def test_least_loaded_placement(self):
        parc.init(nodes=3, placement="least_loaded")
        try:
            mailboxes = [parc.new(Mailbox) for _ in range(6)]
            counts = [node["ios"] for node in parc.current_runtime().stats()]
            assert sum(counts) == 6
            assert max(counts) - min(counts) <= 2
            for mailbox in mailboxes:
                mailbox.parc_release()
        finally:
            parc.shutdown()

    def test_random_placement(self):
        parc.init(nodes=3, placement="random")
        try:
            for _ in range(6):
                parc.new(Mailbox)
            assert sum(
                node["ios"] for node in parc.current_runtime().stats()
            ) == 6
        finally:
            parc.shutdown()


class TestAdaptiveRuntime:
    def test_adaptive_agglomerates_tiny_grains(self, adaptive_runtime):
        _runtime, controller = adaptive_runtime
        # Generate cheap-execution evidence.
        for _generation in range(4):
            workers = [parc.new(Mailbox) for _ in range(3)]
            for worker in workers:
                for index in range(10):
                    worker.deliver(index)
                worker.messages()
            for worker in workers:
                worker.parc_release()
        decision = controller.decide("itest.Mailbox")
        assert decision.agglomerate or decision.max_calls > 1
        late = parc.new(Mailbox)
        late.deliver(1)
        assert late.messages() == [1]
        late.parc_release()
