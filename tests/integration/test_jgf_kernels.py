"""Tests for the JGF Section-2 kernels: sequential validity + parallel
bit-exactness (the JGF validation discipline)."""

from __future__ import annotations

import copy
import math

import pytest

import repro.core as parc
from repro.apps.jgf import (
    fourier_coefficients,
    idea_decrypt,
    idea_encrypt,
    make_key,
    parallel_crypt_roundtrip,
    parallel_fourier_coefficients,
    parallel_sor,
    parallel_sparse_matmult,
    random_sparse_matrix,
    sor,
    sor_checksum,
    sparse_matmult,
)
from repro.apps.jgf.crypt import (
    _mul,
    _mul_inverse,
    expand_key,
    invert_key,
)
from repro.apps.jgf.sor import make_grid
from repro.core import GrainPolicy


class TestSeriesSequential:
    def test_dc_coefficient_value(self):
        # a0 = (1/2)∫₀² (x+1)^x dx; the integral is ≈ 5.764, so a0 ≈ 2.88.
        a0, b0 = fourier_coefficients(1)[0]
        assert 2.85 < a0 < 2.92
        assert b0 == 0.0

    def test_first_harmonic_matches_jgf_reference(self):
        # JGF Series validates a[1] ≈ 1.1336, b[1] ≈ -1.8819.
        (_a0, _b0), (a1, b1) = fourier_coefficients(2)
        assert a1 == pytest.approx(1.1336, abs=5e-3)
        assert b1 == pytest.approx(-1.8819, abs=5e-3)

    def test_coefficients_decay(self):
        coefficients = fourier_coefficients(8)
        magnitudes = [
            math.hypot(a, b) for a, b in coefficients[1:]
        ]
        assert magnitudes[0] > magnitudes[-1]

    def test_count_validation(self):
        with pytest.raises(ValueError):
            fourier_coefficients(0)


class TestSorSequential:
    def test_relaxation_is_deterministic(self):
        first = make_grid(10)
        second = make_grid(10)
        sor(first, 4)
        sor(second, 4)
        assert first == second

    def test_boundary_rows_fixed(self):
        grid = make_grid(10)
        top = list(grid[0])
        bottom = list(grid[-1])
        left = [row[0] for row in grid]
        right = [row[-1] for row in grid]
        sor(grid, 6)
        assert grid[0] == top
        assert grid[-1] == bottom
        assert [row[0] for row in grid] == left
        assert [row[-1] for row in grid] == right

    def test_relaxation_smooths(self):
        grid = make_grid(16)
        before = sor_checksum(grid)
        sor(grid, 10)
        after = sor_checksum(grid)
        assert after != before  # it did something
        assert all(math.isfinite(v) for row in grid for v in row)


class TestIdeaCipher:
    def test_mul_group_laws(self):
        for x in (0, 1, 2, 3, 255, 32768, 65535):
            assert _mul(x, _mul_inverse(x)) == 1, x

    def test_mul_zero_encoding(self):
        # 0 encodes 65536 ≡ -1: (-1)·(-1) = 1.
        assert _mul(0, 0) == 1

    def test_key_expansion_size_and_determinism(self):
        key = expand_key([1, 2, 3, 4, 5, 6, 7, 8])
        assert len(key) == 52
        assert key[:8] == [1, 2, 3, 4, 5, 6, 7, 8]
        assert key == expand_key([1, 2, 3, 4, 5, 6, 7, 8])

    def test_invert_key_is_involution_on_crypt(self):
        key = make_key(seed=5)
        data = bytes(range(64, 192))
        assert idea_decrypt(idea_encrypt(data, key), key) == data

    def test_different_keys_differ(self):
        data = bytes(64)
        assert idea_encrypt(data, make_key(1)) != idea_encrypt(
            data, make_key(2)
        )

    def test_avalanche(self):
        key = make_key()
        base = idea_encrypt(bytes(8), key)
        flipped = idea_encrypt(bytes([1] + [0] * 7), key)
        differing = sum(a != b for a, b in zip(base, flipped))
        assert differing >= 4  # most ciphertext bytes change

    def test_unaligned_data_rejected(self):
        with pytest.raises(ValueError):
            idea_encrypt(b"short", make_key())

    def test_invert_key_validation(self):
        with pytest.raises(ValueError):
            invert_key([1, 2, 3])
        with pytest.raises(ValueError):
            expand_key([1])


class TestSparseSequential:
    def test_matrix_shape(self):
        row_ptr, col_idx, values = random_sparse_matrix(20, 4)
        assert len(row_ptr) == 21
        assert len(col_idx) == len(values) == 80
        assert all(0 <= c < 20 for c in col_idx)

    def test_identity_like_behaviour(self):
        # A matrix with a single diagonal nonzero of 1.0 maps x to x
        # (after normalization by max |x| = 1).
        size = 5
        row_ptr = list(range(size + 1))
        col_idx = list(range(size))
        values = [1.0] * size
        x = [0.5, -1.0, 0.25, 1.0, 0.0]
        assert sparse_matmult((row_ptr, col_idx, values), x) == x

    def test_deterministic(self):
        matrix = random_sparse_matrix(25, 3, seed=9)
        x = [1.0] * 25
        assert sparse_matmult(matrix, x, 4) == sparse_matmult(matrix, x, 4)

    def test_too_dense_rejected(self):
        with pytest.raises(ValueError):
            random_sparse_matrix(3, 4)


@pytest.fixture
def jgf_runtime():
    parc.init(nodes=3, grain=GrainPolicy(max_calls=2))
    try:
        yield
    finally:
        parc.shutdown()


class TestParallelKernelsExact:
    @pytest.mark.parametrize("workers", [1, 2, 3, 5])
    def test_series(self, jgf_runtime, workers):
        assert parallel_fourier_coefficients(7, workers=workers) == (
            fourier_coefficients(7)
        )

    @pytest.mark.parametrize("workers", [1, 2, 3, 4])
    def test_sor(self, jgf_runtime, workers):
        grid = make_grid(11)
        reference = copy.deepcopy(grid)
        sor(reference, 4)
        assert parallel_sor(grid, 4, workers=workers) == reference

    def test_sor_tiny_grid_falls_back(self, jgf_runtime):
        grid = make_grid(2)
        reference = copy.deepcopy(grid)
        sor(reference, 3)
        assert parallel_sor(grid, 3, workers=4) == reference

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_crypt(self, jgf_runtime, workers):
        key = make_key(seed=3)
        data = bytes(range(256)) * 2
        expected_ct = idea_encrypt(data, key)
        ciphertext, plaintext = parallel_crypt_roundtrip(
            data, key, workers=workers
        )
        assert ciphertext == expected_ct
        assert plaintext == data

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_sparse_matmult(self, jgf_runtime, workers):
        matrix = random_sparse_matrix(24, 4)
        x = [1.0] * 24
        expected = sparse_matmult(matrix, x, iterations=3)
        assert parallel_sparse_matmult(
            matrix, x, iterations=3, workers=workers
        ) == expected

    def test_more_workers_than_rows(self, jgf_runtime):
        matrix = random_sparse_matrix(4, 2)
        x = [1.0] * 4
        assert parallel_sparse_matmult(matrix, x, workers=16) == (
            sparse_matmult(matrix, x)
        )

    def test_kernels_under_aggregation(self):
        parc.init(nodes=2, grain=GrainPolicy(max_calls=16))
        try:
            grid = make_grid(9)
            reference = copy.deepcopy(grid)
            sor(reference, 3)
            assert parallel_sor(grid, 3, workers=2) == reference
        finally:
            parc.shutdown()

    def test_kernels_agglomerated(self):
        parc.init(nodes=2, grain=GrainPolicy(agglomerate=True))
        try:
            assert parallel_fourier_coefficients(5, workers=2) == (
                fourier_coefficients(5)
            )
        finally:
            parc.shutdown()
