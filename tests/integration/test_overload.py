"""Integration tests: overload shedding, chaos x overload, elastic workers.

The flow-control acceptance scenarios: a bounded mailbox under
saturating load sheds with typed :class:`~repro.errors.OverloadError`
and every call either completes correctly or fails typed — nothing is
silently lost; fault injection composes with admission control; and the
elastic loop adds a worker under sustained pressure, then retires it
once the cluster drains.
"""

from __future__ import annotations

import threading
import time

import pytest

import repro.core as parc
from repro.channels.breaker import BreakerPolicy
from repro.chaos import plan_from_percentages
from repro.core import GrainPolicy
from repro.errors import OverloadError, ParcError


@parc.parallel(name="overload.Slow", sync_methods=["slow", "ping"])
class Slow:
    """Synchronous worker whose calls occupy the mailbox measurably."""

    def slow(self, value, delay=0.1):
        time.sleep(delay)
        return value * 2

    def ping(self):
        return "ok"


@parc.parallel(name="overload.Sleeper", sync_methods=["done_count", "ping"])
class Sleeper:
    """Async worker for queue-depth pressure in the elastic test."""

    def __init__(self):
        self.done = 0

    def work(self, seconds):
        time.sleep(seconds)
        self.done += 1

    def done_count(self):
        return self.done

    def ping(self):
        return "ok"


def _hammer(po, calls, delay):
    """Fire *calls* concurrent sync calls; returns (results, errors)."""
    results: dict[int, int] = {}
    errors: dict[int, BaseException] = {}
    lock = threading.Lock()

    def one(index):
        try:
            value = po.slow(index, delay)
            with lock:
                results[index] = value
        except ParcError as exc:
            with lock:
                errors[index] = exc

    threads = [
        threading.Thread(target=one, args=(index,), daemon=True)
        for index in range(calls)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not any(t.is_alive() for t in threads), "a call hung"
    return results, errors


def _total_shed(cluster) -> int:
    return sum(row.get("shed", 0) for row in cluster.stats())


class TestBoundedMailboxShedding:
    def test_saturation_sheds_typed_and_counters_agree(self):
        rt = parc.init(
            nodes=1,
            channel="tcp",
            grain=GrainPolicy(),
            mailbox_depth=2,
        )
        try:
            po = parc.new(Slow)
            results, errors = _hammer(po, calls=12, delay=0.1)
            # Zero lost calls: every call completed correctly or failed
            # typed with OverloadError.
            assert len(results) + len(errors) == 12
            for index, value in results.items():
                assert value == index * 2
            assert errors, "12 concurrent calls into depth 2 must shed"
            assert all(
                isinstance(exc, OverloadError) for exc in errors.values()
            ), f"unexpected error types: {errors}"
            assert results, "the bounded lane still serves admitted work"
            # Server-side shed accounting matches what callers observed.
            assert _total_shed(rt.cluster) == len(errors)
            # And the PO counted the same sheds on the client side.
            merged = rt.metrics_snapshot()["cluster"]
            assert merged["po.sheds"]["value"] == len(errors)
            po.parc_release()
        finally:
            parc.shutdown()

    def test_unbounded_default_never_sheds(self):
        rt = parc.init(nodes=1, channel="tcp", grain=GrainPolicy())
        try:
            po = parc.new(Slow)
            results, errors = _hammer(po, calls=12, delay=0.01)
            assert not errors
            assert len(results) == 12
            assert _total_shed(rt.cluster) == 0
            po.parc_release()
        finally:
            parc.shutdown()

    def test_async_sender_surfaces_overload(self):
        """Sheds on the async path surface on the next synchronous rendezvous."""
        parc.init(
            nodes=1,
            channel="tcp",
            grain=GrainPolicy(),
            mailbox_depth=1,
        )
        try:
            po = parc.new(Sleeper)
            with pytest.raises(OverloadError):
                for _ in range(50):
                    po.work(0.2)  # async: the sender thread eventually sheds
                po.parc_wait()
            po.parc_release()
        finally:
            parc.shutdown()


class TestChaosTimesOverload:
    def test_faults_compose_with_admission_control(self):
        """Chaos faults + saturating load: nothing lost, counters sane."""
        plan = plan_from_percentages(
            seed=42,
            connect_refused=0.02,
            send_drop=0.02,
            recv_drop=0.02,
            disconnect=0.02,
            latency=0.05,
            latency_s=(0.0005, 0.002),
        )
        rt = parc.init(
            nodes=2,
            channel="chaos+tcp",
            grain=GrainPolicy(),
            mailbox_depth=2,
            breaker=BreakerPolicy(failure_threshold=50, reset_timeout_s=0.2),
            chaos_plan=plan,
        )
        try:
            po = parc.new(Slow)
            results, errors = _hammer(po, calls=16, delay=0.05)
            # Zero lost calls: every outcome is a correct result or a
            # typed ParcError (overload, chaos transport fault, ...).
            assert len(results) + len(errors) == 16
            for index, value in results.items():
                assert value == index * 2
            assert results, "modest fault rates must let some calls through"
            overloads = [
                exc
                for exc in errors.values()
                if isinstance(exc, OverloadError)
            ]
            # Every client-observed overload traces back to a counted
            # shed — server-side admission control or the client credit
            # gate — never out of thin air.
            snapshot = rt.cluster.metrics.snapshot()
            credit_sheds = snapshot.get("flow.credit.sheds", 0)
            assert len(overloads) <= _total_shed(rt.cluster) + credit_sheds
            po.parc_release()
        finally:
            parc.shutdown()


class TestElasticWorkers:
    def test_scale_out_under_pressure_then_back_in(self):
        rt = parc.init(
            nodes=1,
            channel="tcp",
            grain=GrainPolicy(),
            worker_processes=1,
            worker_modules=("tests.integration.test_overload",),
            elastic=(1, 2),
        )
        try:
            cluster = rt.cluster
            # Speed the control loop up for the test; the running thread
            # re-reads the interval on every wait.
            cluster._elastic_interval_s = 0.05
            assert len(cluster.worker_handles) == 1

            # Sleepers everywhere; pressure goes only through those on
            # the in-process node and the *initial* worker — scale-in
            # retires the newest worker, so no state rides on it.
            sleepers = [parc.new(Sleeper) for _ in range(4)]
            posted = 0

            deadline = time.monotonic() + 30.0
            while (
                cluster.metrics.snapshot().get("cluster.elastic.scale_out", 0)
                == 0
            ):
                assert time.monotonic() < deadline, "never scaled out"
                for sleeper in sleepers:
                    sleeper.work(0.05)
                    posted += 1
                time.sleep(0.02)
            assert len(cluster.worker_handles) == 2

            # Load off: the long idle run (plus cooldown) retires the
            # extra worker again.
            deadline = time.monotonic() + 30.0
            while (
                cluster.metrics.snapshot().get("cluster.elastic.scale_in", 0)
                == 0
            ):
                assert time.monotonic() < deadline, "never scaled back in"
                time.sleep(0.05)
            assert len(cluster.worker_handles) == 1

            # Zero lost calls through the scale-out/in cycle: every
            # posted async call executed exactly once.
            for sleeper in sleepers:
                sleeper.parc_wait()
            assert sum(s.done_count() for s in sleepers) == posted
            assert all(s.ping() == "ok" for s in sleepers)
            snapshot = cluster.metrics.snapshot()
            assert snapshot.get("cluster.elastic.workers") == 1
            for sleeper in sleepers:
                sleeper.parc_release()
        finally:
            parc.shutdown()

    def test_elastic_requires_process_workers(self):
        with pytest.raises(ParcError):
            parc.init(nodes=1, channel="tcp", elastic=(1, 2))
