"""Distributed tracing across real transports.

The guarantee under test: a PO call made inside an application span on
the home node produces spans on the *executing* node that chain, parent
by parent, back to the caller's span — across every transport, and
through the chaos wrapper (which must forward the ``parc-trace`` header
untouched).
"""

from __future__ import annotations

import pytest

import repro.core as parc
from repro.core import GrainPolicy, ParcConfig, TelemetryConfig
from repro.telemetry import get_global_tracer

CHANNEL_KINDS = ["tcp", "aio", "shm", "chaos+tcp", "chaos+aio", "chaos+shm"]


@parc.parallel(
    name="ttrace.Summer", async_methods=["add"], sync_methods=["total"]
)
class Summer:
    def __init__(self):
        self.value = 0

    def add(self, n):
        self.value += n

    def total(self):
        return self.value


def _run_traced_farm(channel_kind: str) -> tuple[dict, dict]:
    """Run an aggregated async workload + sync collect under tracing.

    Returns (merged chrome-trace document, metrics snapshot), collected
    before shutdown.
    """
    config = ParcConfig(
        nodes=2,
        channel=channel_kind,
        grain=GrainPolicy(max_calls=4),
        telemetry=TelemetryConfig(enabled=True),
    )
    with parc.session(config) as runtime:
        tracer = get_global_tracer()
        assert tracer is not None, "session must install the home tracer"
        with tracer.span("app", "root"):
            summers = [parc.new(Summer) for _ in range(4)]
            for summer in summers:
                for n in range(8):
                    summer.add(n)
            totals = [summer.total() for summer in summers]
        assert totals == [28] * 4
        for summer in summers:
            summer.parc_release()
        document = runtime.dump_trace()
        snapshot = runtime.metrics_snapshot()
    return document, snapshot


def _spans_by_id(document: dict) -> dict[str, dict]:
    return {
        event["args"]["span_id"]: event
        for event in document["traceEvents"]
        if event.get("ph") == "X" and "span_id" in event.get("args", {})
    }


def _chain_to_root(event: dict, spans: dict[str, dict]) -> list[dict]:
    """Follow parent_id links; returns the chain ending at a root span."""
    chain = [event]
    seen = {event["args"]["span_id"]}
    while "parent_id" in chain[-1]["args"]:
        parent = spans.get(chain[-1]["args"]["parent_id"])
        if parent is None:
            break
        assert parent["args"]["span_id"] not in seen, "span cycle"
        seen.add(parent["args"]["span_id"])
        chain.append(parent)
    return chain


@pytest.mark.parametrize("channel_kind", CHANNEL_KINDS)
def test_spans_chain_to_caller_across_nodes(channel_kind):
    document, _snapshot = _run_traced_farm(channel_kind)
    spans = _spans_by_id(document)
    roots = [e for e in spans.values() if e["name"] == "root"]
    assert len(roots) == 1
    root = roots[0]

    io_events = [
        e for e in document["traceEvents"] if e.get("cat") == "io"
    ]
    assert io_events, "no implementation-object spans recorded"

    # Every io span walks back to the caller's root span, and the walk
    # stays inside one distributed trace.
    connected_pids = set()
    for event in io_events:
        chain = _chain_to_root(event, spans)
        assert chain[-1]["args"]["span_id"] == root["args"]["span_id"], (
            f"io span {event['name']} on pid {event['pid']} does not "
            f"reach the root (chain: {[e['name'] for e in chain]})"
        )
        assert {e["args"]["trace_id"] for e in chain} == {
            root["args"]["trace_id"]
        }
        connected_pids.add(event["pid"])

    # The farm really fanned out: connected spans on >= 2 node lanes.
    assert len(connected_pids) >= 2, (
        f"expected io spans on >= 2 node lanes, got {connected_pids}"
    )
    # The server-side dispatch span sits between the io span and the
    # client's rpc span somewhere in at least one chain.
    assert any(
        e["cat"] == "dispatch"
        for event in io_events
        for e in _chain_to_root(event, spans)
    )
    assert any(
        e["cat"] == "rpc"
        for event in io_events
        for e in _chain_to_root(event, spans)
    )


@pytest.mark.parametrize("channel_kind", ["tcp", "chaos+aio"])
def test_method_histograms_on_every_executing_node(channel_kind):
    _document, snapshot = _run_traced_farm(channel_kind)
    nodes_with_methods = [
        label
        for label, export in snapshot["nodes"].items()
        if any(
            name.startswith("parc.method.seconds.Summer.")
            and metric["type"] == "histogram"
            for name, metric in export.items()
        )
    ]
    assert len(nodes_with_methods) >= 2, snapshot["nodes"].keys()

    merged = snapshot["cluster"]
    add = merged["parc.method.seconds.Summer.add"]
    total = merged["parc.method.seconds.Summer.total"]
    # 4 POs x 8 adds aggregated into batches; 4 sync totals.
    assert add["count"] == 32
    assert total["count"] == 4


def test_session_restores_global_tracer():
    assert get_global_tracer() is None
    _run_traced_farm("tcp")
    assert get_global_tracer() is None


def test_unsampled_runs_record_nothing():
    config = ParcConfig(
        nodes=2,
        channel="tcp",
        grain=GrainPolicy(max_calls=4),
        telemetry=TelemetryConfig(enabled=True, sample_rate=0.0),
    )
    with parc.session(config) as runtime:
        tracer = get_global_tracer()
        with tracer.span("app", "root"):
            summer = parc.new(Summer)
            for n in range(8):
                summer.add(n)
            assert summer.total() == 28
        summer.parc_release()
        document = runtime.dump_trace()
        snapshot = runtime.metrics_snapshot()
    spans = [
        e for e in document["traceEvents"] if e.get("ph") in ("X", "i")
    ]
    assert spans == [], "sample_rate=0.0 must record no spans anywhere"
    # Metrics are decoupled from sampling: latency histograms still fill.
    assert "parc.method.seconds.Summer.add" in snapshot["cluster"]
