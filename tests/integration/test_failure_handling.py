"""Integration tests: node failure, placement failover, call retries."""

from __future__ import annotations

import pytest

import repro.core as parc
from repro.core import GrainPolicy
from repro.errors import ChannelError, PlacementError, ScooppError
from repro.remoting.resilience import (
    RetryPolicy,
    call_with_retry,
    is_transport_error,
    retrying,
)


@parc.parallel(name="fail.Echo", async_methods=["put"], sync_methods=["get"])
class Echo:
    def __init__(self):
        self.values = []

    def put(self, value):
        self.values.append(value)

    def get(self):
        return list(self.values)


@pytest.fixture(params=["tcp", "aio"])
def tcp_runtime(request):
    # Socket-backed cluster so "killing" a node leaves real dead sockets
    # behind; parametrized over both socket transports so failover works
    # identically on the threaded and the multiplexed channel.
    rt = parc.init(nodes=3, channel=request.param, grain=GrainPolicy())
    try:
        yield rt
    finally:
        parc.shutdown()


def kill_node(runtime, index):
    """Simulate a crash: the node's host stops serving."""
    node = runtime.cluster.nodes[index]
    node.close()
    return node


class TestPlacementFailover:
    def test_creation_survives_dead_node(self, tcp_runtime):
        kill_node(tcp_runtime, 2)
        echoes = [parc.new(Echo) for _ in range(4)]
        for index, echo in enumerate(echoes):
            echo.put(index)
            assert echo.get() == [index]
        live_stats = tcp_runtime.stats()[:2]
        assert sum(node["ios"] for node in live_stats) == 4
        for echo in echoes:
            echo.parc_release()

    def test_dead_node_recorded(self, tcp_runtime):
        dead = kill_node(tcp_runtime, 1)
        for _ in range(3):
            parc.new(Echo)
        home_om = tcp_runtime.cluster.home_node.om
        assert dead.base_uri in home_om.dead_nodes()

    def test_probe_peers_detects_death(self, tcp_runtime):
        dead = kill_node(tcp_runtime, 2)
        home_om = tcp_runtime.cluster.home_node.om
        results = home_om.probe_peers()
        assert results[dead.base_uri] is False
        live = [uri for uri, alive in results.items() if alive]
        assert len(live) == 2

    def test_all_nodes_dead_is_clear_error(self):
        rt = parc.init(nodes=2, channel="tcp")
        try:
            for node in rt.cluster.nodes:
                rt.cluster.home_node.om.note_dead(node.base_uri)
            with pytest.raises((PlacementError, ScooppError)):
                parc.new(Echo)
        finally:
            parc.shutdown()

    def test_calls_to_dead_io_fail_loudly(self, tcp_runtime):
        echoes = [parc.new(Echo) for _ in range(3)]
        # Find an echo hosted on node 1, then kill node 1.
        kill_node(tcp_runtime, 1)
        failures = 0
        for echo in echoes:
            try:
                echo.get()
            except Exception:  # noqa: BLE001 - any loud failure is correct
                failures += 1
        assert failures >= 1  # round robin put one IO on node 1


class TestRetryHelpers:
    def test_succeeds_after_transient_failures(self):
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise ChannelError("transient")
            return "ok"

        assert call_with_retry(
            flaky, policy=RetryPolicy(attempts=5, backoff_s=0.0)
        ) == "ok"
        assert len(calls) == 3

    def test_exhausted_attempts_reraise(self):
        def always_fails():
            raise ChannelError("still down")

        with pytest.raises(ChannelError, match="still down"):
            call_with_retry(
                always_fails, policy=RetryPolicy(attempts=2, backoff_s=0.0)
            )

    def test_non_retryable_errors_pass_through_immediately(self):
        calls = []

        def wrong_type():
            calls.append(1)
            raise ValueError("not transport")

        with pytest.raises(ValueError):
            call_with_retry(
                wrong_type, policy=RetryPolicy(attempts=5, backoff_s=0.0)
            )
        assert len(calls) == 1

    def test_decorator_form(self):
        attempts = []

        @retrying(RetryPolicy(attempts=3, backoff_s=0.0))
        def sometimes(value):
            attempts.append(1)
            if len(attempts) < 2:
                raise ChannelError("flap")
            return value * 2

        assert sometimes(21) == 42

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_transport_error_classifier(self):
        import socket

        from repro.errors import (
            AddressError,
            CircuitOpenError,
            FaultInjectedError,
            RemoteInvocationError,
        )

        assert is_transport_error(ChannelError("x"))
        assert is_transport_error(ConnectionRefusedError())
        assert is_transport_error(TimeoutError())
        assert is_transport_error(socket.timeout())
        assert is_transport_error(CircuitOpenError("quarantined"))
        assert is_transport_error(FaultInjectedError("chaos"))
        assert not is_transport_error(RemoteInvocationError("app failed"))
        assert not is_transport_error(ValueError("nope"))
        # Classification is by type, not message: "connect" in the text
        # of a non-transport error must not fool it, and a structurally
        # hopeless address error must not be retried.
        assert not is_transport_error(ValueError("could not connect"))
        assert not is_transport_error(AddressError("bad uri: connect"))

    def test_backoff_jitter_spreads_sleeps(self):
        policy = RetryPolicy(attempts=3, backoff_s=0.1, jitter=0.5)
        sleeps = {round(policy.sleep_for(0.1), 6) for _ in range(50)}
        assert all(0.05 <= s <= 0.15 for s in sleeps)
        assert len(sleeps) > 1  # actually jittered, not constant
        assert RetryPolicy(jitter=0.0).sleep_for(0.1) == 0.1
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
