"""Integration tests: remoting flows across channels and hosts."""

from __future__ import annotations

import threading

import pytest

from repro.channels import HttpChannel, LoopbackChannel, TcpChannel
from repro.channels.services import ChannelServices
from repro.remoting import (
    Activator,
    Delegate,
    MarshalByRefObject,
    RemotingConfiguration,
    RemotingHost,
    WellKnownObjectMode,
)
from repro.remoting.host import reset_default_host
from repro.remoting.proxy import is_proxy


class Storage(MarshalByRefObject):
    def __init__(self):
        self.data = {}
        self.lock = threading.Lock()

    def put(self, key, value):
        with self.lock:
            self.data[key] = value
        return key

    def get(self, key):
        with self.lock:
            return self.data.get(key)

    def keys(self):
        with self.lock:
            return sorted(self.data)


class CallbackSink(MarshalByRefObject):
    def __init__(self):
        self.received = []

    def notify(self, event):
        self.received.append(event)
        return len(self.received)


class Publisher(MarshalByRefObject):
    def __init__(self):
        self.subscribers = []

    def subscribe(self, sink):
        """Receives a proxy to a client-side object (callback pattern)."""
        self.subscribers.append(sink)

    def publish(self, event):
        return [sink.notify(event) for sink in self.subscribers]


@pytest.fixture(params=["tcp", "http", "loopback"])
def connected_pair(request):
    """A server host and a client host connected over one channel kind."""
    channel_classes = {
        "tcp": TcpChannel,
        "http": HttpChannel,
        "loopback": LoopbackChannel,
    }
    channel_class = channel_classes[request.param]
    authority = "auto" if request.param == "loopback" else "127.0.0.1:0"
    server_services = ChannelServices()
    server = RemotingHost(name=f"server-{request.param}", services=server_services)
    binding = server.listen(channel_class(), authority)
    client_services = ChannelServices()
    client_channel = channel_class()
    client_services.register_channel(client_channel)
    client = RemotingHost(name=f"client-{request.param}", services=client_services)
    base_uri = f"{client_channel.scheme}://{binding.authority}"
    yield server, client, base_uri
    client.close()
    server.close()
    client_channel.close()


class TestCrossHostFlows:
    def test_state_roundtrip(self, connected_pair):
        server, client, base = connected_pair
        server.register_well_known(Storage, "storage")
        storage = client.get_object(f"{base}/storage")
        assert storage.put("k", {"nested": [1, 2]}) == "k"
        assert storage.get("k") == {"nested": [1, 2]}
        assert storage.keys() == ["k"]

    def test_concurrent_clients_single_server_object(self, connected_pair):
        server, client, base = connected_pair
        server.register_well_known(Storage, "shared")
        errors = []

        def worker(worker_id):
            try:
                proxy = client.get_object(f"{base}/shared")
                for round_no in range(5):
                    key = f"{worker_id}:{round_no}"
                    proxy.put(key, round_no)
                    assert proxy.get(key) == round_no
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        storage = client.get_object(f"{base}/shared")
        assert len(storage.keys()) == 30

    def test_client_callbacks(self, connected_pair):
        server, client, base = connected_pair
        if base.startswith("loopback"):
            pytest.skip("callback needs a listening client; loopback "
                        "client hosts share the process registry anyway")
        # The client must listen to receive callbacks.
        channel_class = TcpChannel if base.startswith("tcp") else HttpChannel
        client_binding = client.listen(channel_class(), "127.0.0.1:0")
        assert client_binding.authority
        server.register_well_known(Publisher, "publisher")
        publisher = client.get_object(f"{base}/publisher")
        sink = CallbackSink()
        publisher.subscribe(sink)  # marshals sink by reference
        counts = publisher.publish("event-1")
        assert counts == [1]
        assert sink.received == ["event-1"]

    def test_async_delegate_over_wire(self, connected_pair):
        server, client, base = connected_pair
        server.register_well_known(Storage, "async-storage")
        storage = client.get_object(f"{base}/async-storage")
        delegate = Delegate(storage.put)
        results = [delegate.begin_invoke(f"k{i}", i) for i in range(10)]
        keys = sorted(delegate.end_invoke(result) for result in results)
        assert keys == sorted(f"k{i}" for i in range(10))
        assert storage.keys() == sorted(f"k{i}" for i in range(10))


class TestMultiChannelHost:
    def test_same_object_reachable_over_tcp_and_http(self):
        services = ChannelServices()
        host = RemotingHost(name="dual", services=services)
        tcp_binding = host.listen(TcpChannel(), "127.0.0.1:0")
        http_binding = host.listen(HttpChannel(), "127.0.0.1:0")
        host.register_well_known(Storage, "dual-storage")
        client_services = ChannelServices()
        client_services.register_channel(TcpChannel())
        client_services.register_channel(HttpChannel())
        client = RemotingHost(name="dual-client", services=client_services)
        try:
            over_tcp = client.get_object(
                f"tcp://{tcp_binding.authority}/dual-storage"
            )
            over_http = client.get_object(
                f"http://{http_binding.authority}/dual-storage"
            )
            over_tcp.put("via", "tcp")
            assert over_http.get("via") == "tcp"  # same singleton
        finally:
            client.close()
            host.close()

    def test_objref_advertises_all_channels(self):
        services = ChannelServices()
        host = RemotingHost(name="multi", services=services)
        host.listen(TcpChannel(), "127.0.0.1:0")
        host.listen(HttpChannel(), "127.0.0.1:0")
        try:
            ref = host.publish(Storage(), "multi-storage")
            schemes = {uri.split("://")[0] for uri in ref.uris}
            assert schemes == {"tcp", "http"}
        finally:
            host.close()


class TestStaticFacades:
    def test_fig2_static_api(self):
        reset_default_host()
        try:
            from repro.remoting.host import default_host

            host = default_host()
            binding = host.listen(TcpChannel(), "127.0.0.1:0")
            RemotingConfiguration.register_well_known_service_type(
                Storage, "facade-storage", WellKnownObjectMode.SINGLETON
            )
            proxy = Activator.get_object(
                f"tcp://{binding.authority}/facade-storage"
            )
            # Same-process shortcut may hand back the live object.
            target = proxy if not is_proxy(proxy) else proxy
            assert target.put("a", 1) == "a"
        finally:
            reset_default_host()
