"""Integration: ``same_node_transport="shm"`` across the runtime suites.

The contract under test: turning the backplane on changes the route,
not the semantics.  Farms, tracing, chaos, breakers and multi-process
clusters behave identically, node URIs stay socket URIs (remote peers
never learn about shm), and the router's counters prove the calls
actually left the wire.
"""

from __future__ import annotations

import pytest

import repro.core as parc
from repro.core import GrainPolicy, ParcConfig, TelemetryConfig
from repro.channels.breaker import BreakerPolicy
from repro.cluster.cluster import Cluster
from repro.errors import ScooppError


@parc.parallel(
    name="shmbp.Counter", async_methods=["add"], sync_methods=["total"]
)
class Counter:
    def __init__(self):
        self.value = 0

    def add(self, n):
        self.value += n

    def total(self):
        return self.value


def _router_counts(runtime) -> dict[str, float]:
    snapshot = runtime.cluster.metrics.snapshot()
    return {
        key: value
        for key, value in snapshot.items()
        if key.startswith("shm.router.")
    }


class TestFarmOverBackplane:
    @pytest.mark.parametrize("base", ["tcp", "aio"])
    def test_farm_routes_over_shm(self, base):
        rt = parc.init(
            nodes=3,
            channel=base,
            grain=GrainPolicy(),
            same_node_transport="shm",
        )
        try:
            counters = [parc.new(Counter) for _ in range(6)]
            for counter in counters:
                for n in range(5):
                    counter.add(n)
            assert [c.total() for c in counters] == [10] * 6
            counts = _router_counts(rt)
            assert counts["shm.router.shm_calls"] > 0
            assert counts["shm.router.fallbacks"] == 0
            # URIs stay socket URIs: remote peers never see shm.
            for node in rt.cluster.nodes:
                assert node.base_uri.startswith(f"{base}://")
        finally:
            parc.shutdown()

    def test_large_payloads_cross_the_rings(self):
        rt = parc.init(
            nodes=2, channel="tcp", same_node_transport="shm"
        )
        try:
            counter = parc.new(Counter)
            counter.add(1)
            assert counter.total() == 1
            # A payload bigger than the default handshake-negotiated
            # ring streams through wrap/park without corruption.
            @parc.parallel(name="shmbp.Echo", sync_methods=["echo"])
            class Echo:
                def echo(self, blob):
                    return blob

            echo = parc.new(Echo)
            blob = bytes(range(256)) * 1024  # 256 KiB
            assert echo.echo(blob) == blob
        finally:
            parc.shutdown()


class TestTracingOverBackplane:
    def test_spans_survive_the_shm_route(self):
        config = ParcConfig(
            nodes=2,
            channel="tcp",
            same_node_transport="shm",
            telemetry=TelemetryConfig(enabled=True),
        )
        with parc.session(config) as runtime:
            from repro.telemetry import get_global_tracer

            tracer = get_global_tracer()
            with tracer.span("app", "root"):
                counters = [parc.new(Counter) for _ in range(4)]
                for counter in counters:
                    counter.add(2)
                assert [c.total() for c in counters] == [2] * 4
            document = runtime.dump_trace()
            counts = _router_counts(runtime)
        assert counts["shm.router.shm_calls"] > 0
        io_events = [
            e for e in document["traceEvents"] if e.get("cat") == "io"
        ]
        assert io_events, "no io spans despite shm routing"
        # Every io span carries trace context that arrived in headers
        # over the rings.
        for event in io_events:
            assert "trace_id" in event["args"]


class TestChaosAndBreakerOverBackplane:
    def test_breaker_chaos_stack_composes(self):
        from repro.chaos import ChaosController

        controller = ChaosController(seed=11)
        rt = parc.init(
            nodes=2,
            channel="chaos+tcp",
            grain=GrainPolicy(),
            breaker=BreakerPolicy(failure_threshold=3, reset_timeout_s=0.2),
            chaos_controller=controller,
            same_node_transport="shm",
        )
        try:
            counters = [parc.new(Counter) for _ in range(4)]
            for counter in counters:
                counter.add(3)
            assert [c.total() for c in counters] == [3] * 4
            counts = _router_counts(rt)
            assert counts["shm.router.shm_calls"] > 0
        finally:
            parc.shutdown()


class TestMultiProcessBackplane:
    def test_worker_processes_negotiate_shm(self):
        """Parent ↔ worker calls cross process boundaries over rings."""
        rt = parc.init(
            nodes=1,
            channel="tcp",
            worker_processes=1,
            worker_modules=("tests.integration.test_shm_backplane",),
            same_node_transport="shm",
        )
        try:
            counters = [parc.new(Counter) for _ in range(4)]
            for counter in counters:
                counter.add(4)
            assert [c.total() for c in counters] == [4] * 4
            counts = _router_counts(rt)
            assert counts["shm.router.shm_calls"] > 0
            assert counts["shm.router.fallbacks"] == 0
        finally:
            parc.shutdown()


class TestFallbackAndValidation:
    def test_remote_like_peer_stays_on_wire(self):
        """An authority with no handshake socket rides the wire."""
        rt = parc.init(
            nodes=2, channel="tcp", same_node_transport="shm"
        )
        try:
            from repro.channels.tcp import TcpChannel

            # A plain tcp listener with no shm backplane: the router
            # must treat it exactly like a remote host.
            wire_only = TcpChannel()
            binding = wire_only.listen(
                "127.0.0.1:0", lambda p, b, h: bytes(b)
            )
            try:
                client = rt.cluster.client_channel
                assert client.call(binding.authority, "p", b"w") == b"w"
                counts = _router_counts(rt)
                assert counts["shm.router.wire_calls"] > 0
            finally:
                binding.close()
                wire_only.close()
        finally:
            parc.shutdown()

    def test_rejects_unknown_transport(self):
        with pytest.raises(ScooppError, match="same_node_transport"):
            parc.init(nodes=1, same_node_transport="rdma")
        parc.shutdown()

    def test_rejects_non_socket_base(self):
        with pytest.raises(ScooppError, match="socket channel kind"):
            Cluster(num_nodes=1, channel_kind="loopback",
                    same_node_transport="shm")

    def test_backplane_closes_cleanly(self):
        """Handshake sockets disappear with the cluster."""
        from repro.shm import shm_available

        rt = parc.init(nodes=2, channel="tcp", same_node_transport="shm")
        authorities = [
            node.base_uri.split("://", 1)[1] for node in rt.cluster.nodes
        ]
        assert all(shm_available(a) for a in authorities)
        parc.shutdown()
        assert not any(shm_available(a) for a in authorities)
