"""Integration test: preprocess a module, import it, run the generated POs.

Also the behavioural-equivalence check promised in DESIGN.md: the
source-generated PO and the runtime-generated PO (make_parallel_class)
must behave identically.
"""

from __future__ import annotations

import importlib.util
import sys
import textwrap

import pytest

import repro.core as parc
from repro.core import GrainPolicy, make_parallel_class, preprocess_module

MODULE_SOURCE = textwrap.dedent(
    '''
    from repro.core import parallel


    @parallel
    class Collector:
        """Accumulates labelled values."""

        def __init__(self, label):
            self.label = label
            self.values = []

        def add(self, value):
            self.values.append(value)

        def add_many(self, values, scale=1):
            for value in values:
                self.values.append(value * scale)

        def summary(self):
            return (self.label, sorted(self.values))
    '''
)


def load_generated(tmp_path, name):
    source_file = tmp_path / f"{name}.py"
    source_file.write_text(MODULE_SOURCE, encoding="utf-8")
    generated_path = preprocess_module(source_file)
    spec = importlib.util.spec_from_file_location(
        generated_path.stem, generated_path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[generated_path.stem] = module
    spec.loader.exec_module(module)
    return module


class TestGeneratedModule:
    def test_po_class_replaces_original_name(self, tmp_path):
        module = load_generated(tmp_path, "collectors_a")
        from repro.core.proxy_object import ProxyObject

        assert issubclass(module.Collector, ProxyObject)
        assert module.CollectorImpl is not module.Collector

    def test_end_to_end(self, tmp_path):
        module = load_generated(tmp_path, "collectors_b")
        parc.init(nodes=2, grain=GrainPolicy(max_calls=3))
        try:
            collector = module.Collector("demo")
            collector.add(3)
            collector.add(1)
            collector.add_many([10, 20], scale=2)
            assert collector.summary() == ("demo", [1, 3, 20, 40])
            collector.parc_release()
        finally:
            parc.shutdown()

    def test_classification_frozen_in_source(self, tmp_path):
        module = load_generated(tmp_path, "collectors_c")
        info = module.Collector._parc_info
        assert info.async_methods == ["add", "add_many"]
        assert info.sync_methods == ["summary"]

    def test_source_and_runtime_paths_agree(self, tmp_path):
        """The DESIGN.md equivalence claim, executed."""
        module = load_generated(tmp_path, "collectors_d")
        runtime_po_class = make_parallel_class(module.CollectorImpl)
        parc.init(nodes=2, grain=GrainPolicy(max_calls=2))
        try:
            from_source = module.Collector("s")
            from_runtime = runtime_po_class("r")
            for po in (from_source, from_runtime):
                po.add(5)
                po.add_many([1, 2], scale=3)
            source_result = from_source.summary()
            runtime_result = from_runtime.summary()
            assert source_result[1] == runtime_result[1] == [3, 5, 6]
            # Same public surface.
            source_api = {
                n for n in dir(type(from_source)) if not n.startswith("_")
            }
            runtime_api = {
                n for n in dir(type(from_runtime)) if not n.startswith("_")
            }
            assert source_api == runtime_api
        finally:
            parc.shutdown()

    def test_generated_module_reusable_across_runtimes(self, tmp_path):
        module = load_generated(tmp_path, "collectors_e")
        for _round in range(2):
            parc.init(nodes=2)
            try:
                collector = module.Collector("again")
                collector.add(1)
                assert collector.summary() == ("again", [1])
            finally:
                parc.shutdown()
