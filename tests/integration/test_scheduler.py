"""Integration: adaptive scheduler — live migration, work stealing,
placement introspection, and node-down placement across transports."""

from __future__ import annotations

import threading
import time

import pytest

import repro.core as parc
from repro.cluster.cluster import Cluster
from repro.cluster.placement import PlacementPolicy
from repro.core import ParcConfig, SchedulerConfig
from repro.errors import MigrationError


@parc.parallel(
    name="sched.Tally",
    async_methods=["add"],
    sync_methods=["total"],
)
class Tally:
    def __init__(self):
        self.value = 0

    def add(self, n):
        time.sleep(0.001)
        self.value += n

    def total(self):
        return self.value


class PinToFirst(PlacementPolicy):
    """Everything lands on the first live node: manufactured imbalance."""

    name = "pin_to_first"

    def choose(self, view, home_index):
        return self._live(view)[0].index


def grain_uri_on(node):
    impls = node.impl_snapshot()
    assert impls, f"no grains hosted on {node.base_uri}"
    return node.host.objref_for(impls[0]).uris[0]


class TestLiveMigration:
    def test_migration_mid_traffic_loses_nothing(self):
        config = ParcConfig(
            nodes=3,
            scheduler=SchedulerConfig(migration=True),
        )
        with parc.session(config) as runtime:
            tally = parc.new(Tally)
            for i in range(100):
                tally.add(1)
            # Migrate while a writer keeps posting from another thread.
            stop = threading.Event()

            def hammer():
                while not stop.is_set():
                    tally.add(1)
                    time.sleep(0.0005)

            writer = threading.Thread(target=hammer, daemon=True)
            writer.start()
            try:
                cluster = runtime.cluster
                victim = next(
                    node for node in cluster.nodes if node.io_count()
                )
                target = next(
                    node.base_uri
                    for node in cluster.nodes
                    if node.base_uri != victim.base_uri
                )
                result = runtime.migrate_grain(
                    grain_uri_on(victim), target
                )
                assert result["lost_calls"] == 0
                assert result["target"] == target
            finally:
                stop.set()
                writer.join(timeout=10.0)
            posted = 100 + runtime.placement_report()["calls_moved"]
            # Every call posted before and during the move must land
            # exactly once: the sync total() drains first.
            for _ in range(10):
                tally.add(1)
            assert tally.total() >= 110
            report = runtime.placement_report()
            assert report["migrations"] >= 1
            assert report["lost_calls"] == 0
            del posted

    def test_sync_call_parked_during_migration_completes(self):
        config = ParcConfig(
            nodes=2, scheduler=SchedulerConfig(migration=True)
        )
        with parc.session(config) as runtime:
            tally = parc.new(Tally)
            for i in range(50):
                tally.add(2)
            results = []

            def reader():
                results.append(tally.total())

            readers = [
                threading.Thread(target=reader, daemon=True)
                for _ in range(3)
            ]
            for thread in readers:
                thread.start()
            cluster = runtime.cluster
            victim = next(
                node for node in cluster.nodes if node.io_count()
            )
            target = next(
                node.base_uri
                for node in cluster.nodes
                if node.base_uri != victim.base_uri
            )
            runtime.migrate_grain(grain_uri_on(victim), target)
            for thread in readers:
                thread.join(timeout=30.0)
            assert len(results) == 3
            assert tally.total() == 100

    def test_migrating_to_own_node_fails_cleanly(self):
        config = ParcConfig(
            nodes=2, scheduler=SchedulerConfig(migration=True)
        )
        with parc.session(config) as runtime:
            tally = parc.new(Tally)
            tally.add(1)
            cluster = runtime.cluster
            victim = next(
                node for node in cluster.nodes if node.io_count()
            )
            with pytest.raises(MigrationError, match="own node"):
                runtime.migrate_grain(
                    grain_uri_on(victim), victim.base_uri
                )
            assert tally.total() == 1  # the grain still serves


class TestWorkStealing:
    def test_pinned_hotspot_drains_to_idle_nodes(self):
        config = ParcConfig(
            nodes=3,
            scheduler=SchedulerConfig(
                placement=PinToFirst(),
                work_stealing=True,
                rebalance_interval_s=0.02,
                steal_threshold=4,
                imbalance_ratio=1.05,
                migration_cooldown_s=0.2,
            ),
        )
        # Enough queued work that the pinned node's backlog outlives
        # many rebalance ticks: 8 grains x 150 x 1 ms is seconds of
        # serial work, so the stealing loop cannot race the drain.
        rounds = 150
        with parc.session(config) as runtime:
            tallies = [parc.new(Tally) for _ in range(8)]
            for _ in range(rounds):
                for tally in tallies:
                    tally.add(1)
            deadline = time.monotonic() + 20.0
            report = runtime.placement_report()
            while (
                report["steals"] + report["migrations"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
                report = runtime.placement_report()
            assert report["migrations"] >= 1, report
            assert report["lost_calls"] == 0
            # Zero-loss under stealing: every add() landed exactly once.
            assert [tally.total() for tally in tallies] == [rounds] * 8
            populated = [
                row for row in report["nodes"] if row["grains"] > 0
            ]
            assert len(populated) >= 2, report["nodes"]


class TestPlacementReport:
    def test_report_shape_and_decisions(self):
        config = ParcConfig(
            nodes=2,
            scheduler=SchedulerConfig(placement="least_loaded"),
        )
        with parc.session(config) as runtime:
            tallies = [parc.new(Tally) for _ in range(4)]
            for tally in tallies:
                tally.add(1)
            report = runtime.placement_report()
            assert report["policy"] == "least_loaded"
            assert report["work_stealing"] is False
            assert len(report["nodes"]) == 2
            for row in report["nodes"]:
                assert set(row) >= {
                    "base_uri",
                    "grains",
                    "queued",
                    "load",
                    "migrations_in",
                    "migrations_out",
                }
            assert sum(row["grains"] for row in report["nodes"]) == 4
            decisions = report["last_decisions"]
            assert len(decisions) == 4
            assert all(
                d["class_name"] == "sched.Tally" for d in decisions
            )
            assert all("base_uri" in d and "ts" in d for d in decisions)
            assert [tally.total() for tally in tallies] == [1] * 4


CHANNEL_KINDS = ["tcp", "aio", "shm"]


class TestNodeDownPlacement:
    @pytest.mark.parametrize("kind", CHANNEL_KINDS)
    @pytest.mark.parametrize("policy", ["least_loaded", "locality"])
    def test_dead_node_never_chosen(self, kind, policy):
        from repro.channels.factory import available_kinds

        if kind not in available_kinds():
            pytest.skip(f"channel kind {kind!r} unavailable")
        cluster = Cluster(
            num_nodes=3, channel_kind=kind, placement=policy
        )
        try:
            dead = cluster.nodes[1]
            for node in cluster.nodes:
                node.om.note_dead(dead.base_uri)
            for _ in range(12):
                _decision, factory_uri = cluster.home_node.om.decide_and_place(
                    "sched.Tally"
                )
                assert factory_uri is not None
                assert not factory_uri.startswith(dead.base_uri)
            view = cluster.home_node.om.cluster_view("sched.Tally")
            assert [n.alive for n in view.nodes] == [True, False, True]
        finally:
            cluster.close()
