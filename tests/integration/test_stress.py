"""Stress and concurrency tests: the runtime under contention.

These push thread-safety seams the unit tests touch only lightly:
concurrent creation from many application threads, many POs hammering one
IO, interleaved sync/async under aggregation, and rapid create/release
churn.
"""

from __future__ import annotations

import threading

import pytest

import repro.core as parc
from repro.core import Farm, GrainPolicy


@parc.parallel(
    name="stress.Counter",
    async_methods=["bump_many"],
    sync_methods=["value", "add_and_get"],
)
class Counter:
    def __init__(self):
        self.count = 0

    def bump_many(self, n):
        for _ in range(n):
            self.count += 1

    def value(self):
        return self.count

    def add_and_get(self, n):
        self.count += n
        return self.count


class TestConcurrentClients:
    def test_many_threads_create_and_use_pos(self, runtime):
        errors: list[BaseException] = []
        results: list[int] = []
        lock = threading.Lock()

        def worker(thread_index):
            try:
                counter = parc.new(Counter)
                for _ in range(10):
                    counter.bump_many(5)
                value = counter.value()
                counter.parc_release()
                with lock:
                    results.append(value)
            except BaseException as exc:  # noqa: BLE001
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not errors
        assert results == [50] * 8

    def test_many_threads_hammer_one_io(self, runtime):
        shared = parc.new(Counter)
        errors: list[BaseException] = []

        def hammer():
            try:
                for _ in range(25):
                    shared.bump_many(2)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert not errors
        # Serial execution in the IO: no lost updates, ever.
        assert shared.value() == 6 * 25 * 2
        shared.parc_release()

    def test_sync_calls_from_many_threads_are_atomic(self, runtime):
        shared = parc.new(Counter)
        seen: list[int] = []
        lock = threading.Lock()

        def caller():
            for _ in range(20):
                value = shared.add_and_get(1)
                with lock:
                    seen.append(value)

        threads = [threading.Thread(target=caller) for _ in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        # add_and_get is serialized at the IO: all results distinct.
        assert sorted(seen) == list(range(1, 101))
        shared.parc_release()


class TestChurn:
    def test_create_release_churn(self, plain_runtime):
        for _round in range(40):
            counter = parc.new(Counter)
            counter.bump_many(1)
            assert counter.value() == 1
            counter.parc_release()
        # Nothing should linger after release.
        stats = parc.current_runtime().stats()
        assert all(node["queued"] == 0 for node in stats)

    def test_farm_churn(self, plain_runtime):
        for _round in range(10):
            with Farm(Counter, workers=3) as farm:
                farm.scatter("bump_many", [3] * 9)
                assert sum(farm.collect("value")) == 27


class TestHeavyAggregation:
    def test_large_burst_through_small_buffers(self):
        parc.init(nodes=2, grain=GrainPolicy(max_calls=3))
        try:
            counter = parc.new(Counter)
            for _ in range(500):
                counter.bump_many(1)
            assert counter.value() == 500
            counter.parc_release()
        finally:
            parc.shutdown()

    def test_alternating_sync_async_under_aggregation(self):
        parc.init(nodes=2, grain=GrainPolicy(max_calls=7))
        try:
            counter = parc.new(Counter)
            expected = 0
            for round_index in range(60):
                counter.bump_many(2)
                expected += 2
                if round_index % 5 == 0:
                    assert counter.value() == expected
            assert counter.value() == expected
            counter.parc_release()
        finally:
            parc.shutdown()

    @pytest.mark.parametrize("nodes", [1, 4])
    def test_wide_fanout(self, nodes):
        parc.init(nodes=nodes, grain=GrainPolicy(max_calls=4))
        try:
            counters = [parc.new(Counter) for _ in range(24)]
            for counter in counters:
                counter.bump_many(10)
            assert [counter.value() for counter in counters] == [10] * 24
            for counter in counters:
                counter.parc_release()
        finally:
            parc.shutdown()
