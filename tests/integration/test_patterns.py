"""Integration tests for the Farm and Pipeline skeletons."""

from __future__ import annotations

import pytest

import repro.core as parc
from repro.core import Farm, Pipeline
from repro.errors import ScooppError


@parc.parallel(
    name="patterns.Tally",
    async_methods=["add", "reset"],
    sync_methods=["total", "double"],
)
class Tally:
    def __init__(self, start=0):
        self.value = start

    def add(self, amount):
        self.value += amount

    def reset(self):
        self.value = 0

    def total(self):
        return self.value

    def double(self, x):
        return x * 2


@parc.parallel(
    name="patterns.Stage",
    async_methods=["feed", "set_next"],
    sync_methods=["seen"],
)
class Stage:
    """Pipeline stage: tags items and forwards them."""

    def __init__(self, tag):
        self.tag = tag
        self.items = []
        self.next_stage = None

    def set_next(self, stage):
        self.next_stage = stage

    def feed(self, item):
        tagged = f"{item}|{self.tag}"
        self.items.append(tagged)
        if self.next_stage is not None:
            self.next_stage.feed(tagged)

    def seen(self):
        return list(self.items)


class TestFarm:
    def test_scatter_and_collect(self, runtime):
        with Farm(Tally, workers=3) as farm:
            assert len(farm) == 3
            dispatched = farm.scatter("add", range(1, 31))
            assert dispatched == 30
            totals = farm.collect("total")
            assert sum(totals) == sum(range(1, 31))
            assert len(totals) == 3

    def test_broadcast(self, runtime):
        with Farm(Tally, workers=3, start=5) as farm:
            farm.broadcast("add", 10)
            assert farm.collect("total") == [15, 15, 15]
            farm.broadcast("reset")
            assert farm.collect("total") == [0, 0, 0]

    def test_map_preserves_order(self, runtime):
        with Farm(Tally, workers=4) as farm:
            assert farm.map("double", list(range(10))) == [
                x * 2 for x in range(10)
            ]

    def test_map_empty(self, runtime):
        with Farm(Tally, workers=2) as farm:
            assert farm.map("double", []) == []

    def test_wait_barrier(self, runtime):
        with Farm(Tally, workers=2) as farm:
            farm.scatter("add", [1] * 20)
            farm.wait()
            assert sum(farm.collect("total")) == 20

    def test_constructor_args_forwarded(self, runtime):
        with Farm(Tally, workers=2, start=100) as farm:
            assert farm.collect("total") == [100, 100]

    def test_closed_farm_rejects_use(self, runtime):
        farm = Farm(Tally, workers=1)
        farm.close()
        farm.close()  # idempotent
        with pytest.raises(ScooppError, match="closed"):
            farm.scatter("add", [1])

    def test_validation(self, runtime):
        with pytest.raises(ScooppError):
            Farm(Tally, workers=0)


class TestPipeline:
    def test_items_flow_through_all_stages(self, runtime):
        with Pipeline([(Stage, ("a",)), (Stage, ("b",)), (Stage, ("c",))]) as pipe:
            assert len(pipe) == 3
            pipe.feed_all(["x", "y"])
            tail_items = pipe.call_last("seen")
            assert tail_items == ["x|a|b|c", "y|a|b|c"]

    def test_intermediate_stages_see_partial_tags(self, runtime):
        with Pipeline([(Stage, ("first",)), (Stage, ("second",))]) as pipe:
            pipe.feed("item")
            pipe.drain()
            assert pipe.head.seen() == ["item|first"]
            assert pipe.tail.seen() == ["item|first|second"]

    def test_single_stage(self, runtime):
        with Pipeline([(Stage, ("only",))]) as pipe:
            pipe.feed(1)
            assert pipe.call_last("seen") == ["1|only"]

    def test_order_preserved_through_chain(self, runtime):
        with Pipeline([(Stage, ("s",)), (Stage, ("t",))]) as pipe:
            pipe.feed_all(range(25))
            tail_items = pipe.call_last("seen")
            assert tail_items == [f"{i}|s|t" for i in range(25)]

    def test_empty_stage_list_rejected(self, runtime):
        with pytest.raises(ScooppError):
            Pipeline([])

    def test_closed_pipeline_rejects_use(self, runtime):
        pipe = Pipeline([(Stage, ("x",))])
        pipe.close()
        with pytest.raises(ScooppError, match="closed"):
            pipe.feed(1)

    def test_prime_sieve_as_pipeline_pattern(self, runtime):
        """The paper's running example, rebuilt on the skeleton."""

        @parc.parallel(
            name="patterns.Sieve",
            async_methods=["feed", "set_next"],
            sync_methods=["survivors"],
        )
        class SieveStage:
            def __init__(self, prime):
                self.prime = prime
                self.next_stage = None
                self.overflow = []

            def set_next(self, stage):
                self.next_stage = stage

            def feed(self, n):
                if n % self.prime == 0:
                    return
                if self.next_stage is not None:
                    self.next_stage.feed(n)
                else:
                    self.overflow.append(n)

            def survivors(self):
                return list(self.overflow)

        with Pipeline(
            [(SieveStage, (2,)), (SieveStage, (3,)), (SieveStage, (5,))]
        ) as pipe:
            pipe.feed_all(range(2, 50))
            survivors = pipe.call_last("survivors")
            expected = [
                n for n in range(2, 50)
                if n % 2 and n % 3 and n % 5
            ]
            assert survivors == expected
