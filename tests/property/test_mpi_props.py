"""Property-based tests: MPI matching semantics under random schedules."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import ANY_TAG, SUM, run_mpi
from repro.mpi.p2p import Envelope, Mailbox

messages = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),  # source
        st.integers(min_value=0, max_value=3),  # tag
        st.binary(max_size=8),
    ),
    max_size=30,
)


class TestMailboxProperties:
    @given(messages)
    @settings(max_examples=150, deadline=None)
    def test_collect_all_preserves_per_pair_order(self, schedule):
        mailbox = Mailbox()
        for source, tag, payload in schedule:
            mailbox.deposit(Envelope(source=source, tag=tag, payload=payload))
        # Drain fully matching (source, tag) exactly; per-(source, tag)
        # order must be deposit order.
        from collections import defaultdict

        expected = defaultdict(list)
        for source, tag, payload in schedule:
            expected[(source, tag)].append(payload)
        received = defaultdict(list)
        for source, tag, _payload in schedule:
            envelope = mailbox.collect(source, tag, timeout=1)
            received[(source, tag)].append(envelope.payload)
        # Each (source, tag) stream was consumed exactly once, in order...
        for key, payloads in expected.items():
            assert received[key] == payloads
        # ...and nothing remains.
        assert mailbox.pending() == 0

    @given(messages)
    @settings(max_examples=100, deadline=None)
    def test_wildcard_drain_sees_arrival_order(self, schedule):
        mailbox = Mailbox()
        for source, tag, payload in schedule:
            mailbox.deposit(Envelope(source=source, tag=tag, payload=payload))
        drained = [
            mailbox.collect(-1, ANY_TAG, timeout=1) for _ in schedule
        ]
        assert [
            (envelope.source, envelope.tag, envelope.payload)
            for envelope in drained
        ] == schedule

    @given(messages, st.integers(min_value=0, max_value=3))
    @settings(max_examples=100, deadline=None)
    def test_selective_receive_never_steals(self, schedule, chosen_tag):
        mailbox = Mailbox()
        for source, tag, payload in schedule:
            mailbox.deposit(Envelope(source=source, tag=tag, payload=payload))
        matching = [p for s, t, p in schedule if t == chosen_tag]
        for expected_payload in matching:
            envelope = mailbox.collect(-1, chosen_tag, timeout=1)
            assert envelope.payload == expected_payload
        others = len(schedule) - len(matching)
        assert mailbox.pending() == others


class TestCollectiveProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(st.integers(min_value=-100, max_value=100), min_size=6, max_size=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_allreduce_sum_equals_python_sum(self, size, values):
        def main(comm):
            return comm.allreduce(values[comm.rank], SUM)

        expected = sum(values[:size])
        assert run_mpi(size, main) == [expected] * size

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_bcast_any_root(self, size, root_seed):
        root = root_seed % size

        def main(comm):
            value = ("payload", root) if comm.rank == root else None
            return comm.bcast(value, root=root)

        assert run_mpi(size, main) == [("payload", root)] * size
