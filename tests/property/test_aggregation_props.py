"""Property-based tests: grain aggregation preserves program order.

The paper's method-call aggregation buffers and repacks calls; the
invariant worth machine-checking is that NO interleaving of asynchronous
posts, synchronous calls, explicit flushes and max_calls settings can ever
lose a call or reorder the program.
"""

from __future__ import annotations

import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grain import AdaptiveGrainController, GrainPolicy
from repro.core.impl import ImplementationObject
from repro.core.proxy_object import RemoteGrain


class Journal:
    def __init__(self):
        self.entries = []
        self.lock = threading.Lock()

    def write(self, value):
        with self.lock:
            self.entries.append(value)

    def note(self, value):
        with self.lock:
            self.entries.append(("note", value))

    def read(self):
        with self.lock:
            return list(self.entries)


operations = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("note"), st.integers(min_value=0, max_value=99)),
        st.tuples(st.just("sync"), st.just(0)),
        st.tuples(st.just("flush"), st.just(0)),
    ),
    max_size=40,
)


class TestAggregationOrdering:
    @given(ops=operations, max_calls=st.integers(min_value=1, max_value=9))
    @settings(max_examples=60, deadline=None)
    def test_no_interleaving_loses_or_reorders(self, ops, max_calls):
        journal = Journal()
        impl = ImplementationObject(journal, "prop.Journal")
        grain = RemoteGrain(impl, max_calls=max_calls)
        expected = []
        try:
            for operation, value in ops:
                if operation == "write":
                    grain.post("write", (value,), {})
                    expected.append(value)
                elif operation == "note":
                    grain.post("note", (value,), {})
                    expected.append(("note", value))
                elif operation == "flush":
                    grain.flush()
                else:
                    observed = grain.call("read", (), {})
                    assert observed == expected
            grain.drain()
            assert journal.read() == expected
        finally:
            grain.dispose()

    @given(
        counts=st.lists(
            st.integers(min_value=1, max_value=30), min_size=1, max_size=5
        ),
        max_calls=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_batching_never_changes_totals(self, counts, max_calls):
        journal = Journal()
        impl = ImplementationObject(journal, "prop.Journal")
        grain = RemoteGrain(impl, max_calls=max_calls)
        try:
            total = 0
            for round_index, count in enumerate(counts):
                for _ in range(count):
                    grain.post("write", (round_index,), {})
                total += count
            grain.drain()
            assert len(journal.read()) == total
        finally:
            grain.dispose()


class TestGrainDecisionProperties:
    @given(
        overhead=st.floats(min_value=1e-6, max_value=1.0),
        exec_time=st.floats(min_value=1e-9, max_value=10.0),
        cap=st.integers(min_value=1, max_value=1024),
    )
    @settings(max_examples=200, deadline=None)
    def test_decisions_always_valid(self, overhead, exec_time, cap):
        controller = AdaptiveGrainController(
            overhead_s=overhead, max_calls_cap=cap, min_samples=1
        )
        controller.observe_execution("cls", exec_time)
        decision = controller.decide("cls")
        assert 1 <= decision.max_calls <= cap
        assert isinstance(decision.agglomerate, bool)

    @given(
        slow=st.floats(min_value=1e-4, max_value=1.0),
        speedup=st.floats(min_value=2.0, max_value=1000.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_cheaper_methods_pack_at_least_as_much(self, slow, speedup):
        fast = slow / speedup
        controller = AdaptiveGrainController(
            overhead_s=1e-3, max_calls_cap=512, min_samples=1
        )
        controller.observe_execution("slow", slow)
        controller.observe_execution("fast", fast)
        slow_decision = controller.decide("slow")
        fast_decision = controller.decide("fast")
        if not (slow_decision.agglomerate or fast_decision.agglomerate):
            assert fast_decision.max_calls >= slow_decision.max_calls

    @given(st.floats(min_value=1e-9, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_static_policy_ignores_observations(self, exec_time):
        policy = GrainPolicy(max_calls=7)
        assert policy.decide("anything").max_calls == 7
