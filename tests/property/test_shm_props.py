"""Property-based tests: shm ring byte-stream integrity under fuzzing.

The ring is an SPSC byte stream with monotonic u64 indices; whatever
interleaving of writes and reads happens, the bytes must come out in
order, exactly once, across any number of physical wrap-arounds.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.shm.ring import client_rings, init_segment, segment_size, server_rings

RING = 32  # tiny: nearly every example wraps


def make_pair(ring_size=RING):
    buf = memoryview(bytearray(segment_size(ring_size)))
    init_segment(buf, ring_size)
    tx, _ = client_rings(buf, ring_size)
    _, rx = server_rings(buf, ring_size)
    return tx, rx


class TestStreamProperties:
    @given(st.lists(st.binary(min_size=0, max_size=2 * RING), max_size=12))
    @settings(max_examples=150, deadline=None)
    def test_chunked_writes_reassemble(self, chunks):
        """Any chunking in, any chunking out: the stream is preserved."""
        tx, rx = make_pair()
        expected = b"".join(chunks)
        received = bytearray()
        pending = list(chunks)
        src = memoryview(b"")
        offset = 0
        stalled = 0
        while len(received) < len(expected) or pending or offset < len(src):
            popped = False
            if offset == len(src) and pending:
                src = memoryview(pending.pop(0))
                offset = 0
                popped = True
            wrote = tx.write_some(src[offset:]) if offset < len(src) else 0
            offset += wrote
            out = bytearray(7)  # odd read size: misaligned wraps
            count = rx.read_into(out)
            received += out[:count]
            progress = popped or wrote or count
            stalled = 0 if progress else stalled + 1
            assert stalled < 3, "ring deadlocked with data outstanding"
        assert received == expected

    @given(
        st.binary(min_size=1, max_size=RING),
        st.integers(min_value=0, max_value=10 * RING),
    )
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_at_arbitrary_ring_offset(self, payload, advance):
        """Payloads survive regardless of where the indices sit."""
        tx, rx = make_pair()
        # Slide the indices forward so the payload lands at an arbitrary
        # physical position (including straddling the boundary).
        scratch = bytearray(RING)
        moved = 0
        while moved < advance:
            step = min(advance - moved, RING)
            assert tx.write_some(bytes(step)) == step
            assert rx.read_into(memoryview(scratch)[:step]) == step
            moved += step
        assert tx.write_some(payload) == len(payload)
        out = bytearray(len(payload))
        assert rx.read_into(out) == len(payload)
        assert out == payload

    @given(
        st.binary(min_size=1, max_size=RING),
        st.integers(min_value=0, max_value=RING - 1),
    )
    @settings(max_examples=150, deadline=None)
    def test_view_consume_matches_read(self, payload, start_offset):
        """The zero-copy view path sees the same bytes read_into would."""
        tx, rx = make_pair()
        scratch = bytearray(RING)
        if start_offset:
            tx.write_some(bytes(start_offset))
            rx.read_into(memoryview(scratch)[:start_offset])
        tx.write_some(payload)
        if rx.can_view(len(payload)):
            view = rx.view(len(payload))
            got = bytes(view)
            view.release()
            rx.consume(len(payload))
        else:
            out = bytearray(len(payload))
            rx.read_into(out)
            got = bytes(out)
        assert got == payload
        assert rx.used() == 0


class ShmRingMachine(RuleBasedStateMachine):
    """Stateful fuzz: interleaved writes/reads against a Python model."""

    def __init__(self):
        super().__init__()
        self.tx, self.rx = make_pair()
        self.model = bytearray()  # bytes written but not yet read

    @rule(data=st.binary(min_size=0, max_size=RING + 8))
    def write(self, data):
        wrote = self.tx.write_some(data)
        assert wrote == min(len(data), RING - len(self.model))
        self.model += data[:wrote]

    @rule(count=st.integers(min_value=0, max_value=RING + 8))
    def read(self, count):
        out = bytearray(count)
        got = self.rx.read_into(out)
        assert got == min(count, len(self.model))
        assert out[:got] == self.model[:got]
        del self.model[:got]

    @rule(count=st.integers(min_value=1, max_value=RING))
    def view_consume(self, count):
        if count <= len(self.model) and self.rx.can_view(count):
            view = self.rx.view(count)
            assert bytes(view) == bytes(self.model[:count])
            view.release()
            self.rx.consume(count)
            del self.model[:count]

    @invariant()
    def occupancy_agrees(self):
        assert self.rx.used() == len(self.model)
        assert self.tx.space() == RING - len(self.model)


TestShmRingMachine = ShmRingMachine.TestCase
TestShmRingMachine.settings = settings(max_examples=60, deadline=None)
