"""Fuzz robustness: malformed wire input must fail loudly, never crash.

A remoting endpoint decodes attacker-controllable bytes; the contract is
that any malformed input raises a library error
(:class:`~repro.errors.ParcError` subclass), never an unhandled
``IndexError``/``UnicodeDecodeError``/``MemoryError``-style surprise, and
never executes user code.
"""

from __future__ import annotations

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.errors import ParcError
from repro.mpi import INT, UnpackBuffer
from repro.serialization import BinaryFormatter, SoapFormatter

binary = BinaryFormatter()
soap = SoapFormatter()


class TestBinaryFuzz:
    @given(st.binary(max_size=256))
    @settings(max_examples=300, deadline=None)
    @example(b"")
    @example(b"O")
    @example(b"L\xff\xff\xff\xff\x0f")
    @example(b"R\x00")
    def test_random_bytes_never_crash(self, data):
        try:
            binary.loads(data)
        except ParcError:
            pass  # the only acceptable failure mode

    @given(st.binary(max_size=128), st.integers(min_value=0, max_value=120))
    @settings(max_examples=200, deadline=None)
    def test_truncated_valid_payloads(self, raw, cut):
        valid = binary.dumps(["seed", raw, {"k": 1}])
        mutated = valid[: min(cut, len(valid))]
        if mutated == valid:
            return
        try:
            binary.loads(mutated)
        except ParcError:
            pass

    @given(
        st.binary(max_size=128),
        st.integers(min_value=0, max_value=127),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=200, deadline=None)
    def test_bitflipped_valid_payloads(self, raw, position, replacement):
        valid = bytearray(binary.dumps([raw, [1, 2.5, None]]))
        if not valid:
            return
        valid[position % len(valid)] = replacement
        try:
            binary.loads(bytes(valid))
        except ParcError:
            pass


class TestSoapFuzz:
    @given(st.binary(max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_random_bytes_never_crash(self, data):
        try:
            soap.loads(data)
        except ParcError:
            pass

    @given(st.text(max_size=200))
    @settings(max_examples=200, deadline=None)
    @example('<v t="list" n="9999999">')
    @example('<v t="obj" c="os.system" n="0"></v>')
    def test_random_text_in_envelope_never_crashes(self, body):
        payload = (
            '<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/'
            f'envelope/"><soap:Body>{body}</soap:Body></soap:Envelope>'
        ).encode("utf-8")
        try:
            soap.loads(payload)
        except ParcError:
            pass

    def test_unregistered_class_name_never_instantiates(self):
        """Decoding must not import/execute by name (no pickle behaviour)."""
        payload = (
            '<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/'
            'envelope/"><soap:Body><v t="obj" c="subprocess.Popen" n="0">'
            "</v></soap:Body></soap:Envelope>"
        ).encode()
        try:
            soap.loads(payload)
            raise AssertionError("should have rejected unknown class")
        except ParcError as exc:
            assert "subprocess.Popen" in str(exc)


class TestUnpackFuzz:
    @given(st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_random_pack_buffers(self, data):
        try:
            unpacker = UnpackBuffer(data)
            while unpacker.remaining:
                unpacker.unpack(INT)
        except ParcError:
            pass


class TestFaultyChannelFuzz:
    """Chaos contract: a faulted call errors as a ParcError or succeeds
    with the exact payload — never hangs, never yields corrupt data."""

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_every_seed_completes_or_raises_parc_error(self, seed):
        from repro.channels import LoopbackChannel
        from repro.chaos import FaultyChannel, plan_from_percentages

        plan = plan_from_percentages(
            seed=seed,
            connect_refused=0.05,
            send_drop=0.05,
            latency=0.05,
            recv_drop=0.05,
            disconnect=0.05,
            truncate=0.05,
            latency_s=(0.0, 0.001),
        )
        channel = FaultyChannel(LoopbackChannel(), plan=plan)
        binding = channel.listen(
            "auto",
            lambda path, body, headers: binary.dumps(
                ["ok", binary.loads(body)]
            ),
        )
        try:
            for value in range(30):
                request = binary.dumps(value)
                try:
                    raw = channel.call(binding.authority, "echo", request)
                    decoded = binary.loads(raw)
                except ParcError:
                    continue  # injected fault or truncation surfaced loudly
                assert decoded == ["ok", value], "corrupt round-trip"
        finally:
            channel.close()

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        payload=st.binary(min_size=1, max_size=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_truncation_always_decodes_to_error(self, seed, payload):
        from repro.channels import LoopbackChannel
        from repro.chaos import FaultyChannel, plan_from_percentages

        plan = plan_from_percentages(seed=seed, truncate=1.0)
        channel = FaultyChannel(LoopbackChannel(), plan=plan)
        binding = channel.listen(
            "auto", lambda path, body, headers: binary.dumps([body])
        )
        try:
            raw = channel.call(binding.authority, "echo", payload)
            try:
                decoded = binary.loads(raw)
            except ParcError:
                return  # truncated frame rejected by the formatter: good
            # A truncation that still decodes must at least not fabricate
            # a different-but-valid answer for the caller's payload.
            assert decoded != [payload], "truncation silently dropped"
        finally:
            channel.close()
