"""Property-based tests for the JGF kernels (cipher laws, SOR, MC)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.jgf.crypt import (
    _mul,
    _mul_inverse,
    expand_key,
    idea_decrypt,
    idea_encrypt,
    invert_key,
)
from repro.apps.jgf.montecarlo import simulate_path
from repro.apps.jgf.sor import make_grid, sor, sor_checksum
from repro.apps.jgf.sparsematmult import random_sparse_matrix, sparse_matmult

user_keys = st.lists(
    st.integers(min_value=0, max_value=0xFFFF), min_size=8, max_size=8
)
blocks = st.binary(min_size=8, max_size=8 * 16).filter(
    lambda data: len(data) % 8 == 0
)
idea_words = st.integers(min_value=0, max_value=0xFFFF)


class TestIdeaAlgebra:
    @given(idea_words)
    @settings(max_examples=300, deadline=None)
    def test_mul_inverse_law(self, x):
        assert _mul(x, _mul_inverse(x)) == 1

    @given(idea_words, idea_words)
    @settings(max_examples=300, deadline=None)
    def test_mul_commutative(self, a, b):
        assert _mul(a, b) == _mul(b, a)

    @given(idea_words, idea_words, idea_words)
    @settings(max_examples=200, deadline=None)
    def test_mul_associative(self, a, b, c):
        assert _mul(_mul(a, b), c) == _mul(a, _mul(b, c))

    @given(idea_words)
    @settings(max_examples=100, deadline=None)
    def test_identity_element(self, x):
        assert _mul(x, 1) == x


class TestIdeaCipherProperties:
    @given(user_keys, blocks)
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_any_key_any_data(self, user_key, data):
        key = expand_key(user_key)
        assert idea_decrypt(idea_encrypt(data, key), key) == data

    @given(user_keys)
    @settings(max_examples=50, deadline=None)
    def test_double_inversion_is_identity(self, user_key):
        key = expand_key(user_key)
        assert invert_key(invert_key(key)) == key

    @given(user_keys, blocks)
    @settings(max_examples=50, deadline=None)
    def test_encryption_is_permutation(self, user_key, data):
        key = expand_key(user_key)
        ciphertext = idea_encrypt(data, key)
        assert len(ciphertext) == len(data)
        # Injectivity on the tested block: decrypt is a left inverse.
        assert idea_decrypt(ciphertext, key) == data


class TestSorProperties:
    @given(
        st.integers(min_value=3, max_value=12),
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_boundary_invariant(self, size, iterations, seed):
        grid = make_grid(size, seed=seed)
        top, bottom = list(grid[0]), list(grid[-1])
        sor(grid, iterations)
        assert grid[0] == top
        assert grid[-1] == bottom

    @given(st.integers(min_value=3, max_value=10), st.integers(min_value=0, max_value=99))
    @settings(max_examples=40, deadline=None)
    def test_zero_iterations_is_identity(self, size, seed):
        grid = make_grid(size, seed=seed)
        reference = [list(row) for row in grid]
        sor(grid, 0)
        assert grid == reference

    @given(st.integers(min_value=3, max_value=9), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_checksum_finite(self, size, iterations):
        import math

        grid = make_grid(size)
        sor(grid, iterations)
        assert math.isfinite(sor_checksum(grid))


class TestSparseProperties:
    @given(
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_output_dimension(self, size, nnz, seed):
        nnz = min(nnz, size)
        matrix = random_sparse_matrix(size, nnz, seed=seed)
        result = sparse_matmult(matrix, [1.0] * size)
        assert len(result) == size

    @given(st.integers(min_value=2, max_value=15))
    @settings(max_examples=30, deadline=None)
    def test_zero_vector_fixed_point(self, size):
        matrix = random_sparse_matrix(size, min(3, size))
        assert sparse_matmult(matrix, [0.0] * size) == [0.0] * size

    @given(st.integers(min_value=2, max_value=15), st.integers(min_value=0, max_value=500))
    @settings(max_examples=40, deadline=None)
    def test_result_normalized(self, size, seed):
        matrix = random_sparse_matrix(size, min(3, size), seed=seed)
        result = sparse_matmult(matrix, [1.0] * size, iterations=2)
        assert max(abs(value) for value in result) <= 1.0 + 1e-12


class TestMonteCarloProperties:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_path_deterministic_in_index(self, index, steps, seed):
        args = (index, steps, 100.0, 0.0005, 0.012, seed)
        assert simulate_path(*args) == simulate_path(*args)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_return_above_minus_one(self, index, steps):
        value = simulate_path(index, steps, 100.0, 0.0, 0.02)
        assert value > -1.0
