"""Property tests: compiled codecs vs the generic binary formatter.

Satellite coverage for the wire fast path — fuzzes registered-class
round-trips and asserts *byte-level* interop in both directions (old
encoder → new decoder, new encoder → old decoder), plus graceful fallback
behaviour on unregistered classes and corrupted payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import SerializationError, UnknownTypeError
from repro.remoting.messages import ReturnBatch
from repro.serialization import (
    BinaryFormatter,
    CodecRegistry,
    FastBinaryFormatter,
    serializable,
)
from repro.serialization.codec import pack_result_column, unpack_result_column


@serializable(name="test.codecprops.Record")
@dataclass
class Record:
    count: int
    ratio: float
    label: str
    blob: bytes
    flag: bool
    payload: object = None


@serializable(name="test.codecprops.Pair")
@dataclass
class Pair:
    left: Record
    right: Record
    tags: list = field(default_factory=list)


class NeverRegistered:
    pass


_codecs = CodecRegistry()
_codecs.register(Record)
_codecs.register(Pair)

generic = BinaryFormatter()
fast = FastBinaryFormatter(codecs=_codecs)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=30),
    st.binary(max_size=30),
)

payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
        st.tuples(children, children),
    ),
    max_leaves=12,
)

records = st.builds(
    Record,
    count=st.integers(),
    ratio=st.floats(allow_nan=False),
    label=st.text(max_size=40),
    blob=st.binary(max_size=40),
    flag=st.booleans(),
    payload=payloads,
)

pairs = st.builds(
    Pair,
    left=records,
    right=records,
    tags=st.lists(scalars, max_size=4),
)

compiled_values = st.one_of(records, pairs, st.lists(records, max_size=3))


@settings(max_examples=150, deadline=None)
@given(compiled_values)
def test_compiled_and_generic_encodings_are_byte_identical(value):
    assert fast.dumps(value) == generic.dumps(value)


@settings(max_examples=150, deadline=None)
@given(compiled_values)
def test_old_encoder_new_decoder_roundtrip(value):
    assert fast.loads(generic.dumps(value)) == value


@settings(max_examples=150, deadline=None)
@given(compiled_values)
def test_new_encoder_old_decoder_roundtrip(value):
    assert generic.loads(fast.dumps(value)) == value


@settings(max_examples=100, deadline=None)
@given(payloads)
def test_generic_values_stay_byte_identical_without_codecs(value):
    assert fast.dumps(value) == generic.dumps(value)
    assert fast.loads(generic.dumps(value)) == value


@settings(max_examples=60, deadline=None)
@given(records, st.data())
def test_corrupted_payloads_raise_serialization_errors(value, data):
    payload = bytearray(fast.dumps(value))
    cut = data.draw(st.integers(min_value=0, max_value=len(payload)))
    flip = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
    payload[flip] ^= data.draw(st.integers(min_value=1, max_value=255))
    try:
        fast.loads(bytes(payload[:cut]))
    except SerializationError:
        pass  # the only acceptable failure mode
    # Any successful decode of a mutated payload is fine too (the flip may
    # have landed in a value byte) — the contract is "no raw exceptions".


def test_unregistered_class_fallback_matches_generic():
    with pytest.raises(UnknownTypeError):
        generic.dumps(NeverRegistered())
    with pytest.raises(UnknownTypeError):
        fast.dumps(NeverRegistered())


# -- returnN reply aggregation ------------------------------------------------

result_slots = st.lists(
    st.one_of(
        st.floats(allow_nan=False),
        st.integers(),
        st.text(max_size=20),
        st.none(),
    ),
    max_size=16,
)

error_slots = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),
        st.sampled_from(["ValueError", "OverloadError", "KeyError"]),
        st.text(max_size=30),
        st.text(max_size=60),
    ),
    max_size=4,
)


@settings(max_examples=150, deadline=None)
@given(result_slots, error_slots)
def test_returnn_batches_are_byte_identical_across_formatters(results, errors):
    """A ReturnBatch travels the wire identically fast or legacy.

    This is the reply-side interop guarantee: a new server's batched
    reply decodes on any peer running either formatter, so the returnN
    negotiation only needs to decide *whether* to batch, never how to
    encode it.
    """
    batch = ReturnBatch(
        count=len(results),
        results=pack_result_column(results),
        errors=tuple(errors),
    )
    fast_bytes = fast.dumps(batch)
    assert fast_bytes == generic.dumps(batch)
    for decoder in (fast, generic):
        decoded = decoder.loads(fast_bytes)
        assert decoded.count == batch.count
        assert list(decoded.results) == list(batch.results)
        assert tuple(decoded.errors) == batch.errors


@settings(max_examples=150, deadline=None)
@given(result_slots)
def test_result_column_pack_unpack_is_the_identity(results):
    packed = pack_result_column(results)
    assert unpack_result_column(len(results), packed) == list(results)


@settings(max_examples=80, deadline=None)
@given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=32))
def test_all_float_results_pack_to_a_double_column(values):
    import array

    packed = pack_result_column(list(values))
    assert isinstance(packed, array.array) and packed.typecode == "d"
    assert unpack_result_column(len(values), packed) == list(values)


def test_result_column_length_mismatch_is_a_serialization_error():
    with pytest.raises(SerializationError):
        unpack_result_column(3, [1.0, 2.0])
