"""Property-based tests: both formatters over the full value domain."""

from __future__ import annotations

import array
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serialization import BinaryFormatter, SoapFormatter

binary = BinaryFormatter()
soap = SoapFormatter()

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),  # NaN breaks ==; tested separately
    st.text(),
    st.binary(max_size=64),
    st.complex_numbers(allow_nan=False, allow_infinity=True),
)

hashable_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)


def containers(children):
    return st.one_of(
        st.lists(children, max_size=6),
        st.dictionaries(hashable_values, children, max_size=6),
        st.tuples(children, children),
        st.sets(hashable_values, max_size=6),
        st.frozensets(hashable_values, max_size=6),
    )


values = st.recursive(scalars, containers, max_leaves=25)

int_arrays = st.lists(
    st.integers(min_value=-(2**31), max_value=2**31 - 1), max_size=200
).map(lambda items: array.array("i", items))


class TestBinaryProperties:
    @given(values)
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, value):
        assert binary.loads(binary.dumps(value)) == value

    @given(values)
    @settings(max_examples=100, deadline=None)
    def test_encoding_deterministic(self, value):
        assert binary.dumps(value) == binary.dumps(value)

    @given(int_arrays)
    @settings(max_examples=50, deadline=None)
    def test_int_array_roundtrip(self, payload):
        result = binary.loads(binary.dumps(payload))
        assert result == payload
        assert result.typecode == payload.typecode

    @given(int_arrays)
    @settings(max_examples=50, deadline=None)
    def test_int_array_overhead_bounded(self, payload):
        """Binary encoding of int arrays is near-raw (the MPI contrast)."""
        encoded = binary.dumps(payload)
        raw = len(payload.tobytes())
        assert len(encoded) <= raw + 16


class TestSoapProperties:
    @given(values)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip(self, value):
        assert soap.loads(soap.dumps(value)) == value

    @given(st.text())
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_text_roundtrips(self, text):
        assert soap.loads(soap.dumps(text)) == text

    @given(values)
    @settings(max_examples=100, deadline=None)
    def test_output_is_valid_utf8_markup(self, value):
        encoded = soap.dumps(value)
        text = encoded.decode("utf-8")
        assert text.count("<v") == text.count("</v") + text.count("/>")


class TestFormattersAgree:
    @given(values)
    @settings(max_examples=150, deadline=None)
    def test_same_value_both_ways(self, value):
        assert binary.loads(binary.dumps(value)) == soap.loads(soap.dumps(value))

    @given(st.floats(allow_nan=True, allow_infinity=True))
    @settings(max_examples=100, deadline=None)
    def test_floats_including_nan(self, value):
        for formatter in (binary, soap):
            result = formatter.loads(formatter.dumps(value))
            if math.isnan(value):
                assert math.isnan(result)
            else:
                assert result == value

    @given(values)
    @settings(max_examples=100, deadline=None)
    def test_soap_never_smaller_than_binary_by_much(self, value):
        """SOAP is the verbose encoding — it should essentially never win."""
        assert len(soap.dumps(value)) + 8 >= len(binary.dumps(value))


class TestSharedStructure:
    @given(st.lists(st.integers(), min_size=1, max_size=5))
    @settings(max_examples=50, deadline=None)
    def test_shared_list_identity_preserved(self, items):
        shared = list(items)
        graph = [shared, shared, [shared]]
        for formatter in (binary, soap):
            result = formatter.loads(formatter.dumps(graph))
            assert result[0] is result[1]
            assert result[2][0] is result[0]

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_deep_cycle_roundtrips(self, depth):
        root: list = []
        node = root
        for _ in range(depth):
            child: list = []
            node.append(child)
            node = child
        node.append(root)  # close the loop
        for formatter in (binary, soap):
            result = formatter.loads(formatter.dumps(root))
            probe = result
            for _ in range(depth):
                probe = probe[0]
            assert probe[0] is result
