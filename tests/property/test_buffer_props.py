"""Property-based tests: ByteBuffer invariants under arbitrary op sequences."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.errors import BufferStateError
from repro.nio import ByteBuffer


class TestSimpleProperties:
    @given(st.binary(max_size=128))
    @settings(max_examples=100, deadline=None)
    def test_put_flip_get_identity(self, data):
        buffer = ByteBuffer.allocate(len(data))
        buffer.put(data).flip()
        assert buffer.get(len(data)) == data

    @given(st.binary(max_size=64), st.integers(min_value=0, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_partial_drain_then_compact(self, data, drain_count):
        buffer = ByteBuffer.allocate(max(len(data), 1))
        buffer.put(data).flip()
        drained = min(drain_count, len(data))
        buffer.get(drained)
        buffer.compact()
        buffer.flip()
        assert buffer.get(len(data) - drained) == data[drained:]

    @given(st.lists(st.integers(min_value=-(2**31), max_value=2**31 - 1), max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_int_sequence_roundtrip(self, numbers):
        buffer = ByteBuffer.allocate(4 * len(numbers))
        for number in numbers:
            buffer.put_int(number)
        buffer.flip()
        assert [buffer.get_int() for _ in numbers] == numbers

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_wrap_then_rewind_is_idempotent(self, data):
        buffer = ByteBuffer.wrap(data)
        first = buffer.get(len(data))
        buffer.rewind()
        assert buffer.get(len(data)) == first == data


class BufferMachine(RuleBasedStateMachine):
    """Random op sequences can never violate 0<=pos<=lim<=cap."""

    def __init__(self):
        super().__init__()
        self.buffer = ByteBuffer.allocate(32)

    @rule(data=st.binary(max_size=16))
    def put(self, data):
        try:
            self.buffer.put(data)
        except BufferStateError:
            pass  # overflow is legal to *attempt*

    @rule(size=st.integers(min_value=0, max_value=16))
    def get(self, size):
        try:
            self.buffer.get(size)
        except BufferStateError:
            pass

    @rule()
    def flip(self):
        self.buffer.flip()

    @rule()
    def clear(self):
        self.buffer.clear()

    @rule()
    def compact(self):
        self.buffer.compact()

    @rule()
    def rewind(self):
        self.buffer.rewind()

    @rule()
    def mark_and_maybe_reset(self):
        self.buffer.mark()
        self.buffer.reset()

    @invariant()
    def state_invariant(self):
        assert 0 <= self.buffer.position <= self.buffer.limit <= self.buffer.capacity

    @invariant()
    def remaining_consistent(self):
        assert self.buffer.remaining() == self.buffer.limit - self.buffer.position
        assert self.buffer.has_remaining() == (self.buffer.remaining() > 0)


TestBufferMachine = BufferMachine.TestCase
