"""Property-based tests: pack/unpack buffers and the prime workloads."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.primes import is_prime, sieve
from repro.mpi import CHAR, DOUBLE, INT, LONG, PackBuffer, UnpackBuffer

int32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
int64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)

runs = st.lists(
    st.one_of(
        st.tuples(st.just(INT), st.lists(int32, min_size=1, max_size=8)),
        st.tuples(st.just(LONG), st.lists(int64, min_size=1, max_size=8)),
        st.tuples(
            st.just(DOUBLE),
            st.lists(
                st.floats(allow_nan=False, allow_infinity=False),
                min_size=1,
                max_size=8,
            ),
        ),
        st.tuples(st.just(CHAR), st.binary(min_size=1, max_size=16)),
    ),
    max_size=8,
)


class TestPackProperties:
    @given(runs)
    @settings(max_examples=200, deadline=None)
    def test_pack_unpack_in_order(self, typed_runs):
        packer = PackBuffer()
        for datatype, payload in typed_runs:
            packer.pack(payload, datatype)
        unpacker = UnpackBuffer(packer.getvalue())
        for datatype, payload in typed_runs:
            if datatype is CHAR:
                assert unpacker.unpack(CHAR) == payload
            else:
                count = len(payload)
                result = unpacker.unpack(datatype, count)
                if count == 1:
                    result = [result] if not isinstance(result, list) else result
                assert result == payload
        assert unpacker.remaining == 0

    @given(st.lists(int32, min_size=1, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_packed_size_is_linear(self, payload):
        packer = PackBuffer().pack(payload, INT)
        assert len(packer) == 1 + 4 + 4 * len(payload)


class TestPrimeProperties:
    @given(st.integers(min_value=0, max_value=2000))
    @settings(max_examples=100, deadline=None)
    def test_sieve_agrees_with_trial_division(self, limit):
        assert sieve(limit) == [n for n in range(2, limit + 1) if is_prime(n)]

    @given(st.integers(min_value=2, max_value=1000))
    @settings(max_examples=100, deadline=None)
    def test_sieve_monotone_in_limit(self, limit):
        shorter = sieve(limit - 1)
        longer = sieve(limit)
        assert longer[: len(shorter)] == shorter
        assert len(longer) - len(shorter) in (0, 1)

    @given(st.integers(min_value=2, max_value=5000))
    @settings(max_examples=100, deadline=None)
    def test_prime_factorization_closure(self, n):
        if is_prime(n):
            for divisor in range(2, min(n, 100)):
                assert n % divisor != 0 or divisor == n
        else:
            assert any(n % p == 0 for p in sieve(int(n**0.5) + 1)) or n < 2
