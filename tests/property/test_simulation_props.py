"""Property-based tests: farm simulator and network model laws."""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.benchlib.farmsim import simulate_farm
from repro.perfmodel import PlatformModel
from repro.perfmodel.network import payload_bandwidth, transfer_time

models = st.builds(
    PlatformModel,
    name=st.just("prop"),
    one_way_latency_s=st.floats(min_value=1e-6, max_value=0.1),
    wire_bandwidth_Bps=st.floats(min_value=1e3, max_value=1e9),
    wire_expansion=st.floats(min_value=1.0, max_value=4.0),
    compute_scale_float=st.floats(min_value=0.5, max_value=3.0),
)

chunk_lists = st.lists(
    st.floats(min_value=1e-4, max_value=2.0), min_size=1, max_size=30
)


class TestNetworkModelLaws:
    @given(models, st.floats(min_value=0, max_value=1e8))
    @settings(max_examples=200, deadline=None)
    def test_transfer_time_at_least_latency(self, model, size):
        assert transfer_time(model, size) >= model.one_way_latency_s

    @given(
        models,
        st.floats(min_value=1, max_value=1e7),
        st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_bandwidth_monotone_in_size(self, model, size, factor):
        assert payload_bandwidth(model, size * factor) >= payload_bandwidth(
            model, size
        ) * 0.999999

    @given(models, st.floats(min_value=1, max_value=1e8))
    @settings(max_examples=200, deadline=None)
    def test_bandwidth_below_asymptote(self, model, size):
        asymptote = model.wire_bandwidth_Bps / model.wire_expansion
        assert payload_bandwidth(model, size) <= asymptote * 1.000001


class TestFarmSimulatorLaws:
    @given(models, chunk_lists, st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_makespan_at_least_critical_path(self, model, chunks, workers):
        result = simulate_farm(workers, chunks, model, 100.0, 1000.0)
        longest_chunk = max(chunks) * model.compute_scale_float
        assert result.makespan_s >= longest_chunk

    @given(models, chunk_lists, st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_makespan_at_least_average_share(self, model, chunks, workers):
        result = simulate_farm(workers, chunks, model, 100.0, 1000.0)
        total_work = sum(chunks) * model.compute_scale_float
        assert result.makespan_s >= total_work / workers * 0.999999

    @given(models, chunk_lists)
    @settings(max_examples=100, deadline=None)
    def test_adding_a_worker_never_hurts(self, model, chunks):
        assume(model.thread_pool_limit is None)
        times = [
            simulate_farm(workers, chunks, model, 100.0, 1000.0).makespan_s
            for workers in (1, 2, 4)
        ]
        assert times[0] >= times[1] - 1e-9
        assert times[1] >= times[2] - 1e-9

    @given(models, chunk_lists, st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_busy_time_conserved(self, model, chunks, workers):
        result = simulate_farm(workers, chunks, model, 100.0, 1000.0)
        total_busy = sum(result.per_worker_busy_s)
        expected = sum(chunks) * model.compute_scale_float
        assert abs(total_busy - expected) < 1e-6

    @given(models, chunk_lists, st.integers(min_value=1, max_value=8))
    @settings(max_examples=100, deadline=None)
    def test_efficiency_in_unit_interval(self, model, chunks, workers):
        result = simulate_farm(workers, chunks, model, 100.0, 1000.0)
        assert 0.0 < result.efficiency <= 1.0 + 1e-9

    @given(models, chunk_lists, st.integers(min_value=1, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_pool_cap_never_helps(self, model, chunks, cap):
        free = simulate_farm(8, chunks, model, 100.0, 1000.0).makespan_s
        capped = simulate_farm(
            8, chunks, model, 100.0, 1000.0, pool_limit=cap
        ).makespan_s
        assert capped >= free - 1e-9
