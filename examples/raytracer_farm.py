#!/usr/bin/env python3
"""The paper's high-level benchmark: the farmed JGF ray tracer (§4).

Renders one frame sequentially, then with ParC# farms of growing size and
with the Java-RMI-analog farm, validating every image against the
sequential checksum and printing a Fig. 9-style timing table.  Absolute
times are this machine's pure-Python times — the paper-shape reproduction
lives in ``benchmarks/test_fig9_raytracer.py``, which uses the calibrated
platform models.

Run:  python examples/raytracer_farm.py [width] [height]
"""

import sys
import time

import repro.core as parc
from repro.apps.raytracer import (
    checksum,
    create_scene,
    farm_render,
    render,
    rmi_farm_render,
)
from repro.benchlib.tables import format_table
from repro.core import GrainPolicy


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    height = int(sys.argv[2]) if len(sys.argv) > 2 else 48
    grid = 2  # 8 spheres; the paper's 500x500/64-sphere frame is ~hours
    # in pure Python — see EXPERIMENTS.md for the scaling argument.

    scene = create_scene(grid)
    started = time.perf_counter()
    sequential = render(scene, width, height)
    seq_s = time.perf_counter() - started
    reference = checksum(sequential)
    print(f"sequential {width}x{height}: {seq_s:.2f}s checksum={reference}")

    rows = [["sequential", 1, round(seq_s, 3), "-"]]

    parc.init(nodes=4, grain=GrainPolicy(max_calls=2))
    try:
        for workers in (1, 2, 4):
            started = time.perf_counter()
            image = farm_render(workers, width, height, grid=grid)
            elapsed = time.perf_counter() - started
            ok = "ok" if checksum(image) == reference else "MISMATCH"
            rows.append([f"ParC# farm", workers, round(elapsed, 3), ok])
    finally:
        parc.shutdown()

    for workers in (1, 2):
        started = time.perf_counter()
        image = rmi_farm_render(workers, width, height, grid=grid)
        elapsed = time.perf_counter() - started
        ok = "ok" if checksum(image) == reference else "MISMATCH"
        rows.append(["RMI farm", workers, round(elapsed, 3), ok])

    print()
    print(
        format_table(
            ["implementation", "workers", "seconds", "checksum"],
            rows,
            title="Ray tracer farm (validated against sequential render)",
        )
    )


if __name__ == "__main__":
    main()
