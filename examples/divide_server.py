#!/usr/bin/env python3
"""The paper's Figs. 1-2 side by side: one remote class, two platforms.

The paper motivates C# remoting by converting a trivial ``DServer`` class
to a remote class first the Java RMI way (Fig. 1, five ceremonial steps)
and then the C# way (Fig. 2, two).  This example runs *both* analogs in
one process and prints the step-by-step contrast.

Run:  python examples/divide_server.py
"""

from repro.channels import TcpChannel
from repro.channels.services import ChannelServices
from repro.errors import RemoteException
from repro.remoting import (
    MarshalByRefObject,
    RemotingHost,
    WellKnownObjectMode,
)
from repro.rmi import Naming, Remote, UnicastRemoteObject, remote_method
from repro.rmi.registry import LocateRegistry
from repro.rmi.rmic import generate_stub_source


# ---------------------------------------------------------------- Fig. 1 ---
# Java RMI: interface extending Remote, methods declared remote (the
# 'throws RemoteException' analog), explicit export + registry + rmic.

class IDServer(Remote):
    @remote_method
    def divide(self, d1: float, d2: float) -> float:
        """Divide d1 by d2."""
        raise NotImplementedError


class DServerRmi(UnicastRemoteObject, IDServer):
    def divide(self, d1: float, d2: float) -> float:
        return d1 / d2


def run_rmi_version() -> None:
    print("=== Fig. 1: the Java RMI way ===")
    # Step 2: explicit instantiation + export + name registration.
    registry_runtime, _registry = LocateRegistry.create_registry()
    endpoint = registry_runtime.endpoint
    dsi = DServerRmi()  # export happens in the constructor
    Naming.rebind(f"rmi://{endpoint}/DivideServer", dsi)
    try:
        # Step 5: rmic generated a stub class for the interface.
        print("generated stub (rmic):")
        for line in generate_stub_source(IDServer).splitlines()[:8]:
            print(f"    {line}")
        # Step 3: the client contacts the name server.
        ds = Naming.lookup(f"rmi://{endpoint}/DivideServer", IDServer)
        # Step 4: every call site must handle the checked RemoteException.
        try:
            print(f"10 / 4 = {ds.divide(10.0, 4.0)}")
            ds.divide(1.0, 0.0)
        except RemoteException as exc:
            print(f"checked RemoteException: {exc}")
    finally:
        from repro.rmi.runtime import default_runtime

        default_runtime().unexport(dsi)
        registry_runtime.close()


# ---------------------------------------------------------------- Fig. 2 ---
# C# remoting: derive from MarshalByRefObject, register a well-known
# service type.  No checked exceptions, no stub generation, no explicit
# instance.

class DServer(MarshalByRefObject):
    def divide(self, d1: float, d2: float) -> float:
        return d1 / d2


def run_remoting_version() -> None:
    print("\n=== Fig. 2: the C# remoting way ===")
    server_services = ChannelServices()
    host = RemotingHost(name="divide-server", services=server_services)
    binding = host.listen(TcpChannel(), "127.0.0.1:0")  # TcpChannel(1050)
    host.register_well_known(
        DServer, "DivideServer", WellKnownObjectMode.SINGLETON
    )
    client_services = ChannelServices()
    client_services.register_channel(TcpChannel())
    client = RemotingHost(name="divide-client", services=client_services)
    try:
        # Activator.GetObject: a proxy appears with no tooling step.
        ds = client.get_object(f"tcp://{binding.authority}/DivideServer")
        print(f"10 / 4 = {ds.divide(10.0, 4.0)}")
        # Errors surface as ordinary (unchecked) exceptions.
        try:
            ds.divide(1.0, 0.0)
        except Exception as exc:
            print(f"unchecked remote error: {type(exc).__name__}")
    finally:
        client.close()
        host.close()


if __name__ == "__main__":
    run_rmi_version()
    run_remoting_version()
