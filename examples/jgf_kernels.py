#!/usr/bin/env python3
"""The JGF Section-2 kernel suite on the ParC# platform.

The paper evaluated with the JGF *ray tracer*; this example runs the rest
of the classic Java Grande Section-2 kernels — Series, SOR, Crypt,
SparseMatmult — each sequentially and farmed across parallel objects,
validating every parallel result bit-for-bit against the sequential one
(the JGF validation discipline).

Run:  python examples/jgf_kernels.py
"""

import copy
import time

import repro.core as parc
from repro.apps.jgf import (
    fourier_coefficients,
    idea_encrypt,
    make_key,
    parallel_crypt_roundtrip,
    parallel_fourier_coefficients,
    parallel_sor,
    parallel_sparse_matmult,
    random_sparse_matrix,
    sor,
    sparse_matmult,
)
from repro.apps.jgf.sor import make_grid
from repro.benchlib.tables import format_table
from repro.core import GrainPolicy

WORKERS = 3


def timed(fn, *args, **kwargs):
    started = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - started


def main() -> None:
    rows = []
    parc.init(nodes=WORKERS, grain=GrainPolicy(max_calls=2))
    try:
        # Series: Fourier coefficients of (x+1)^x.
        seq, seq_s = timed(fourier_coefficients, 12)
        par, par_s = timed(parallel_fourier_coefficients, 12, WORKERS)
        rows.append(["Series", round(seq_s, 3), round(par_s, 3),
                     "exact" if par == seq else "MISMATCH"])

        # SOR: red-black relaxation with halo exchange.
        grid = make_grid(24)
        reference = copy.deepcopy(grid)
        _, seq_s = timed(sor, reference, 8)
        par_grid, par_s = timed(parallel_sor, grid, 8, WORKERS)
        rows.append(["SOR", round(seq_s, 3), round(par_s, 3),
                     "exact" if par_grid == reference else "MISMATCH"])

        # Crypt: IDEA over 16 KB.
        key = make_key()
        data = bytes(range(256)) * 64
        ct, seq_s = timed(idea_encrypt, data, key)
        (par_ct, par_pt), par_s = timed(
            parallel_crypt_roundtrip, data, key, WORKERS
        )
        ok = "exact" if par_ct == ct and par_pt == data else "MISMATCH"
        rows.append(["Crypt", round(seq_s, 3), round(par_s, 3), ok])

        # SparseMatmult: iterated y = A·x.
        matrix = random_sparse_matrix(60, 6)
        x = [1.0] * 60
        seq_y, seq_s = timed(sparse_matmult, matrix, x, 5)
        par_y, par_s = timed(
            parallel_sparse_matmult, matrix, x, 5, WORKERS
        )
        rows.append(["SparseMatmult", round(seq_s, 3), round(par_s, 3),
                     "exact" if par_y == seq_y else "MISMATCH"])
    finally:
        parc.shutdown()

    print(
        format_table(
            ["kernel", "sequential (s)", f"{WORKERS}-worker farm (s)",
             "validation"],
            rows,
            title="JGF Section-2 kernels (parallel results validated "
            "against sequential)",
        )
    )
    print("\nFor the modeled cluster-scaling curves, run:\n"
          "  pytest benchmarks/test_ext_jgf_kernels.py -s -k print_table")


if __name__ == "__main__":
    main()
