#!/usr/bin/env python3
"""A remoting farm over the asyncio channel substrate (``aio://``).

The ``aio`` scheme is a drop-in transport: the server runs one event loop
instead of a thread per connection, and every concurrent caller shares a
single pipelined socket per peer, with requests matched to out-of-order
responses by correlation id.  Nothing about publishing objects, proxies,
or call sites changes — only the URI scheme does.

The example publishes a small work server, fans 16 worker threads out
over one transparent proxy, and prints the channel's own telemetry
(peak in-flight requests, queue depth, reconnects) to show the calls
really were multiplexed on one connection.

Run:  python examples/aio_farm.py [tasks-per-worker]
"""

from __future__ import annotations

import sys
import threading

from repro.aio import AioTcpChannel
from repro.channels.services import ChannelServices
from repro.remoting import (
    MarshalByRefObject,
    RemotingHost,
    WellKnownObjectMode,
)

WORKERS = 16


class WorkServer(MarshalByRefObject):
    """Sums the squares of a range — a stand-in for a real work chunk."""

    def process(self, start: int, count: int) -> int:
        return sum(value * value for value in range(start, start + count))


def main() -> None:
    tasks_per_worker = int(sys.argv[1]) if len(sys.argv) > 1 else 25

    # Server side: same registration dance as any other channel.
    server_services = ChannelServices()
    host = RemotingHost(name="aio-farm-server", services=server_services)
    binding = host.listen(AioTcpChannel(), "127.0.0.1:0")
    host.register_well_known(WorkServer, "work", WellKnownObjectMode.SINGLETON)

    # Client side: register the channel, get a proxy from an aio:// URI.
    client_services = ChannelServices()
    client_channel = AioTcpChannel()
    client_services.register_channel(client_channel)
    client = RemotingHost(name="aio-farm-client", services=client_services)
    try:
        proxy = client.get_object(f"aio://{binding.authority}/work")
        print(f"published WorkServer at aio://{binding.authority}/work")

        # Sample the in-flight gauge while the farm runs to catch the
        # multiplexing in the act.
        in_flight = client_channel.metrics.gauge(
            "aio.client.in_flight", "requests on the wire"
        )
        peak = 0
        totals = [0] * WORKERS
        barrier = threading.Barrier(WORKERS)

        def worker(index: int) -> None:
            nonlocal peak
            barrier.wait()
            subtotal = 0
            for task in range(tasks_per_worker):
                start = (index * tasks_per_worker + task) * 10
                subtotal += proxy.process(start, 10)
                peak = max(peak, int(in_flight.value))
            totals[index] = subtotal

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(WORKERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        calls = WORKERS * tasks_per_worker
        span = calls * 10
        expected = sum(value * value for value in range(span))
        total = sum(totals)
        assert total == expected, f"{total} != {expected}"
        print(f"{WORKERS} workers x {tasks_per_worker} calls = {calls} calls,")
        print(f"  all multiplexed over one socket; sum of squares < {span}: "
              f"{total}")
        reconnects = client_channel.metrics.counter(
            "aio.client.reconnects", "reconnections"
        )
        print(f"  peak in-flight requests observed: {peak}")
        print(f"  reconnects: {int(reconnects.value)}")
    finally:
        client.close()
        host.close()
        client_channel.close()


if __name__ == "__main__":
    main()
