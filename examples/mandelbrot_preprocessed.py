#!/usr/bin/env python3
"""The paper's full tool pipeline: preprocess → generated POs → run.

§3.2: "During the preprocessing phase, the original parallel object
classes are replaced by generated PO classes."  This example does exactly
that, end to end, on a fresh workload (a Mandelbrot row farm):

1. writes a plain module with an ``@parallel`` class;
2. runs the source preprocessor on it (the ParC# preprocessor analog);
3. imports the generated module — the class name now denotes the PO;
4. farms a Mandelbrot set across the cluster and renders it as ASCII art.

Run:  python examples/mandelbrot_preprocessed.py [width] [height]
"""

import importlib.util
import sys
import tempfile
import textwrap
from pathlib import Path

import repro.core as parc
from repro.core import GrainPolicy, preprocess_module

WORKLOAD_SOURCE = textwrap.dedent(
    '''
    """Mandelbrot row worker (input to the ParC# preprocessor)."""

    from repro.core import parallel


    @parallel
    class RowWorker:
        """Computes iteration counts for rows of the Mandelbrot set."""

        def __init__(self, width, height, max_iter=40):
            self.width = width
            self.height = height
            self.max_iter = max_iter
            self.rows = {}

        def compute_row(self, y):
            counts = []
            imag = 2.0 * y / self.height - 1.0
            for x in range(self.width):
                real = 3.0 * x / self.width - 2.25
                c = complex(real, imag)
                z = 0j
                count = 0
                while abs(z) <= 2.0 and count < self.max_iter:
                    z = z * z + c
                    count += 1
                counts.append(count)
            self.rows[y] = counts

        def collect(self):
            return self.rows
    '''
)

PALETTE = " .:-=+*#%@"


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 72
    height = int(sys.argv[2]) if len(sys.argv) > 2 else 24

    with tempfile.TemporaryDirectory(prefix="parc-mandel-") as workdir:
        source_path = Path(workdir) / "mandel.py"
        source_path.write_text(WORKLOAD_SOURCE, encoding="utf-8")

        # Step 2: the preprocessor generates mandel_parc.py.
        generated_path = preprocess_module(source_path)
        print(f"preprocessor wrote {generated_path.name}; head of output:")
        for line in generated_path.read_text().splitlines()[:4]:
            print(f"    {line}")
        print("    ...")

        # Step 3: import the generated module.
        spec = importlib.util.spec_from_file_location("mandel_parc", generated_path)
        module = importlib.util.module_from_spec(spec)
        sys.modules["mandel_parc"] = module
        spec.loader.exec_module(module)

        # Step 4: the original class name is now the PO class.
        parc.init(nodes=4, grain=GrainPolicy(max_calls=4))
        try:
            workers = [module.RowWorker(width, height) for _ in range(4)]
            for y in range(height):
                workers[y % 4].compute_row(y)  # asynchronous, aggregated
            rows: dict[int, list[int]] = {}
            for worker in workers:
                rows.update(worker.collect())  # synchronous barrier
            for worker in workers:
                worker.parc_release()
        finally:
            parc.shutdown()

    print()
    max_iter = 40
    for y in range(height):
        line = "".join(
            PALETTE[min(count * (len(PALETTE) - 1) // max_iter, len(PALETTE) - 1)]
            for count in rows[y]
        )
        print(line)
    print(f"\n{width}x{height} Mandelbrot farmed over 4 parallel objects, "
          f"via preprocessor-generated POs")


if __name__ == "__main__":
    main()
