#!/usr/bin/env python3
"""The paper's running example: PrimeServer farm and PrimeFilter pipeline.

Shows both prime workloads from the paper: the ``PrimeServer`` farm whose
generated PO/IO/factory code Figs. 4-7 walk through, and a sieve
*pipeline* of chained parallel objects — the fine-grained workload that
method-call aggregation (§3.1) exists for.  Compares runs with and
without aggregation and prints the message counts, making the
optimisation visible.

Run:  python examples/prime_pipeline.py [limit]
"""

import sys
import time

import repro.core as parc
from repro.apps.primes import farm_count_primes, pipeline_primes, sieve
from repro.benchlib.tables import format_table
from repro.core import GrainPolicy


def run_with_policy(limit: int, policy: GrainPolicy, label: str) -> list:
    parc.init(nodes=4, grain=policy)
    try:
        started = time.perf_counter()
        primes = pipeline_primes(limit)
        elapsed = time.perf_counter() - started
        processed = sum(
            node["processed"] for node in parc.current_runtime().stats()
        )
        return [label, round(elapsed, 3), processed, len(primes)]
    finally:
        parc.shutdown()


def main() -> None:
    limit = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    expected = sieve(limit)
    print(f"primes <= {limit}: {len(expected)} (sequential sieve)")

    # The farm version (the paper's Figs. 4-7 class).
    parc.init(nodes=4, grain=GrainPolicy(max_calls=8))
    try:
        count = farm_count_primes(limit, workers=4, batch=16)
        print(f"PrimeServer farm agrees: {count} primes")
        assert count == len(expected)
    finally:
        parc.shutdown()

    # The pipeline, with and without method-call aggregation.
    rows = [
        run_with_policy(limit, GrainPolicy(max_calls=1), "no aggregation"),
        run_with_policy(limit, GrainPolicy(max_calls=16), "max_calls=16"),
        run_with_policy(
            limit, GrainPolicy(agglomerate=True), "agglomerated (serial)"
        ),
    ]
    print()
    print(
        format_table(
            ["configuration", "seconds", "calls processed", "primes"],
            rows,
            title="PrimeFilter pipeline: grain-size adaptation at work",
        )
    )


if __name__ == "__main__":
    main()
