#!/usr/bin/env python3
"""Observability: one merged trace of a farm running across real nodes.

Boots four TCP nodes with telemetry enabled, runs a :class:`Farm.map`
over them, and writes one merged Chrome-trace JSON you can open in
``chrome://tracing`` or https://ui.perfetto.dev — one *process lane per
node*, with the caller's ``po.*``/``rpc`` spans linked to the
``serve.*``/``io`` spans of whichever node executed each call, so a
single ``map`` reads as one connected tree fanning out over the cluster.

Also prints the cluster-wide metrics snapshot (per-method latency
histograms from every node) and a Prometheus-style scrape fetched over
the wire from one node's well-known ``/telemetry`` object.

Run:  python examples/traced_farm.py [output.json]
"""

import sys

import repro.core as parc
from repro.apps.primes.sieve import is_prime, sieve
from repro.core import Farm, GrainPolicy, ParcConfig, TelemetryConfig
from repro.core.model import parallel
from repro.telemetry import get_global_tracer


@parallel(
    name="examples.RangeCounter",
    async_methods=[],
    sync_methods=["primes_in"],
)
class RangeCounter:
    """Counts primes in a half-open range (synchronous: a map worker)."""

    def primes_in(self, bounds) -> int:
        lo, hi = bounds
        return sum(1 for n in range(lo, hi) if is_prime(n))


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "parc-trace.json"
    limit = 3000
    step = 150
    ranges = [(lo, min(lo + step, limit)) for lo in range(2, limit, step)]

    config = ParcConfig(
        nodes=4,
        channel="tcp",
        grain=GrainPolicy(max_calls=4),
        telemetry=TelemetryConfig(enabled=True),
    )
    with parc.session(config) as runtime:
        tracer = get_global_tracer()
        with tracer.span("app", "count_primes", limit=limit):
            with Farm(RangeCounter, workers=4) as farm:
                counts = farm.map("primes_in", ranges)
        total = sum(counts)
        assert total == len(sieve(limit - 1))
        print(f"{total} primes < {limit} via Farm.map over 4 tcp nodes")

        # Collect *before* shutdown: workers are scraped over the wire.
        document = runtime.dump_trace(output)
        snapshot = runtime.metrics_snapshot()
        # Every node publishes its telemetry as a well-known remoting
        # object; scrape a peer over the wire like Prometheus would.
        peer = runtime.cluster.nodes[1]
        scrape_uri = f"{peer.base_uri}/telemetry"
        scrape = runtime.cluster.home_node.make_proxy(scrape_uri).scrape()

    lanes_with_io = {
        event["pid"]
        for event in document["traceEvents"]
        if event.get("cat") == "io"
    }
    print(f"wrote {len(document['traceEvents'])} merged trace events to {output}")
    print(f"io spans on {len(lanes_with_io)} node lanes: {sorted(lanes_with_io)}")
    print("open chrome://tracing or https://ui.perfetto.dev and load it\n")

    print("per-node method latency histograms:")
    for label, export in sorted(snapshot["nodes"].items()):
        histograms = [
            name
            for name, metric in export.items()
            if metric["type"] == "histogram"
            and name.startswith("parc.method.seconds.")
        ]
        print(f"  {label}: {histograms or '(no methods executed here)'}")

    merged = snapshot["cluster"]
    method_total = sum(
        metric["count"]
        for name, metric in merged.items()
        if metric["type"] == "histogram"
        and name.startswith("parc.method.seconds.")
    )
    print(f"\ncluster aggregate: {method_total} method executions observed")

    print(f"\nprometheus scrape of {scrape_uri} (first lines):")
    for line in scrape.splitlines()[:6]:
        print(f"  {line}")


if __name__ == "__main__":
    main()
