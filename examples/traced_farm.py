#!/usr/bin/env python3
"""Observability: trace a farm's execution timeline.

Installs a global :class:`~repro.telemetry.Tracer`, runs the prime farm,
and writes a Chrome-trace JSON you can open in ``chrome://tracing`` or
https://ui.perfetto.dev — one lane per implementation-object worker
thread, one span per executed method, with aggregation visible as batches
of back-to-back spans.

Run:  python examples/traced_farm.py [output.json]
"""

import sys

import repro.core as parc
from repro.apps.primes import farm_count_primes, sieve
from repro.core import GrainPolicy
from repro.telemetry import MetricsRegistry, Tracer, set_global_tracer


def main() -> None:
    output = sys.argv[1] if len(sys.argv) > 1 else "parc-trace.json"
    limit = 3000
    tracer = Tracer()
    metrics = MetricsRegistry()
    calls = metrics.counter("farm_calls", "method executions observed")
    latency = metrics.histogram("method_seconds")

    set_global_tracer(tracer)
    parc.init(nodes=4, grain=GrainPolicy(max_calls=4))
    try:
        with tracer.span("app", "farm_count_primes", limit=limit):
            count = farm_count_primes(limit, workers=4, batch=64)
        assert count == len(sieve(limit - 1))
        print(f"{count} primes < {limit}")
    finally:
        parc.shutdown()
        set_global_tracer(None)

    for duration in tracer.span_durations("io"):
        calls.inc()
        latency.observe(duration)

    path = tracer.dump(output)
    events = tracer.events()
    print(f"wrote {len(events)} trace events to {path}")
    print(f"open chrome://tracing or https://ui.perfetto.dev and load it\n")
    print("metrics snapshot:")
    print(metrics.render())
    io_durations = tracer.span_durations("io")
    if io_durations:
        mean_us = sum(io_durations) / len(io_durations) * 1e6
        print(
            f"\n{len(io_durations)} method executions, "
            f"mean {mean_us:.1f}us"
        )


if __name__ == "__main__":
    main()
