#!/usr/bin/env python3
"""Higher-level paradigms: the Farm and Pipeline skeletons + naming.

The paper's related work points at "implementation of higher level
programming paradigms" on platforms like ParC#; this example shows the
two skeletons PyParC ships — a word-count built as a Farm, and a
text-processing Pipeline — plus the cluster-wide name service.

Run:  python examples/skeletons.py
"""

import repro.core as parc
from repro.core import Farm, GrainPolicy, Pipeline

TEXT = """the quick brown fox jumps over the lazy dog
the dog barks and the fox runs
a quick dog and a lazy fox meet the brown dog""".splitlines()


@parc.parallel(
    name="examples.WordCounter",
    async_methods=["count_line"],
    sync_methods=["totals", "lookup_and_report"],
)
class WordCounter:
    def __init__(self):
        self.counts = {}

    def count_line(self, line):
        for word in line.split():
            self.counts[word] = self.counts.get(word, 0) + 1

    def totals(self):
        return dict(self.counts)

    def lookup_and_report(self, name):
        """Find another farm's PO through the name service."""
        other = parc.lookup(name)
        return sum(other.totals().values())


@parc.parallel(
    name="examples.Normalize", async_methods=["feed", "set_next"],
    sync_methods=["lines"],
)
class Normalize:
    def __init__(self):
        self.next_stage = None
        self.items = []

    def set_next(self, stage):
        self.next_stage = stage

    def feed(self, line):
        cleaned = " ".join(line.strip().lower().split())
        self.items.append(cleaned)
        if self.next_stage is not None:
            self.next_stage.feed(cleaned)

    def lines(self):
        return list(self.items)


@parc.parallel(
    name="examples.Dedup", async_methods=["feed", "set_next"],
    sync_methods=["unique"],
)
class Dedup:
    def __init__(self):
        self.next_stage = None
        self.seen_words = set()

    def set_next(self, stage):
        self.next_stage = stage

    def feed(self, line):
        for word in line.split():
            self.seen_words.add(word)

    def unique(self):
        return sorted(self.seen_words)


def main() -> None:
    parc.init(nodes=4, grain=GrainPolicy(max_calls=4))
    try:
        # --- Farm: scatter lines, merge counts -------------------------
        with Farm(WordCounter, workers=3) as farm:
            farm.scatter("count_line", TEXT)
            merged: dict[str, int] = {}
            for partial in farm.collect("totals"):
                for word, count in partial.items():
                    merged[word] = merged.get(word, 0) + count
            top = sorted(merged.items(), key=lambda kv: -kv[1])[:5]
            print("Farm word-count, top 5:")
            for word, count in top:
                print(f"  {word:>6}: {count}")

            # --- name service: another PO finds this farm's worker ----
            parc.bind("counter0", farm.workers[0])
            reporter = parc.new(WordCounter)
            total = reporter.lookup_and_report("counter0")
            print(f"\nvia name service: worker 0 counted {total} words")
            parc.unbind("counter0")
            reporter.parc_release()

        # --- Pipeline: normalize -> dedup ------------------------------
        with Pipeline([(Normalize, ()), (Dedup, ())]) as pipe:
            pipe.feed_all(["  The QUICK   brown FOX  ", "THE lazy DOG "])
            unique = pipe.call_last("unique")
            print(f"\nPipeline unique words: {unique}")
    finally:
        parc.shutdown()


if __name__ == "__main__":
    main()
