#!/usr/bin/env python3
"""Run-time grain packing: the adaptive controller in action (§3.1, [9]).

SCOOPP "removes parallelism overheads at run-time by transforming
(packing) parallel objects in passive ones and by aggregating method
calls".  This example creates a stream of parallel objects whose methods
are deliberately tiny, and watches the :class:`AdaptiveGrainController`
learn: early objects are placed remotely with mild aggregation; once the
controller has samples showing the methods are far cheaper than a remote
call, new objects are agglomerated (created locally).

Run:  python examples/grain_adaptation.py
"""

import repro.core as parc
from repro.core import AdaptiveGrainController


@parc.parallel(name="examples.TinyWorker", async_methods=["tick"], sync_methods=["count"])
class TinyWorker:
    """A worker whose method does almost nothing — too fine a grain."""

    def __init__(self):
        self.ticks = 0

    def tick(self):
        self.ticks += 1

    def count(self):
        return self.ticks


def main() -> None:
    controller = AdaptiveGrainController(
        overhead_s=500e-6,  # the paper's Mono remote-call latency
        min_samples=8,
        max_calls_cap=64,
        agglomerate_factor=1.0,  # robust margin for microsecond methods
    )
    parc.init(nodes=3, grain=controller)
    try:
        generations = []
        for generation in range(6):
            workers = [parc.new(TinyWorker) for _ in range(4)]
            for worker in workers:
                for _ in range(20):
                    worker.tick()
            total = sum(worker.count() for worker in workers)
            local = sum(1 for worker in workers if worker.parc_is_local)
            decision = controller.decide("examples.TinyWorker")
            generations.append((generation, total, local, decision))
            for worker in workers:
                worker.parc_release()

        print("generation  ticks  local/4  decision")
        for generation, total, local, decision in generations:
            mode = "agglomerate" if decision.agglomerate else (
                f"remote, max_calls={decision.max_calls}"
            )
            print(f"{generation:>10}  {total:>5}  {local:>7}  {mode}")
        avg, samples = controller.stats_for("examples.TinyWorker")
        print(
            f"\ncontroller learned: avg method time "
            f"{avg * 1e6:.1f}us over {samples} samples "
            f"(remote-call overhead modelled at 500us)"
        )
        final = controller.decide("examples.TinyWorker")
        print(
            "final decision:",
            "agglomerate (parallelism removed)" if final.agglomerate
            else f"stay parallel with max_calls={final.max_calls}",
        )
    finally:
        parc.shutdown()


if __name__ == "__main__":
    main()
