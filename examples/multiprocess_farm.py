#!/usr/bin/env python3
"""True parallelism: SCOOPP nodes as separate OS processes over TCP.

The paper's cluster ran one node per machine; this example runs one node
per *process* — each a fresh interpreter with its own GIL — and farms a
CPU-bound prime count across them.  Compare wall-clock time against the
same work done sequentially: unlike the thread-backed clusters, process
workers actually overlap compute.

Run:  python examples/multiprocess_farm.py [limit] [workers]
"""

import sys
import time

import repro.core as parc
from repro.apps.primes import PrimeServer, sieve
from repro.core import GrainPolicy


def sequential_count(limit: int) -> tuple[int, float]:
    started = time.perf_counter()
    count = len(sieve(limit))
    return count, time.perf_counter() - started


def farm_count(limit: int, workers: int, batch: int = 2000) -> tuple[int, float]:
    started = time.perf_counter()
    servers = [parc.new(PrimeServer) for _ in range(workers)]
    chunk: list[int] = []
    target = 0
    for candidate in range(2, limit):
        chunk.append(candidate)
        if len(chunk) >= batch:
            servers[target % workers].process(chunk)
            chunk = []
            target += 1
    if chunk:
        servers[target % workers].process(chunk)
    count = sum(server.count() for server in servers)
    for server in servers:
        server.parc_release()
    return count, time.perf_counter() - started


def main() -> None:
    limit = int(sys.argv[1]) if len(sys.argv) > 1 else 120_000
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    expected, seq_s = sequential_count(limit)
    print(f"sequential sieve: {expected} primes < {limit} in {seq_s:.3f}s")
    print(f"(farm workers use trial division, so farm times are not "
          f"directly comparable to the sieve — compare farm vs farm)")

    # One local node + (workers) process nodes.  The worker module list is
    # the per-node boot code: each process imports it and thereby
    # registers the PrimeServer parallel class.
    parc.init(
        nodes=1,
        channel="tcp",
        grain=GrainPolicy(max_calls=2),
        worker_processes=workers,
        worker_modules=("repro.apps.primes",),
    )
    try:
        count, farm_s = farm_count(limit, workers)
        assert count == expected, (count, expected)
        print(
            f"{workers}-process farm: {count} primes in {farm_s:.3f}s "
            f"(real OS processes, real TCP)"
        )
        for node in parc.current_runtime().stats():
            print(
                f"  node {node['index']}: {node['ios']} IOs, "
                f"{node['processed']} calls"
            )
    finally:
        parc.shutdown()

    # Same farm, single process node, for the overlap comparison.
    parc.init(nodes=1, channel="tcp", grain=GrainPolicy(max_calls=2),
              worker_processes=1, worker_modules=("repro.apps.primes",))
    try:
        count, one_s = farm_count(limit, 1)
        assert count == expected
        print(f"1-process farm:  {count} primes in {one_s:.3f}s")
        print(f"speedup {workers} vs 1 process: {one_s / farm_s:.2f}x")
    finally:
        parc.shutdown()


if __name__ == "__main__":
    main()
