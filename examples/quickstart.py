#!/usr/bin/env python3
"""Quickstart: the SCOOPP programming model in one file.

Declares a parallel class, boots a 4-node runtime, and shows the three
behaviours the paper's model defines (§3.1):

* asynchronous calls (no return value) that may be aggregated,
* synchronous calls (with a return value) that flush and round-trip,
* placement of implementation objects across nodes by the object manager.

Run:  python examples/quickstart.py
"""

import repro.core as parc
from repro.core import GrainPolicy


@parc.parallel
class Histogram:
    """Counts observations into buckets (the implementation object)."""

    def __init__(self, buckets):
        self.counts = [0] * buckets

    def observe(self, value):
        """Record one observation (asynchronous: no return value)."""
        self.counts[value % len(self.counts)] += 1

    def totals(self):
        """Current bucket counts (synchronous: returns a value)."""
        return list(self.counts)


def main() -> None:
    # Boot 4 nodes; aggregate asynchronous calls 8 per message (§3.1's
    # method-call aggregation).
    parc.init(nodes=4, grain=GrainPolicy(max_calls=8))
    try:
        # Each PO's implementation object is placed by the object manager
        # (round-robin by default) — these four live on different nodes.
        histograms = [parc.new(Histogram, 10) for _ in range(4)]

        for value in range(1000):
            histograms[value % 4].observe(value)

        # Synchronous calls flush pending asynchronous work first, so the
        # totals always reflect every observe() issued above.
        grand_total = 0
        for index, histogram in enumerate(histograms):
            totals = histogram.totals()
            grand_total += sum(totals)
            print(f"histogram {index}: {totals}")
        print(f"grand total: {grand_total} (expected 1000)")
        assert grand_total == 1000

        for node_stats in parc.current_runtime().stats():
            print(
                f"node {node_stats['index']}: {node_stats['ios']} IOs, "
                f"{node_stats['processed']} calls processed"
            )
        for histogram in histograms:
            histogram.parc_release()
    finally:
        parc.shutdown()


if __name__ == "__main__":
    main()
