"""End-to-end flow control: credits, admission control, elasticity.

Under the ROADMAP's millions-of-users framing an overloaded node must
not simply grow its queues until memory or latency collapses.  This
package supplies the three mechanisms that bound work between a caller's
PO and the serving IO, plus the controller that adds capacity when
bounding is not enough:

* :class:`CreditGate` / :class:`CreditGrantor` — credit-based
  backpressure on the wire.  Servers advertise how many requests a peer
  may keep in flight (a u32 piggybacked on response frames, see
  :mod:`repro.channels.framing`); clients stall sends against the gate
  instead of flooding a saturated peer, and fail fast with
  :class:`~repro.errors.OverloadError` when no credit arrives within the
  stall budget.
* :class:`ShedPolicy` — admission control at the IO mailbox: fail-fast
  rejection when a bounded lane is full, and a deadline-aware variant
  that drops queued requests already past their latency budget (work a
  caller has long since timed out on is pure waste).
* :class:`ElasticController` — scale-out/scale-in decisions from
  queue-depth and ``parc.method.seconds`` histogram signals; the
  :class:`~repro.cluster.cluster.Cluster` applies them by spawning or
  retiring worker processes.

Every decision is observable through ``flow.*`` and ``cluster.elastic.*``
metrics and trace instants.
"""

from repro.flow.credit import (
    DEFAULT_STALL_TIMEOUT_S,
    DEFAULT_WINDOW,
    MIN_GRANT,
    CreditGate,
    CreditGrantor,
)
from repro.flow.elastic import ElasticController, ElasticPolicy, estimate_p99
from repro.flow.policy import ShedPolicy

__all__ = [
    "CreditGate",
    "CreditGrantor",
    "DEFAULT_STALL_TIMEOUT_S",
    "DEFAULT_WINDOW",
    "MIN_GRANT",
    "ElasticController",
    "ElasticPolicy",
    "ShedPolicy",
    "estimate_p99",
]
