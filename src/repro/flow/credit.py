"""Credit-based backpressure: the client gate and the server grantor.

The protocol rides the existing frame format (see
:mod:`repro.channels.framing`): a client that understands credits sets
``FLAG_CREDIT`` on its request frames; the server answers with the flag
set and a 4-byte window grant after the optional correlation id.  Old
peers interoperate unchanged — servers ignore unknown request flag bits,
and a response without the flag simply carries no grant.

Client side, one :class:`CreditGate` per authority bounds in-flight
requests to the most recent grant.  A full gate makes the sender *stall*
(the PO's sender thread blocks inside the channel, so aggregation
buffers absorb the wait); a stall longer than the budget becomes a typed
:class:`~repro.errors.OverloadError` — which is a
:class:`~repro.errors.ChannelError`, so a wrapping circuit breaker
counts sustained shedding as failures and eventually quarantines the
peer.

Server side, a :class:`CreditGrantor` shrinks the advertised window as
pressure rises (dispatch backlog, mailbox fill), down to a floor of
:data:`MIN_GRANT` so a throttled peer can always probe for recovery.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import OverloadError

#: Default in-flight window per peer, both the gate's starting point
#: (before any grant arrives) and the grantor's unloaded advertisement.
DEFAULT_WINDOW = 64

#: How long a sender may stall waiting for credit before the call is
#: shed with :class:`OverloadError`.
DEFAULT_STALL_TIMEOUT_S = 5.0

#: Grants never drop below this: a starved peer must be able to probe.
MIN_GRANT = 1


class CreditGate:
    """Client-side send gate: at most *window* requests in flight.

    Thread-safe; the window is resized live by :meth:`observe_grant`
    whenever a response carries a server grant.  Shrinking below the
    current in-flight count is legal — no new sends are admitted until
    enough releases bring the count under the new window.
    """

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        stall_timeout_s: float = DEFAULT_STALL_TIMEOUT_S,
        metrics=None,  # type: ignore[no-untyped-def]
    ) -> None:
        if window < 1:
            raise ValueError("credit window must be >= 1")
        self._window = window
        self._stall_timeout_s = stall_timeout_s
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._in_flight = 0
        self._waiters = 0
        if metrics is not None:
            self._stalls = metrics.counter(
                "flow.credit.stalls", "sends that waited for credit"
            )
            self._sheds = metrics.counter(
                "flow.credit.sheds", "sends shed after the stall budget"
            )
            self._stall_seconds = metrics.histogram(
                "flow.credit.stall_seconds",
                help_text="time senders spent waiting for credit",
            )
            self._window_gauge = metrics.gauge(
                "flow.credit.window", "most recent granted window"
            )
            self._window_gauge.set(window)
        else:
            self._stalls = None
            self._sheds = None
            self._stall_seconds = None
            self._window_gauge = None

    @property
    def window(self) -> int:
        with self._lock:
            return self._window

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def acquire(self) -> None:
        """Take one credit; stall while the window is full.

        Raises :class:`OverloadError` if no credit frees up within the
        stall budget — the typed fail-fast signal retry policies must
        not amplify.
        """
        with self._available:
            if self._in_flight < self._window:
                self._in_flight += 1
                return
            if self._stalls is not None:
                self._stalls.inc()
            deadline = time.monotonic() + self._stall_timeout_s
            started = time.monotonic()
            self._waiters += 1
            try:
                while self._in_flight >= self._window:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        if self._sheds is not None:
                            self._sheds.inc()
                        raise OverloadError(
                            f"no send credit after "
                            f"{self._stall_timeout_s:.3g}s (window "
                            f"{self._window}, in flight {self._in_flight})"
                        )
                    self._available.wait(remaining)
            finally:
                self._waiters -= 1
            self._in_flight += 1
            if self._stall_seconds is not None:
                self._stall_seconds.observe(time.monotonic() - started)

    def release(self) -> None:
        """Return one credit (response received or send failed)."""
        with self._available:
            if self._in_flight > 0:
                self._in_flight -= 1
            # notify() with nobody waiting still pays the waiter-queue
            # walk; this sits on every call's return path, so skip it.
            if self._waiters:
                self._available.notify()

    def observe_grant(self, grant: int) -> None:
        """Adopt a server-advertised window from a response frame."""
        if grant < MIN_GRANT:
            grant = MIN_GRANT
        # Steady state: the server re-advertises the same window on every
        # response.  A stale unlocked read at worst falls through to the
        # locked path below.
        if grant == self._window:
            return
        with self._available:
            if grant == self._window:
                return
            grew = grant > self._window
            self._window = grant
            if self._window_gauge is not None:
                self._window_gauge.set(grant)
            if grew:
                self._available.notify_all()


class CreditGrantor:
    """Server-side window computation from live pressure signals.

    *sources* are callables returning a pressure fraction in ``[0, 1]``
    (0 = idle, 1 = saturated); the advertised window scales down
    linearly with the worst of them.  Sources must be cheap — they run
    on every response — and must never raise (failures read as idle).
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        if window < 1:
            raise ValueError("grantor window must be >= 1")
        self.window = window
        self._sources: list[Callable[[], float]] = []

    def add_source(self, source: Callable[[], float]) -> None:
        self._sources.append(source)

    def pressure(self) -> float:
        worst = 0.0
        for source in self._sources:
            try:
                value = source()
            except Exception:  # noqa: BLE001 - pressure must never fail a call
                continue
            if value > worst:
                worst = value
        return min(1.0, max(0.0, worst))

    def grant(self) -> int:
        if not self._sources:  # window >= 1 is enforced by __init__
            return self.window
        return max(MIN_GRANT, int(self.window * (1.0 - self.pressure())))
