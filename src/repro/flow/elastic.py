"""Elastic scaling decisions from queue depth and latency histograms.

The controller is pure decision logic — feed it one sample per tick
(worker count, total queued calls, an optional method-latency p99
estimate) and it answers ``"out"``, ``"in"`` or ``None``.  The
:class:`~repro.cluster.cluster.Cluster` owns the sampling thread and
applies the decisions by spawning or retiring worker processes, so this
piece stays unit-testable without any multiprocessing.

State machine (documented in ARCHITECTURE §5b)::

    steady --high sample x out_consecutive--> scale OUT --cooldown--> steady
    steady --idle sample x in_consecutive--> scale IN  --cooldown--> steady

Hysteresis is deliberate and asymmetric: scaling out is cheap to get
wrong (an idle worker) and slow to need twice, so it triggers after few
samples; scaling in kills capacity, so it demands a much longer run of
idle samples.  The cooldown after every action lets the directory,
heartbeats, and rebalanced queues settle before the signals are trusted
again.
"""

from __future__ import annotations

from dataclasses import dataclass


def estimate_p99(buckets: list, total_count: int) -> float | None:
    """p99 estimate from per-bucket histogram counts.

    *buckets* is ``[(upper_bound_s, count), ...]`` as produced by
    :meth:`~repro.telemetry.metrics.Histogram.bucket_counts` or a merged
    ``MetricsRegistry.export``; returns the upper bound of the bucket
    containing the 99th percentile, or ``None`` when there are no
    observations.  Coarse on purpose — the controller only compares it
    against a threshold.
    """
    if total_count <= 0:
        return None
    target = 0.99 * total_count
    cumulative = 0
    for upper, count in buckets:
        cumulative += count
        if cumulative >= target:
            return upper
    return float("inf")


@dataclass(frozen=True)
class ElasticPolicy:
    """Thresholds and hysteresis for the scaling loop."""

    min_workers: int
    max_workers: int
    #: Mean queued calls per worker above which a sample reads "high".
    queue_high: float = 8.0
    #: Mean queued calls per worker below which a sample reads "idle".
    queue_low: float = 0.5
    #: Method-latency p99 above which a sample reads "high" even if
    #: queues look shallow (slow methods hide depth in execution time).
    p99_high_s: float = 1.0
    #: Consecutive high samples before scaling out.
    out_consecutive: int = 2
    #: Consecutive idle samples before scaling in (deliberately longer).
    in_consecutive: int = 8
    #: Samples ignored after any scaling action.
    cooldown: int = 4

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("elastic min workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("elastic max workers must be >= min workers")


class ElasticController:
    """Hysteresis + cooldown around the raw pressure signals."""

    def __init__(self, policy: ElasticPolicy) -> None:
        self.policy = policy
        self._high_streak = 0
        self._idle_streak = 0
        self._cooldown = 0

    def observe(
        self,
        workers: int,
        queued_total: int,
        p99_s: float | None = None,
    ) -> str | None:
        """Feed one sample; returns ``"out"``, ``"in"`` or ``None``."""
        policy = self.policy
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        per_worker = queued_total / max(1, workers)
        high = per_worker > policy.queue_high or (
            p99_s is not None and p99_s > policy.p99_high_s
        )
        idle = per_worker < policy.queue_low and (
            p99_s is None or p99_s <= policy.p99_high_s
        )
        self._high_streak = self._high_streak + 1 if high else 0
        self._idle_streak = self._idle_streak + 1 if idle else 0
        if (
            high
            and self._high_streak >= policy.out_consecutive
            and workers < policy.max_workers
        ):
            self._reset(cooldown=policy.cooldown)
            return "out"
        if (
            idle
            and self._idle_streak >= policy.in_consecutive
            and workers > policy.min_workers
        ):
            self._reset(cooldown=policy.cooldown)
            return "in"
        return None

    def _reset(self, cooldown: int) -> None:
        self._high_streak = 0
        self._idle_streak = 0
        self._cooldown = cooldown
