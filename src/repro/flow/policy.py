"""Shed policies: what a bounded mailbox does when it cannot admit work.

Configured through ``ParcConfig(shed_policy=...)`` as a compact string:

* ``"fail_fast"`` — a full lane rejects new calls immediately with
  :class:`~repro.errors.OverloadError` (the default once
  ``mailbox_depth`` bounds the mailbox).
* ``"deadline:<seconds>"`` — additionally, queued requests older than
  the given budget are shed *at dequeue time*: a request the caller has
  already timed out on is pure wasted work, and executing it only
  pushes every younger request further past its own deadline.
"""

from __future__ import annotations

from dataclasses import dataclass

FAIL_FAST = "fail_fast"
DEADLINE = "deadline"


@dataclass(frozen=True)
class ShedPolicy:
    """Parsed admission-control policy for one mailbox."""

    kind: str = FAIL_FAST
    #: Queue-age budget (seconds) for the deadline variant; tasks older
    #: than this are dropped instead of executed.  ``None`` = no budget.
    budget_s: float | None = None

    @classmethod
    def parse(cls, spec: "str | ShedPolicy | None") -> "ShedPolicy":
        """Parse a ``ParcConfig.shed_policy`` string.

        Accepts ``"fail_fast"``, ``"deadline:<seconds>"`` and ``None``
        (meaning the default fail-fast policy).
        """
        if spec is None:
            return cls()
        if isinstance(spec, ShedPolicy):
            return spec
        text = spec.strip().lower()
        if text == FAIL_FAST:
            return cls()
        if text.startswith(DEADLINE):
            _, _, budget_text = text.partition(":")
            if not budget_text:
                raise ValueError(
                    "deadline shed policy needs a budget: 'deadline:<seconds>'"
                )
            try:
                budget_s = float(budget_text)
            except ValueError as exc:
                raise ValueError(
                    f"bad deadline budget {budget_text!r} in shed_policy"
                ) from exc
            if budget_s <= 0:
                raise ValueError("deadline shed budget must be positive")
            return cls(kind=DEADLINE, budget_s=budget_s)
        raise ValueError(
            f"unknown shed_policy {spec!r}; expected 'fail_fast' or "
            f"'deadline:<seconds>'"
        )
