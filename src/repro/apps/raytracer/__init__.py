"""Java-Grande-style ray tracer (the paper's high-level benchmark, §4).

A Whitted-style recursive ray tracer over a grid of reflective spheres —
the scene structure of the Java Grande Forum ``raytracer`` benchmark the
paper converted to C#.  The paper renders 500×500; the pure-Python
reproduction defaults to smaller frames and scales (see EXPERIMENTS.md).

Public surface:

* :func:`create_scene` — the JGF sphere-grid scene;
* :func:`render` / :func:`render_lines` — sequential rendering;
* :func:`checksum` — JGF-style validation checksum of a rendered image;
* :class:`RenderWorker` + :func:`farm_render` — the ParC# farm
  parallelisation ("each worker renders several lines");
* :func:`rmi_farm_render` — the same farm over the Java RMI analog, the
  Fig. 9 comparison partner.
"""

from repro.apps.raytracer.scene import Camera, Light, Scene, Sphere, create_scene
from repro.apps.raytracer.tracer import checksum, render, render_line, render_lines
from repro.apps.raytracer.parallel import RenderWorker, farm_render
from repro.apps.raytracer.rmi_farm import rmi_farm_render
from repro.apps.raytracer.mpi_farm import mpi_farm_render

__all__ = [
    "Camera",
    "Light",
    "RenderWorker",
    "Scene",
    "Sphere",
    "checksum",
    "create_scene",
    "farm_render",
    "mpi_farm_render",
    "render",
    "render_line",
    "render_lines",
    "rmi_farm_render",
]
