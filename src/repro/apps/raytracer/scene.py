"""Scene model: spheres, lights, camera, and the JGF sphere-grid scene.

Vectors are plain ``(x, y, z)`` tuples manipulated by free functions —
pure-Python ray tracing is arithmetic-bound and tuples beat objects by a
wide margin, which matters because the sequential time of this very code
is one of the paper's measurements (TAB-SEQ).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

Vec = tuple[float, float, float]


def vadd(a: Vec, b: Vec) -> Vec:
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def vsub(a: Vec, b: Vec) -> Vec:
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def vscale(a: Vec, s: float) -> Vec:
    return (a[0] * s, a[1] * s, a[2] * s)


def vdot(a: Vec, b: Vec) -> float:
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]

def vmul(a: Vec, b: Vec) -> Vec:
    """Componentwise product (colour filtering)."""
    return (a[0] * b[0], a[1] * b[1], a[2] * b[2])


def vcross(a: Vec, b: Vec) -> Vec:
    return (
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    )


def vnorm(a: Vec) -> Vec:
    length = math.sqrt(vdot(a, a))
    if length == 0.0:
        return (0.0, 0.0, 0.0)
    inv = 1.0 / length
    return (a[0] * inv, a[1] * inv, a[2] * inv)


@dataclass(frozen=True)
class Sphere:
    """One scene sphere with Phong material parameters."""

    center: Vec
    radius: float
    color: Vec = (1.0, 1.0, 1.0)
    kd: float = 0.8  # diffuse coefficient
    ks: float = 0.3  # specular coefficient
    shine: float = 15.0  # Phong exponent
    kr: float = 0.3  # reflectance

    def intersect(self, origin: Vec, direction: Vec) -> float | None:
        """Smallest positive ray parameter t, or None if missed."""
        oc = vsub(origin, self.center)
        b = 2.0 * vdot(oc, direction)
        c = vdot(oc, oc) - self.radius * self.radius
        disc = b * b - 4.0 * c  # direction is unit: a == 1
        if disc < 0.0:
            return None
        sqrt_disc = math.sqrt(disc)
        t = (-b - sqrt_disc) * 0.5
        if t > 1e-6:
            return t
        t = (-b + sqrt_disc) * 0.5
        if t > 1e-6:
            return t
        return None

    def normal_at(self, point: Vec) -> Vec:
        return vnorm(vsub(point, self.center))


@dataclass(frozen=True)
class Light:
    """Point light source."""

    position: Vec
    brightness: float = 1.0


@dataclass(frozen=True)
class Camera:
    """Pinhole camera: position + view frame."""

    position: Vec = (0.0, 0.0, -10.0)
    look_at: Vec = (0.0, 0.0, 0.0)
    up: Vec = (0.0, 1.0, 0.0)
    fov_degrees: float = 40.0

    def ray_direction(self, u: float, v: float) -> Vec:
        """Unit ray direction for normalized screen coords in [-1, 1]."""
        forward = vnorm(vsub(self.look_at, self.position))
        right = vnorm(vcross(forward, self.up))
        true_up = vcross(right, forward)
        half = math.tan(math.radians(self.fov_degrees) * 0.5)
        direction = vadd(
            forward,
            vadd(vscale(right, u * half), vscale(true_up, v * half)),
        )
        return vnorm(direction)


@dataclass
class Scene:
    """Spheres + lights + camera + ambient term."""

    spheres: list[Sphere] = field(default_factory=list)
    lights: list[Light] = field(default_factory=list)
    camera: Camera = field(default_factory=Camera)
    ambient: float = 0.15
    background: Vec = (0.05, 0.05, 0.08)
    max_depth: int = 2


def create_scene(grid: int = 4) -> Scene:
    """The JGF benchmark scene: a ``grid³`` lattice of reflective spheres.

    ``grid=4`` gives the canonical 64 spheres; tests use ``grid=2`` (8
    spheres) to keep pure-Python runtimes short.
    """
    if grid < 1:
        raise ValueError(f"grid must be >= 1, got {grid}")
    spheres: list[Sphere] = []
    spacing = 4.0 / max(grid - 1, 1)
    palette = [
        (0.9, 0.3, 0.25),
        (0.3, 0.85, 0.35),
        (0.3, 0.45, 0.9),
        (0.9, 0.85, 0.3),
        (0.8, 0.35, 0.85),
        (0.35, 0.85, 0.85),
    ]
    index = 0
    for i in range(grid):
        for j in range(grid):
            for k in range(grid):
                center = (
                    -2.0 + i * spacing,
                    -2.0 + j * spacing,
                    -1.0 + k * spacing,
                )
                spheres.append(
                    Sphere(
                        center=center,
                        radius=0.45 * spacing / 2.0 + 0.25,
                        color=palette[index % len(palette)],
                    )
                )
                index += 1
    lights = [
        Light(position=(-6.0, 6.0, -8.0), brightness=0.9),
        Light(position=(6.0, 3.0, -6.0), brightness=0.5),
    ]
    return Scene(spheres=spheres, lights=lights)
