"""MPI farm parallelisation of the ray tracer (the §2 contrast, embodied).

The paper's §2 argues the CSP/message-passing model fits object-oriented
applications poorly: "MPI requires explicit packing and unpacking of
messages".  This module is that argument in code — the *same* line farm as
:func:`~repro.apps.raytracer.parallel.farm_render`, written the MPI way:

* rank 0 is the master, ranks 1..n-1 render;
* work requests, line data, and results are hand-packed with
  :class:`~repro.mpi.PackBuffer` / :class:`~repro.mpi.UnpackBuffer` —
  method names become integer tags, arguments become typed runs;
* self-scheduling via explicit request/response message pairs.

Compare the line count and the failure modes with the ParC# version's
two-method parallel class.
"""

from __future__ import annotations

from array import array

from repro.apps.raytracer.scene import create_scene
from repro.apps.raytracer.tracer import render_line
from repro.errors import MpiError
from repro.mpi import INT, PackBuffer, UnpackBuffer, run_mpi

# Message tags: the hand-rolled "method table" of a message-passing farm.
TAG_REQUEST = 1  # worker -> master: give me work
TAG_WORK = 2  # master -> worker: line index (or -1 = stop)
TAG_RESULT = 3  # worker -> master: packed line pixels


def _master(comm, width: int, height: int) -> list[array]:
    image: list[array | None] = [None] * height
    next_line = 0
    stopped = 0
    workers = comm.size - 1
    if workers == 0:
        raise MpiError("MPI farm needs at least 2 ranks (master + worker)")
    while stopped < workers:
        payload, status = comm.recv(tag=TAG_REQUEST)
        unpacker = UnpackBuffer(payload)
        completed_line = unpacker.unpack(INT)
        if completed_line >= 0:
            result_payload, _result_status = comm.recv(
                source=status.source, tag=TAG_RESULT
            )
            pixels = array("i")
            pixels.frombytes(result_payload)
            image[completed_line] = pixels
        if next_line < height:
            work = PackBuffer().pack(next_line, INT)
            next_line += 1
        else:
            work = PackBuffer().pack(-1, INT)
            stopped += 1
        comm.send(work.getvalue(), dest=status.source, tag=TAG_WORK)
    missing = [y for y, line in enumerate(image) if line is None]
    if missing:
        raise MpiError(f"MPI farm lost lines {missing[:5]} of {height}")
    return image  # type: ignore[return-value]


def _worker(comm, width: int, height: int, grid: int) -> None:
    scene = create_scene(grid)
    completed = -1
    pending: bytes | None = None
    while True:
        request = PackBuffer().pack(completed, INT)
        comm.send(request.getvalue(), dest=0, tag=TAG_REQUEST)
        if pending is not None:
            # The pixels of the line we just finished travel separately —
            # a raw contiguous buffer, as MPI wants it.
            comm.send(pending, dest=0, tag=TAG_RESULT)
            pending = None
        payload, _status = comm.recv(source=0, tag=TAG_WORK)
        line_index = UnpackBuffer(payload).unpack(INT)
        if line_index < 0:
            return
        pixels = render_line(scene, line_index, width, height)
        pending = pixels.tobytes()
        completed = line_index


def mpi_farm_render(
    processors: int, width: int, height: int, grid: int = 2
) -> list[array]:
    """Render with an MPI master/worker farm of *processors* workers."""
    if processors < 1:
        raise ValueError(f"processors must be >= 1, got {processors}")

    def main(comm):  # type: ignore[no-untyped-def]
        if comm.rank == 0:
            return _master(comm, width, height)
        _worker(comm, width, height, grid)
        return None

    results = run_mpi(processors + 1, main)
    return results[0]
