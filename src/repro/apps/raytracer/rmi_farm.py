"""Java RMI farm parallelisation of the ray tracer (Fig. 9, right curve).

The comparison partner: the same line-farming structure implemented the
Java way — remote interface, exported workers, a name registry, and
client-side threads for concurrency ("in Java, a similar functionality
must be explicitly programmed using threads", §2).
"""

from __future__ import annotations

import threading
from array import array
from typing import Sequence

from repro.apps.raytracer.parallel import make_chunks
from repro.apps.raytracer.scene import create_scene
from repro.apps.raytracer.tracer import render_lines
from repro.errors import RemoteException
from repro.rmi import Naming, Remote, UnicastRemoteObject, remote_method
from repro.rmi.registry import LocateRegistry


class IRenderWorker(Remote):
    """Remote farm-worker interface (Fig. 1 discipline)."""

    @remote_method
    def render_chunk(self, ys: Sequence[int]) -> list:
        """Render lines *ys*; returns (y, pixels) pairs."""
        raise NotImplementedError


class RenderWorkerServer(UnicastRemoteObject, IRenderWorker):
    """Exported worker holding its own scene copy."""

    def __init__(self, grid: int, width: int, height: int, runtime=None) -> None:
        super().__init__(runtime=runtime)
        self.scene = create_scene(grid)
        self.width = width
        self.height = height

    def render_chunk(self, ys: Sequence[int]) -> list:
        return render_lines(self.scene, list(ys), self.width, self.height)


def rmi_farm_render(
    processors: int,
    width: int,
    height: int,
    grid: int = 2,
    lines_per_chunk: int = 4,
) -> list[array]:
    """Render with an RMI worker farm; self-contained (boots a registry).

    One client thread per worker pulls chunks from a shared queue and
    calls the worker's stub synchronously — RMI's only invocation mode.
    """
    if processors < 1:
        raise ValueError(f"processors must be >= 1, got {processors}")
    registry_runtime, _registry = LocateRegistry.create_registry()
    endpoint = registry_runtime.endpoint
    workers = []
    try:
        for index in range(processors):
            worker = RenderWorkerServer(grid, width, height)
            Naming.rebind(f"rmi://{endpoint}/worker{index}", worker)
            workers.append(worker)
        stubs = [
            Naming.lookup(f"rmi://{endpoint}/worker{index}", IRenderWorker)
            for index in range(processors)
        ]
        chunks = make_chunks(height, lines_per_chunk)
        chunk_lock = threading.Lock()
        next_chunk = 0
        image: list[array | None] = [None] * height
        image_lock = threading.Lock()
        failures: list[BaseException] = []

        def drive(stub) -> None:  # type: ignore[no-untyped-def]
            nonlocal next_chunk
            while True:
                with chunk_lock:
                    if next_chunk >= len(chunks) or failures:
                        return
                    chunk = chunks[next_chunk]
                    next_chunk += 1
                try:
                    lines = stub.render_chunk(chunk)
                except RemoteException as exc:
                    with chunk_lock:
                        failures.append(exc)
                    return
                with image_lock:
                    for y, pixels in lines:
                        image[y] = pixels

        threads = [
            threading.Thread(target=drive, args=(stub,), daemon=True)
            for stub in stubs
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if failures:
            raise failures[0]
    finally:
        registry_runtime.close()
        from repro.rmi.runtime import default_runtime

        runtime = default_runtime()
        for worker in workers:
            runtime.unexport(worker)
    missing = [y for y, line in enumerate(image) if line is None]
    if missing:
        raise RemoteException(f"farm lost lines {missing[:5]}... of {height}")
    return image  # type: ignore[return-value]
