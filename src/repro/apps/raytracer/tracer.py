"""Sequential renderer: Whitted-style recursive ray tracing by lines.

The unit of work is one image **line** — the farm's work item ("each
worker renders several lines from the generated image", §4).  Pixels are
returned as packed 24-bit RGB ints, and :func:`checksum` folds an image to
one integer for JGF-style validation (the parallel versions must produce
*exactly* the sequential checksum).
"""

from __future__ import annotations

from array import array
from typing import Sequence

from repro.apps.raytracer.scene import (
    Scene,
    Sphere,
    Vec,
    vadd,
    vdot,
    vmul,
    vnorm,
    vscale,
    vsub,
)


def _closest_hit(
    scene: Scene, origin: Vec, direction: Vec
) -> tuple[Sphere, float] | None:
    best: tuple[Sphere, float] | None = None
    for sphere in scene.spheres:
        t = sphere.intersect(origin, direction)
        if t is not None and (best is None or t < best[1]):
            best = (sphere, t)
    return best


def _shadowed(scene: Scene, point: Vec, to_light: Vec, light_dist: float) -> bool:
    for sphere in scene.spheres:
        t = sphere.intersect(point, to_light)
        if t is not None and t < light_dist:
            return True
    return False


def trace_ray(scene: Scene, origin: Vec, direction: Vec, depth: int) -> Vec:
    """Radiance along one ray (recursive up to ``scene.max_depth``)."""
    hit = _closest_hit(scene, origin, direction)
    if hit is None:
        return scene.background
    sphere, t = hit
    point = vadd(origin, vscale(direction, t))
    normal = sphere.normal_at(point)
    if vdot(normal, direction) > 0.0:
        normal = vscale(normal, -1.0)
    color = vscale(sphere.color, scene.ambient)
    for light in scene.lights:
        offset = vsub(light.position, point)
        light_dist_sq = vdot(offset, offset)
        to_light = vnorm(offset)
        if _shadowed(scene, point, to_light, light_dist_sq ** 0.5):
            continue
        diffuse = vdot(normal, to_light)
        if diffuse > 0.0:
            color = vadd(
                color,
                vscale(sphere.color, sphere.kd * diffuse * light.brightness),
            )
        # Phong specular highlight.
        reflect = vsub(vscale(normal, 2.0 * vdot(normal, to_light)), to_light)
        spec = -vdot(reflect, direction)
        if spec > 0.0:
            color = vadd(
                color,
                vscale(
                    (1.0, 1.0, 1.0),
                    sphere.ks * (spec ** sphere.shine) * light.brightness,
                ),
            )
    if depth < scene.max_depth and sphere.kr > 0.0:
        bounce = vsub(direction, vscale(normal, 2.0 * vdot(normal, direction)))
        reflected = trace_ray(scene, point, vnorm(bounce), depth + 1)
        color = vadd(color, vmul(vscale(reflected, sphere.kr), sphere.color))
    return color


def _pack(color: Vec) -> int:
    r = min(255, max(0, int(color[0] * 255.0)))
    g = min(255, max(0, int(color[1] * 255.0)))
    b = min(255, max(0, int(color[2] * 255.0)))
    return (r << 16) | (g << 8) | b


def render_line(scene: Scene, y: int, width: int, height: int) -> array:
    """Render image line *y*; returns packed RGB ints ('i' array)."""
    if not 0 <= y < height:
        raise ValueError(f"line {y} outside image of height {height}")
    pixels = array("i", bytes(4 * width))
    v = 1.0 - 2.0 * (y + 0.5) / height
    camera = scene.camera
    origin = camera.position
    for x in range(width):
        u = 2.0 * (x + 0.5) / width - 1.0
        direction = camera.ray_direction(u, v)
        pixels[x] = _pack(trace_ray(scene, origin, direction, 0))
    return pixels


def render_lines(
    scene: Scene, ys: Sequence[int], width: int, height: int
) -> list[tuple[int, array]]:
    """Render several lines (a farm work chunk); (y, pixels) pairs."""
    return [(y, render_line(scene, y, width, height)) for y in ys]


def render(scene: Scene, width: int, height: int) -> list[array]:
    """Full sequential render: list of lines, index = y."""
    return [render_line(scene, y, width, height) for y in range(height)]


def checksum(image: Sequence[array]) -> int:
    """JGF-style validation checksum over all pixels."""
    total = 0
    for line in image:
        for pixel in line:
            total = (total + pixel) & 0xFFFFFFFF
    return total
