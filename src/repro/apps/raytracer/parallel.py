"""ParC# farm parallelisation of the ray tracer (Fig. 9, left curve).

"This application was parallelised using a farming approach, where each
worker renders several lines from the generated image" (§4).  Each worker
is a parallel object; chunk dispatch uses the asynchronous path (and
therefore benefits from method-call aggregation when enabled), collection
is one synchronous call per worker, which also acts as the barrier.
"""

from __future__ import annotations

from array import array
from typing import Sequence

from repro.apps.raytracer.scene import create_scene
from repro.apps.raytracer.tracer import render_lines
from repro.core.model import parallel
from repro.core.runtime import new
from repro.errors import ScooppError


@parallel(name="parc.apps.RenderWorker", async_methods=["render_chunk"], sync_methods=["collect"])
class RenderWorker:
    """One farm worker: owns a scene copy, renders requested lines.

    The scene is rebuilt from its parameters on the worker's node rather
    than serialized — the paper's workers likewise each hold the scene.
    """

    def __init__(self, grid: int, width: int, height: int) -> None:
        self.scene = create_scene(grid)
        self.width = width
        self.height = height
        self.results: list[tuple[int, array]] = []

    def render_chunk(self, ys: Sequence[int]) -> None:
        """Render lines *ys* and keep them for collection (asynchronous)."""
        self.results.extend(
            render_lines(self.scene, list(ys), self.width, self.height)
        )

    def collect(self) -> list:
        """Return accumulated (y, pixels) pairs (synchronous barrier)."""
        return self.results


def make_chunks(height: int, lines_per_chunk: int) -> list[list[int]]:
    """Split image lines into contiguous chunks of *lines_per_chunk*."""
    if lines_per_chunk < 1:
        raise ValueError(f"lines_per_chunk must be >= 1, got {lines_per_chunk}")
    return [
        list(range(start, min(start + lines_per_chunk, height)))
        for start in range(0, height, lines_per_chunk)
    ]


def farm_render(
    processors: int,
    width: int,
    height: int,
    grid: int = 2,
    lines_per_chunk: int = 4,
) -> list[array]:
    """Render the image with a *processors*-worker ParC# farm.

    Requires a live runtime (``repro.core.init``).  Returns the image as
    a list of lines; the caller can verify it against the sequential
    render with :func:`~repro.apps.raytracer.tracer.checksum`.
    """
    if processors < 1:
        raise ValueError(f"processors must be >= 1, got {processors}")
    workers = [new(RenderWorker, grid, width, height) for _ in range(processors)]
    try:
        for index, chunk in enumerate(make_chunks(height, lines_per_chunk)):
            workers[index % processors].render_chunk(chunk)
        image: list[array | None] = [None] * height
        for worker in workers:
            for y, line in worker.collect():
                image[y] = line
    finally:
        for worker in workers:
            try:
                worker.parc_release()
            except ScooppError:
                pass
    missing = [y for y, line in enumerate(image) if line is None]
    if missing:
        raise ScooppError(f"farm lost lines {missing[:5]}... of {height}")
    return image  # type: ignore[return-value]
