"""Applications used in the paper's evaluation (§4).

* :mod:`repro.apps.raytracer` — the Java Grande Forum parallel ray tracer,
  "parallelised using a farming approach, where each worker renders
  several lines from the generated image" (Fig. 9's workload);
* :mod:`repro.apps.primes` — the prime workloads: the running
  ``PrimeServer``/``PrimeFilter`` example of Figs. 4–7 and the "prime
  number sieve" used for the sequential VM comparison.
"""
