"""Java Grande Forum kernel suite (Section 2), sequential and parallel.

The paper's high-level benchmark "a parallel Ray Tracer from the Java
Grande Forum" is one member of the JGF benchmark suite; porting the rest
of the suite is the natural next step for a platform like ParC# (and how
contemporaries of the paper evaluated theirs).  This package implements
the four classic Section-2 kernels with the same structure as the ray
tracer: a validated sequential version plus a ParC# farm/SPMD version
that must reproduce it exactly.

* :mod:`~repro.apps.jgf.series` — Fourier coefficient computation
  (embarrassingly parallel, FP-heavy, trivial communication);
* :mod:`~repro.apps.jgf.sor` — red-black successive over-relaxation
  (stencil with halo exchange: the communication-bound kernel);
* :mod:`~repro.apps.jgf.crypt` — IDEA encryption (integer-heavy,
  block-parallel);
* :mod:`~repro.apps.jgf.sparsematmult` — sparse matrix-vector
  multiplication (irregular access, row-parallel).
"""

from repro.apps.jgf.series import (
    SeriesWorker,
    fourier_coefficients,
    parallel_fourier_coefficients,
)
from repro.apps.jgf.sor import (
    SorWorker,
    parallel_sor,
    sor,
    sor_checksum,
)
from repro.apps.jgf.crypt import (
    CryptWorker,
    idea_decrypt,
    idea_encrypt,
    make_key,
    parallel_crypt_roundtrip,
)
from repro.apps.jgf.sparsematmult import (
    SparseMatmultWorker,
    parallel_sparse_matmult,
    random_sparse_matrix,
    sparse_matmult,
)
from repro.apps.jgf.montecarlo import (
    MonteCarloWorker,
    calibrate,
    historical_series,
    monte_carlo,
    parallel_monte_carlo,
    simulate_path,
)

__all__ = [
    "CryptWorker",
    "MonteCarloWorker",
    "SeriesWorker",
    "SorWorker",
    "SparseMatmultWorker",
    "calibrate",
    "fourier_coefficients",
    "historical_series",
    "idea_decrypt",
    "idea_encrypt",
    "make_key",
    "monte_carlo",
    "parallel_crypt_roundtrip",
    "parallel_fourier_coefficients",
    "parallel_monte_carlo",
    "parallel_sor",
    "parallel_sparse_matmult",
    "random_sparse_matrix",
    "simulate_path",
    "sor",
    "sor_checksum",
    "sparse_matmult",
]
