"""JGF SparseMatmult: repeated sparse matrix-vector multiplication.

The irregular-access JGF kernel: y += A·x over a random sparse matrix in
CSR form, iterated.  Rows are independent within one multiplication, so
the parallel version block-distributes rows; the *iterated* variant
(y feeding back into x) needs a gather between iterations — a realistic
bulk-synchronous pattern for the runtime.
"""

from __future__ import annotations

import random

from repro.core.model import parallel
from repro.core.runtime import new
from repro.errors import ScooppError


def random_sparse_matrix(
    size: int, nonzeros_per_row: int, seed: int = 7
) -> tuple[list[int], list[int], list[float]]:
    """CSR (row_ptr, col_idx, values) with fixed nonzeros per row."""
    if nonzeros_per_row > size:
        raise ValueError("more nonzeros than columns")
    rng = random.Random(seed)
    row_ptr = [0]
    col_idx: list[int] = []
    values: list[float] = []
    for _row in range(size):
        columns = sorted(rng.sample(range(size), nonzeros_per_row))
        col_idx.extend(columns)
        values.extend(rng.uniform(-1.0, 1.0) for _ in columns)
        row_ptr.append(len(col_idx))
    return row_ptr, col_idx, values


def _multiply_rows(
    row_ptr: list[int],
    col_idx: list[int],
    values: list[float],
    x: list[float],
    start: int,
    stop: int,
) -> list[float]:
    """y[start:stop] of one multiplication."""
    out = []
    for row in range(start, stop):
        total = 0.0
        for position in range(row_ptr[row], row_ptr[row + 1]):
            total += values[position] * x[col_idx[position]]
        out.append(total)
    return out


def sparse_matmult(
    matrix: tuple[list[int], list[int], list[float]],
    x: list[float],
    iterations: int = 1,
) -> list[float]:
    """Sequential y = Aⁿ·x (renormalized each step to stay finite)."""
    row_ptr, col_idx, values = matrix
    size = len(row_ptr) - 1
    vector = list(x)
    for _step in range(iterations):
        vector = _multiply_rows(row_ptr, col_idx, values, vector, 0, size)
        vector = _normalize(vector)
    return vector


def _normalize(vector: list[float]) -> list[float]:
    peak = max(abs(value) for value in vector) or 1.0
    return [value / peak for value in vector]


@parallel(
    name="jgf.SparseMatmultWorker",
    async_methods=["load", "set_vector"],
    sync_methods=["multiply"],
)
class SparseMatmultWorker:
    """Owns rows [start, stop) of the CSR matrix."""

    def __init__(self) -> None:
        self.matrix = None
        self.range = (0, 0)
        self.x: list[float] = []

    def load(self, matrix: tuple, start: int, stop: int) -> None:
        self.matrix = matrix
        self.range = (start, stop)

    def set_vector(self, x: list) -> None:
        self.x = list(x)

    def multiply(self) -> list:
        row_ptr, col_idx, values = self.matrix
        start, stop = self.range
        return _multiply_rows(row_ptr, col_idx, values, self.x, start, stop)


def parallel_sparse_matmult(
    matrix: tuple[list[int], list[int], list[float]],
    x: list[float],
    iterations: int = 1,
    workers: int = 4,
) -> list[float]:
    """Row-block parallel Aⁿ·x; requires a live runtime.

    Each iteration: broadcast the vector (async), multiply (sync barrier,
    returns the block), gather + renormalize at the coordinator.
    """
    row_ptr, _col_idx, _values = matrix
    size = len(row_ptr) - 1
    if workers < 1:
        raise ScooppError(f"workers must be >= 1, got {workers}")
    workers = min(workers, size)
    base, extra = divmod(size, workers)
    ranges = []
    start = 0
    for index in range(workers):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    pool = [new(SparseMatmultWorker) for _ in ranges]
    try:
        for worker, (block_start, block_stop) in zip(pool, ranges):
            worker.load(matrix, block_start, block_stop)
        vector = list(x)
        for _step in range(iterations):
            for worker in pool:
                worker.set_vector(vector)
            gathered: list[float] = []
            for worker in pool:
                gathered.extend(worker.multiply())
            vector = _normalize(gathered)
    finally:
        for worker in pool:
            try:
                worker.parc_release()
            except ScooppError:
                pass
    if len(vector) != size:
        raise ScooppError(
            f"matmult farm returned {len(vector)} rows, expected {size}"
        )
    return vector
