"""JGF Crypt: IDEA encryption/decryption over a byte array.

The integer-heavy JGF kernel (the counterpart of the paper's prime sieve
observation: integer code showed no Mono penalty).  Implements the IDEA
block cipher — 8.5 rounds of mul-mod-65537 / add-mod-65536 / xor — with
the standard encryption and decryption key schedules; validation is the
JGF one: decrypt(encrypt(x)) must equal x, block-exact.

The parallel version farms block ranges: IDEA in ECB mode is
embarrassingly parallel across 8-byte blocks.
"""

from __future__ import annotations

import random

from repro.core.model import parallel
from repro.core.runtime import new
from repro.errors import ScooppError

BLOCK_BYTES = 8
KEY_SHORTS = 52


def _mul(a: int, b: int) -> int:
    """IDEA multiplication: mod 65537 with 0 representing 65536."""
    if a == 0:
        return (65537 - b) & 0xFFFF
    if b == 0:
        return (65537 - a) & 0xFFFF
    product = (a * b) % 65537
    return product & 0xFFFF


def _mul_inverse(x: int) -> int:
    """Multiplicative inverse in IDEA's group (mod 65537, 0 ≡ 65536).

    65537 is prime, so every element has an inverse; 65536 ≡ -1 is its
    own inverse, and the 0-encoding makes inverse(0) = 0.
    """
    if x == 0:
        return 0
    return pow(x, -1, 65537) & 0xFFFF


def _add_inverse(x: int) -> int:
    return (0x10000 - x) & 0xFFFF


def make_key(seed: int = 12345) -> list[int]:
    """A random 128-bit user key expanded to 52 encryption subkeys."""
    rng = random.Random(seed)
    user_key = [rng.randrange(0x10000) for _ in range(8)]
    return expand_key(user_key)


def expand_key(user_key: list[int]) -> list[int]:
    """IDEA key schedule: 8 shorts -> 52 subkeys (25-bit rotations)."""
    if len(user_key) != 8:
        raise ValueError("IDEA user key is 8 16-bit words")
    subkeys = list(user_key)
    # Pack into a 128-bit integer and repeatedly rotate left by 25 bits.
    key_bits = 0
    for word in user_key:
        key_bits = (key_bits << 16) | (word & 0xFFFF)
    while len(subkeys) < KEY_SHORTS:
        key_bits = ((key_bits << 25) | (key_bits >> 103)) & (1 << 128) - 1
        for index in range(8):
            if len(subkeys) >= KEY_SHORTS:
                break
            shift = 112 - 16 * index
            subkeys.append((key_bits >> shift) & 0xFFFF)
    return subkeys[:KEY_SHORTS]


def invert_key(encrypt_key: list[int]) -> list[int]:
    """Decryption key schedule from the encryption subkeys."""
    if len(encrypt_key) != KEY_SHORTS:
        raise ValueError("IDEA encryption key is 52 words")
    inverted = [0] * KEY_SHORTS
    # Final output transform becomes the first decryption round.
    inverted[0] = _mul_inverse(encrypt_key[48])
    inverted[1] = _add_inverse(encrypt_key[49])
    inverted[2] = _add_inverse(encrypt_key[50])
    inverted[3] = _mul_inverse(encrypt_key[51])
    position = 4
    for round_index in range(1, 9):
        base = (8 - round_index) * 6
        inverted[position] = encrypt_key[base + 4]
        inverted[position + 1] = encrypt_key[base + 5]
        inverted[position + 2] = _mul_inverse(encrypt_key[base])
        if round_index == 8:
            inverted[position + 3] = _add_inverse(encrypt_key[base + 1])
            inverted[position + 4] = _add_inverse(encrypt_key[base + 2])
        else:
            inverted[position + 3] = _add_inverse(encrypt_key[base + 2])
            inverted[position + 4] = _add_inverse(encrypt_key[base + 1])
        inverted[position + 5] = _mul_inverse(encrypt_key[base + 3])
        position += 6
    return inverted


def _crypt_block(x1: int, x2: int, x3: int, x4: int, key: list[int]) -> tuple[int, int, int, int]:
    """One 64-bit block through 8 rounds + output transform."""
    position = 0
    for _round in range(8):
        x1 = _mul(x1, key[position])
        x2 = (x2 + key[position + 1]) & 0xFFFF
        x3 = (x3 + key[position + 2]) & 0xFFFF
        x4 = _mul(x4, key[position + 3])
        t1 = x1 ^ x3
        t2 = x2 ^ x4
        t1 = _mul(t1, key[position + 4])
        t2 = (t1 + t2) & 0xFFFF
        t2 = _mul(t2, key[position + 5])
        t1 = (t1 + t2) & 0xFFFF
        x1 ^= t2
        x4 ^= t1
        x2, x3 = x3 ^ t2, x2 ^ t1
        position += 6
    y1 = _mul(x1, key[position])
    y2 = (x3 + key[position + 1]) & 0xFFFF
    y3 = (x2 + key[position + 2]) & 0xFFFF
    y4 = _mul(x4, key[position + 3])
    return y1, y2, y3, y4


def _crypt_range(data: bytes, key: list[int]) -> bytes:
    """Run every 8-byte block of *data* through the cipher."""
    if len(data) % BLOCK_BYTES:
        raise ValueError(
            f"data length {len(data)} is not a multiple of {BLOCK_BYTES}"
        )
    out = bytearray(len(data))
    for offset in range(0, len(data), BLOCK_BYTES):
        x1 = (data[offset] << 8) | data[offset + 1]
        x2 = (data[offset + 2] << 8) | data[offset + 3]
        x3 = (data[offset + 4] << 8) | data[offset + 5]
        x4 = (data[offset + 6] << 8) | data[offset + 7]
        y1, y2, y3, y4 = _crypt_block(x1, x2, x3, x4, key)
        out[offset] = y1 >> 8
        out[offset + 1] = y1 & 0xFF
        out[offset + 2] = y2 >> 8
        out[offset + 3] = y2 & 0xFF
        out[offset + 4] = y3 >> 8
        out[offset + 5] = y3 & 0xFF
        out[offset + 6] = y4 >> 8
        out[offset + 7] = y4 & 0xFF
    return bytes(out)


def idea_encrypt(data: bytes, encrypt_key: list[int]) -> bytes:
    """ECB-encrypt *data* (length must be a multiple of 8)."""
    return _crypt_range(data, encrypt_key)


def idea_decrypt(data: bytes, encrypt_key: list[int]) -> bytes:
    """Decrypt data produced by :func:`idea_encrypt` with the same key."""
    return _crypt_range(data, invert_key(encrypt_key))


@parallel(
    name="jgf.CryptWorker",
    async_methods=["crypt_range"],
    sync_methods=["results"],
)
class CryptWorker:
    """Encrypts/decrypts byte ranges (block-aligned) with a fixed key."""

    def __init__(self, encrypt_key: list) -> None:
        self.encrypt_key = list(encrypt_key)
        self.decrypt_key = invert_key(self.encrypt_key)
        self.chunks: dict[int, tuple[bytes, bytes]] = {}

    def crypt_range(self, offset: int, data: bytes) -> None:
        """Encrypt then decrypt *data*; keeps both for validation."""
        encrypted = _crypt_range(data, self.encrypt_key)
        decrypted = _crypt_range(encrypted, self.decrypt_key)
        self.chunks[offset] = (encrypted, decrypted)

    def results(self) -> dict:
        return self.chunks


def parallel_crypt_roundtrip(
    data: bytes, encrypt_key: list[int], workers: int = 4
) -> tuple[bytes, bytes]:
    """Farmed encrypt+decrypt; returns (ciphertext, plaintext-again).

    Requires a live runtime.  Chunks are block-aligned ranges of *data*.
    """
    if len(data) % BLOCK_BYTES:
        raise ValueError("data must be block-aligned")
    if workers < 1:
        raise ScooppError(f"workers must be >= 1, got {workers}")
    pool = [new(CryptWorker, encrypt_key) for _ in range(workers)]
    try:
        blocks = len(data) // BLOCK_BYTES
        per_worker = (blocks + workers - 1) // workers
        chunk_bytes = per_worker * BLOCK_BYTES
        for index, worker in enumerate(pool):
            start = index * chunk_bytes
            if start >= len(data):
                break
            worker.crypt_range(start, data[start : start + chunk_bytes])
        encrypted = bytearray(len(data))
        decrypted = bytearray(len(data))
        for worker in pool:
            for offset, (cipher, plain) in worker.results().items():
                encrypted[offset : offset + len(cipher)] = cipher
                decrypted[offset : offset + len(plain)] = plain
    finally:
        for worker in pool:
            try:
                worker.parc_release()
            except ScooppError:
                pass
    return bytes(encrypted), bytes(decrypted)
