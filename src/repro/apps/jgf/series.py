"""JGF Series: Fourier coefficients of (x+1)^x over [0, 2].

The most embarrassingly parallel JGF kernel: each coefficient pair
(aᵢ, bᵢ) is an independent numerical integration.  The parallel version
farms coefficient ranges to :class:`SeriesWorker` parallel objects —
results must match the sequential computation bit-for-bit (same summation
order per coefficient, so floating point agrees exactly).
"""

from __future__ import annotations

import math

from repro.core.model import parallel
from repro.core.runtime import new
from repro.errors import ScooppError

#: Integration resolution (JGF uses 1000 intervals).
INTERVALS = 1000


def _function(x: float) -> float:
    return (x + 1.0) ** x


def _trapezoid(coefficient: int, kind: str) -> float:
    """One Fourier coefficient by the trapezoid rule (JGF's method)."""
    omega_n = math.pi * coefficient
    dx = 2.0 / INTERVALS
    total = 0.5 * (_weighted(0.0, coefficient, kind) + _weighted(2.0, coefficient, kind))
    x = dx
    for _ in range(INTERVALS - 1):
        total += _weighted(x, coefficient, kind)
        x += dx
    return total * dx


def _weighted(x: float, coefficient: int, kind: str) -> float:
    if coefficient == 0:
        return _function(x)
    if kind == "a":
        return _function(x) * math.cos(math.pi * coefficient * x)
    return _function(x) * math.sin(math.pi * coefficient * x)


def fourier_coefficient_pair(index: int) -> tuple[float, float]:
    """(aᵢ, bᵢ); a₀ carries the DC term, b₀ is 0 by convention."""
    if index == 0:
        return _trapezoid(0, "a") / 2.0, 0.0
    return _trapezoid(index, "a"), _trapezoid(index, "b")


def fourier_coefficients(count: int) -> list[tuple[float, float]]:
    """First *count* coefficient pairs, sequentially."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [fourier_coefficient_pair(index) for index in range(count)]


@parallel(
    name="jgf.SeriesWorker",
    async_methods=["compute_range"],
    sync_methods=["results"],
)
class SeriesWorker:
    """Computes a contiguous range of coefficient pairs."""

    def __init__(self) -> None:
        self.pairs: dict[int, tuple[float, float]] = {}

    def compute_range(self, start: int, stop: int) -> None:
        for index in range(start, stop):
            self.pairs[index] = fourier_coefficient_pair(index)

    def results(self) -> dict:
        return self.pairs


def parallel_fourier_coefficients(
    count: int, workers: int = 4
) -> list[tuple[float, float]]:
    """Farmed computation; requires a live runtime.

    Coefficients are block-distributed; each block is one asynchronous
    call, collection is the synchronous barrier.
    """
    if workers < 1:
        raise ScooppError(f"workers must be >= 1, got {workers}")
    pool = [new(SeriesWorker) for _ in range(workers)]
    try:
        block = (count + workers - 1) // workers
        for index, worker in enumerate(pool):
            start = index * block
            stop = min(start + block, count)
            if start < stop:
                worker.compute_range(start, stop)
        merged: dict[int, tuple[float, float]] = {}
        for worker in pool:
            merged.update(worker.results())
    finally:
        for worker in pool:
            try:
                worker.parc_release()
            except ScooppError:
                pass
    missing = [index for index in range(count) if index not in merged]
    if missing:
        raise ScooppError(f"series farm lost coefficients {missing[:5]}")
    return [tuple(merged[index]) for index in range(count)]
