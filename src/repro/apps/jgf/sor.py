"""JGF SOR: red-black successive over-relaxation on a 2-D grid.

The communication-bound JGF kernel: each iteration updates every interior
point from its four neighbours, so a row-block decomposition must exchange
halo rows every half-iteration.  The parallel version gives each
:class:`SorWorker` a block of rows; a coordinator drives the red/black
half-sweeps and moves boundary rows between neighbours — every update a
worker makes uses exactly the same values as the sequential sweep, so the
final grids agree to the last bit.
"""

from __future__ import annotations

import random

from repro.core.model import parallel
from repro.core.runtime import new
from repro.errors import ScooppError

OMEGA = 1.25


def make_grid(size: int, seed: int = 101) -> list[list[float]]:
    """Random initial grid, deterministic per seed (JGF uses a fixed RNG)."""
    rng = random.Random(seed)
    return [
        [rng.random() * 1e-6 for _column in range(size)]
        for _row in range(size)
    ]


def _relax_row(
    row: list[float],
    above: list[float],
    below: list[float],
    row_index: int,
    colour: int,
    omega: float,
) -> None:
    """Red-black update of one row in place.

    A point (i, j) is updated in the *colour* half-sweep when
    ``(i + j) % 2 == colour``.
    """
    size = len(row)
    start = 1 + ((row_index + 1 + colour) % 2)
    one_minus = 1.0 - omega
    quarter = omega * 0.25
    for column in range(start, size - 1, 2):
        row[column] = (
            quarter
            * (above[column] + below[column] + row[column - 1] + row[column + 1])
            + one_minus * row[column]
        )


def sor(grid: list[list[float]], iterations: int, omega: float = OMEGA) -> None:
    """Sequential red-black SOR, in place."""
    size = len(grid)
    for _sweep in range(iterations):
        for colour in (0, 1):
            for row_index in range(1, size - 1):
                _relax_row(
                    grid[row_index],
                    grid[row_index - 1],
                    grid[row_index + 1],
                    row_index,
                    colour,
                    omega,
                )


def sor_checksum(grid: list[list[float]]) -> float:
    """JGF validation: the sum of all grid values."""
    return sum(sum(row) for row in grid)


@parallel(
    name="jgf.SorWorker",
    async_methods=["set_halo", "relax"],
    sync_methods=["boundary_rows", "block"],
)
class SorWorker:
    """Owns rows [start, stop) of the grid (global indices)."""

    def __init__(self, rows: list, start: int, grid_size: int) -> None:
        self.rows = [list(row) for row in rows]
        self.start = start
        self.grid_size = grid_size
        self.halo_above: list | None = None
        self.halo_below: list | None = None

    def set_halo(self, above: list | None, below: list | None) -> None:
        """Install this half-sweep's neighbour boundary rows."""
        self.halo_above = list(above) if above is not None else None
        self.halo_below = list(below) if below is not None else None

    def relax(self, colour: int, omega: float) -> None:
        """One half-sweep over the owned interior rows."""
        for offset, row in enumerate(self.rows):
            global_index = self.start + offset
            if global_index in (0, self.grid_size - 1):
                continue  # fixed boundary rows
            above = (
                self.rows[offset - 1] if offset > 0 else self.halo_above
            )
            below = (
                self.rows[offset + 1]
                if offset + 1 < len(self.rows)
                else self.halo_below
            )
            if above is None or below is None:
                raise ScooppError(
                    f"missing halo for row {global_index} "
                    f"(above={above is not None}, below={below is not None})"
                )
            _relax_row(row, above, below, global_index, colour, omega)

    def boundary_rows(self) -> tuple:
        """(first owned row, last owned row) for neighbour halos."""
        return (list(self.rows[0]), list(self.rows[-1]))

    def block(self) -> list:
        return self.rows


def _partition(size: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous row ranges, one per worker, covering [0, size)."""
    base, extra = divmod(size, workers)
    ranges = []
    start = 0
    for index in range(workers):
        stop = start + base + (1 if index < extra else 0)
        ranges.append((start, stop))
        start = stop
    return [(s, e) for s, e in ranges if s < e]


def parallel_sor(
    grid: list[list[float]],
    iterations: int,
    workers: int = 4,
    omega: float = OMEGA,
) -> list[list[float]]:
    """Row-block parallel SOR; returns the relaxed grid (input untouched).

    Requires a live runtime.  Each half-sweep: collect boundary rows from
    every worker (synchronous — also the barrier), install halos, relax.
    """
    size = len(grid)
    if size < 3:
        result = [list(row) for row in grid]
        sor(result, iterations, omega)
        return result
    ranges = _partition(size, min(workers, size))
    pool = [
        new(SorWorker, [grid[i] for i in range(start, stop)], start, size)
        for start, stop in ranges
    ]
    try:
        for _sweep in range(iterations):
            for colour in (0, 1):
                boundaries = [worker.boundary_rows() for worker in pool]
                for index, worker in enumerate(pool):
                    above = boundaries[index - 1][1] if index > 0 else None
                    below = (
                        boundaries[index + 1][0]
                        if index + 1 < len(pool)
                        else None
                    )
                    worker.set_halo(above, below)
                for worker in pool:
                    worker.relax(colour, omega)
        result: list[list[float]] = []
        for worker in pool:
            result.extend(worker.block())
    finally:
        for worker in pool:
            try:
                worker.parc_release()
            except ScooppError:
                pass
    if len(result) != size:
        raise ScooppError(
            f"SOR farm returned {len(result)} rows, expected {size}"
        )
    return result
