"""JGF MonteCarlo: financial Monte Carlo simulation (Section 3).

The JGF application benchmark the paper's ray tracer sits beside: generate
a synthetic "historical" asset price series, calibrate a geometric
Brownian motion to its log-returns, then simulate thousands of sample
paths and report the expected return.  Embarrassingly parallel across
paths — and *reproducibly* so: each path derives its RNG seed from its
index, so any work partition produces bit-identical results (the property
the tests pin down).
"""

from __future__ import annotations

import math
import random

from repro.core.model import parallel
from repro.core.runtime import new
from repro.errors import ScooppError


def historical_series(
    days: int = 250, s0: float = 100.0, seed: int = 1812
) -> list[float]:
    """Synthetic daily price history (the dataset JGF ships as a file)."""
    rng = random.Random(seed)
    prices = [s0]
    for _day in range(days - 1):
        shock = rng.gauss(0.0005, 0.012)
        prices.append(prices[-1] * math.exp(shock))
    return prices


def calibrate(prices: list[float]) -> tuple[float, float]:
    """(drift, volatility) of daily log-returns."""
    if len(prices) < 2:
        raise ValueError("need at least two prices to calibrate")
    returns = [
        math.log(later / earlier)
        for earlier, later in zip(prices, prices[1:])
    ]
    mean = sum(returns) / len(returns)
    variance = sum((r - mean) ** 2 for r in returns) / max(len(returns) - 1, 1)
    return mean, math.sqrt(variance)


def simulate_path(
    path_index: int,
    steps: int,
    s0: float,
    drift: float,
    volatility: float,
    base_seed: int = 0,
) -> float:
    """Terminal return of one GBM sample path.

    The RNG seed is a pure function of (base_seed, path_index): path i is
    the same path no matter which worker computes it.
    """
    rng = random.Random((base_seed << 20) ^ (path_index * 2654435761 % (1 << 31)))
    log_price = math.log(s0)
    for _step in range(steps):
        log_price += drift + volatility * rng.gauss(0.0, 1.0)
    return math.exp(log_price) / s0 - 1.0


def monte_carlo(
    n_paths: int,
    steps: int = 250,
    seed: int = 1812,
) -> tuple[float, list[float]]:
    """Sequential run: (expected return, per-path returns)."""
    if n_paths < 1:
        raise ValueError("need at least one path")
    prices = historical_series(seed=seed)
    drift, volatility = calibrate(prices)
    returns = [
        simulate_path(index, steps, prices[-1], drift, volatility, seed)
        for index in range(n_paths)
    ]
    return sum(returns) / n_paths, returns


@parallel(
    name="jgf.MonteCarloWorker",
    async_methods=["simulate_range"],
    sync_methods=["results"],
)
class MonteCarloWorker:
    """Simulates a range of path indices with the shared calibration."""

    def __init__(self, steps: int, s0: float, drift: float,
                 volatility: float, base_seed: int) -> None:
        self.steps = steps
        self.s0 = s0
        self.drift = drift
        self.volatility = volatility
        self.base_seed = base_seed
        self.returns: dict[int, float] = {}

    def simulate_range(self, start: int, stop: int) -> None:
        for index in range(start, stop):
            self.returns[index] = simulate_path(
                index, self.steps, self.s0, self.drift,
                self.volatility, self.base_seed,
            )

    def results(self) -> dict:
        return self.returns


def parallel_monte_carlo(
    n_paths: int,
    steps: int = 250,
    seed: int = 1812,
    workers: int = 4,
) -> tuple[float, list[float]]:
    """Farmed run; bit-identical to :func:`monte_carlo`.

    Requires a live runtime.  Paths are dealt in interleaved strides so
    load balances even if some paths were costlier.
    """
    if workers < 1:
        raise ScooppError(f"workers must be >= 1, got {workers}")
    prices = historical_series(seed=seed)
    drift, volatility = calibrate(prices)
    pool = [
        new(MonteCarloWorker, steps, prices[-1], drift, volatility, seed)
        for _ in range(workers)
    ]
    try:
        block = (n_paths + workers - 1) // workers
        for index, worker in enumerate(pool):
            start = index * block
            stop = min(start + block, n_paths)
            if start < stop:
                worker.simulate_range(start, stop)
        merged: dict[int, float] = {}
        for worker in pool:
            merged.update(worker.results())
    finally:
        for worker in pool:
            try:
                worker.parc_release()
            except ScooppError:
                pass
    missing = [index for index in range(n_paths) if index not in merged]
    if missing:
        raise ScooppError(f"monte carlo farm lost paths {missing[:5]}")
    returns = [merged[index] for index in range(n_paths)]
    return sum(returns) / n_paths, returns
