"""PrimeServer: the paper's running example as a worker farm (Figs. 4-7).

The class the paper uses to illustrate every piece of generated code —
``process(int[] num)`` as the asynchronous method that delegates call,
aggregation packs, and the per-class factory instantiate.  Here it is as a
plain ``@parallel`` class plus a farm driver.
"""

from __future__ import annotations

from typing import Sequence

from repro.apps.primes.sieve import is_prime
from repro.core.model import parallel
from repro.core.runtime import new
from repro.errors import ScooppError


@parallel(
    name="parc.apps.PrimeServer",
    async_methods=["process"],
    sync_methods=["count", "found"],
)
class PrimeServer:
    """Tests batches of candidates, keeping the primes (Fig. 4's class)."""

    def __init__(self) -> None:
        self.primes: list[int] = []
        self.tested = 0

    def process(self, num: Sequence[int]) -> None:
        """Test each candidate in *num* (asynchronous, aggregatable)."""
        for candidate in num:
            self.tested += 1
            if is_prime(candidate):
                self.primes.append(candidate)

    def count(self) -> int:
        """Number of primes found so far (synchronous)."""
        return len(self.primes)

    def found(self) -> list:
        """The primes found, sorted (synchronous)."""
        return sorted(self.primes)


def farm_count_primes(
    limit: int, workers: int = 4, batch: int = 64
) -> int:
    """Count primes < *limit* with a PrimeServer farm.

    Candidates are dealt to workers in *batch*-sized ``process`` calls —
    the paper's "array of integers ... sent as the method parameter".
    Requires a live runtime.
    """
    if workers < 1:
        raise ScooppError(f"workers must be >= 1, got {workers}")
    servers = [new(PrimeServer) for _ in range(workers)]
    try:
        chunk: list[int] = []
        target = 0
        for candidate in range(2, limit):
            chunk.append(candidate)
            if len(chunk) >= batch:
                servers[target % workers].process(chunk)
                chunk = []
                target += 1
        if chunk:
            servers[target % workers].process(chunk)
        return sum(server.count() for server in servers)
    finally:
        for server in servers:
            try:
                server.parc_release()
            except ScooppError:
                pass
