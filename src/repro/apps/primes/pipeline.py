"""PrimeFilter pipeline: a chain of parallel objects.

The classic sieve-of-Eratosthenes pipeline: each stage holds one prime and
forwards candidates that survive it; a candidate that reaches the end of
the chain is itself prime and starts a new stage.  Every hop is an
asynchronous parallel-object call carrying almost no work — the perfect
stress test for **method-call aggregation** (and the workload the ABL-AGG
ablation measures): without packing, the run costs one message per number
per stage.

Stages are created *inside* a parallel method (when a new prime is found),
exercising nested creation and PO-reference passing (§3.1).
"""

from __future__ import annotations

from repro.core.model import parallel
from repro.core.runtime import new


@parallel(
    name="parc.apps.PrimeFilter",
    async_methods=["feed", "finish"],
    sync_methods=["chain_primes"],
)
class PrimeFilter:
    """One pipeline stage: holds a prime, forwards survivors."""

    def __init__(self, prime: int) -> None:
        self.prime = prime
        self.next_stage = None  # created lazily, on the first survivor

    def feed(self, candidate: int) -> None:
        """Test *candidate*; forward it or grow the chain (asynchronous)."""
        if candidate % self.prime == 0:
            return
        if self.next_stage is None:
            self.next_stage = new(PrimeFilter, candidate)
        else:
            self.next_stage.feed(candidate)

    def finish(self) -> None:
        """Propagate end-of-stream down the chain (asynchronous)."""
        if self.next_stage is not None:
            self.next_stage.finish()

    def chain_primes(self) -> list:
        """This stage's prime plus everything downstream (synchronous).

        Walking the chain through synchronous calls also acts as the
        barrier: each stage's pending asynchronous feeds are flushed
        before it reports.
        """
        primes = [self.prime]
        if self.next_stage is not None:
            primes.extend(self.next_stage.chain_primes())
        return primes


def pipeline_primes(limit: int) -> list[int]:
    """All primes <= *limit* through a PrimeFilter pipeline.

    Requires a live runtime.  The chain grows one parallel object per
    prime; with an adaptive grain controller the runtime agglomerates the
    tiny stages (they are exactly the "excess of parallelism" §3.1's
    run-time packing exists to remove).
    """
    if limit < 2:
        return []
    head = new(PrimeFilter, 2)
    try:
        for candidate in range(3, limit + 1):
            head.feed(candidate)
        head.finish()
        return head.chain_primes()
    finally:
        head.parc_release()
