"""Prime workloads: the paper's running example and its sieve benchmark.

* :func:`sieve` — sequential sieve of Eratosthenes, the "prime number
  sieve" whose Mono-vs-JVM sequential time §4 reports as ≈ equal
  (integer-heavy code, unlike the FP-heavy ray tracer);
* :class:`PrimeServer` — the farm-style parallel prime tester of the
  paper's Figs. 4–7 (the class whose generated PO/IO/factory code the
  paper shows);
* :class:`PrimeFilter` + :func:`pipeline_primes` — a parallel-object
  sieve *pipeline*: each stage holds one prime and forwards survivors,
  a natural chain of asynchronous method calls (and the workload the
  aggregation ablation uses — tiny methods, huge call counts).
"""

from repro.apps.primes.sieve import is_prime, sieve
from repro.apps.primes.farm import PrimeServer, farm_count_primes
from repro.apps.primes.pipeline import PrimeFilter, pipeline_primes

__all__ = [
    "PrimeFilter",
    "PrimeServer",
    "farm_count_primes",
    "is_prime",
    "pipeline_primes",
    "sieve",
]
