"""Sequential prime sieve (the integer benchmark of §4).

"Running another application, a prime number sieve, the Mono execution
time is about the same as the JVM" — integer array work exercises a VM
very differently from FP-heavy ray tracing, which is why the platform
models carry separate int/float compute scales.
"""

from __future__ import annotations


def sieve(limit: int) -> list[int]:
    """All primes <= *limit* by the sieve of Eratosthenes."""
    if limit < 2:
        return []
    composite = bytearray(limit + 1)
    primes: list[int] = []
    for candidate in range(2, limit + 1):
        if composite[candidate]:
            continue
        primes.append(candidate)
        start = candidate * candidate
        if start <= limit:
            composite[start :: candidate] = b"\x01" * len(
                range(start, limit + 1, candidate)
            )
    return primes


def is_prime(n: int) -> bool:
    """Trial-division primality test (the per-call work of PrimeServer)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 2
    return True
