"""In-process channel: full serialization path, no sockets.

Used for single-process clusters (simulated nodes) and tests.  The request
body still crosses a real ``bytes`` boundary — the handler receives a copy
of the serialized payload, exactly as it would off a socket — so every
formatter/dispatch bug a socket channel would expose shows up here too,
deterministically and fast.
"""

from __future__ import annotations

import itertools
import threading
from typing import Mapping

from repro.channels.base import Channel, RequestHandler, ServerBinding
from repro.errors import AddressError, ChannelClosedError, ChannelError
from repro.serialization import BinaryFormatter, FastBinaryFormatter


class _LoopbackRegistry:
    """Process-wide table of listening loopback authorities."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._handlers: dict[str, RequestHandler] = {}
        self._counter = itertools.count(1)

    def bind(self, authority: str, handler: RequestHandler) -> str:
        with self._lock:
            if authority in ("", "0", "auto"):
                authority = f"inproc-{next(self._counter)}"
            if authority in self._handlers:
                raise AddressError(
                    f"loopback authority {authority!r} is already bound"
                )
            self._handlers[authority] = handler
            return authority

    def unbind(self, authority: str) -> None:
        with self._lock:
            self._handlers.pop(authority, None)

    def lookup(self, authority: str) -> RequestHandler:
        with self._lock:
            try:
                return self._handlers[authority]
            except KeyError:
                raise ChannelClosedError(
                    f"no loopback server at {authority!r}"
                ) from None


_registry = _LoopbackRegistry()


class _LoopbackBinding(ServerBinding):
    def __init__(self, authority: str) -> None:
        self._authority = authority
        self._closed = False

    @property
    def authority(self) -> str:
        return self._authority

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            _registry.unbind(self._authority)


class LoopbackChannel(Channel):
    """Same-process channel with real serialized payloads.

    ``fastpath`` selects the default formatter exactly like the socket
    channels do — :class:`FastBinaryFormatter` (compiled codecs) when
    true, the legacy :class:`BinaryFormatter` when false — so in-process
    tests can exercise both codec paths.  There is no buffer fast path
    to toggle: the loopback's ``call`` already runs without sockets, and
    an explicit *formatter* wins over the knob either way.
    """

    scheme = "loopback"

    def __init__(
        self,
        formatter=None,  # type: ignore[no-untyped-def]
        *,
        fastpath: bool = True,
    ) -> None:
        if formatter is None:
            formatter = FastBinaryFormatter() if fastpath else BinaryFormatter()
        super().__init__(formatter)

    def listen(self, authority: str, handler: RequestHandler) -> ServerBinding:
        bound = _registry.bind(authority, handler)
        return _LoopbackBinding(bound)

    def call(
        self,
        authority: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> bytes:
        handler = _registry.lookup(authority)
        try:
            # bytes(...) forces a copy so the handler cannot alias the
            # caller's buffer — the same isolation a socket provides.
            response = handler(path, bytes(body), dict(headers or {}))
        except ChannelClosedError:
            raise
        except Exception as exc:  # noqa: BLE001 - wire boundary, like TCP
            raise ChannelError(
                f"remote handler failed: {type(exc).__name__}: {exc}"
            ) from exc
        return bytes(response)
