"""Per-authority circuit breakers for the channel client path.

A dead peer makes every call pay a full connect timeout before failing.
The breaker quarantines an authority after repeated transport failures:
subsequent calls fail in microseconds with
:class:`~repro.errors.CircuitOpenError` instead of re-dialling a corpse.
Classic three-state machine:

* **closed** — calls flow; consecutive transport failures are counted.
* **open** — every call is rejected immediately; after
  ``reset_timeout_s`` the breaker moves to half-open.
* **half-open** — a limited number of probe calls go through; one
  success closes the circuit, one failure re-opens it (and restarts the
  timeout).

:class:`CircuitOpenError` is a :class:`~repro.errors.ChannelError`, so
retry policies treat a rejected call like any other transport failure —
with jittered backoff, retries naturally span the reset timeout and
ride through a half-open recovery.

The :class:`BreakerChannel` wrapper keeps the inner channel's scheme
(like ``MeteredChannel``), so ObjRef URIs are unchanged and it can be
layered under or over the chaos channel freely.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.channels.base import Channel, RequestHandler, ServerBinding
from repro.errors import ChannelError, CircuitOpenError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import MetricsRegistry

#: Breaker states (module constants, not an enum, to keep compares cheap).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerPolicy:
    """When to trip and how to probe for recovery."""

    failure_threshold: int = 5  # consecutive failures before opening
    reset_timeout_s: float = 1.0  # open -> half-open after this long
    half_open_probes: int = 1  # concurrent probes allowed half-open

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be >= 0")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


class CircuitBreaker:
    """One authority's breaker state machine (thread-safe)."""

    def __init__(
        self,
        authority: str,
        policy: BreakerPolicy | None = None,
        clock=time.monotonic,  # type: ignore[no-untyped-def]
        on_transition=None,  # type: ignore[no-untyped-def]
    ) -> None:
        self.authority = authority
        self.policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    def _peek_state(self) -> str:
        # Caller holds the lock.  Open circuits lazily become half-open
        # once the reset timeout elapses; no background timer needed.
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.policy.reset_timeout_s
        ):
            self._transition(HALF_OPEN)
        return self._state

    def _transition(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if new_state == HALF_OPEN:
            self._probes_in_flight = 0
        if new_state == CLOSED:
            self._failures = 0
        if old != new_state and self._on_transition is not None:
            self._on_transition(self.authority, old, new_state)

    # -- the call protocol -------------------------------------------------

    def before_call(self) -> None:
        """Gate one call; raises :class:`CircuitOpenError` if quarantined."""
        with self._lock:
            state = self._peek_state()
            if state == CLOSED:
                return
            if state == HALF_OPEN:
                if self._probes_in_flight < self.policy.half_open_probes:
                    self._probes_in_flight += 1
                    return
            raise CircuitOpenError(
                f"circuit open for {self.authority} "
                f"({self._failures} consecutive failures)"
            )

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._transition(CLOSED)
            self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == HALF_OPEN:
                # The probe failed: back to quarantine, restart the clock.
                self._opened_at = self._clock()
                self._transition(OPEN)
            elif (
                self._state == CLOSED
                and self._failures >= self.policy.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition(OPEN)

    def reset(self) -> None:
        """Force-close (e.g. after the failure detector sees the node up)."""
        with self._lock:
            self._transition(CLOSED)


class BreakerChannel(Channel):
    """Channel wrapper applying a per-authority circuit breaker.

    Transparent to URIs: ``scheme`` is inherited from the inner channel.
    Any :class:`~repro.errors.ChannelError` / :class:`ConnectionError`
    from the inner call counts as a failure; rejections raised by the
    breaker itself do not feed back into the count.
    """

    def __init__(
        self,
        inner: Channel,
        policy: BreakerPolicy | None = None,
        metrics: "MetricsRegistry | None" = None,
        clock=time.monotonic,  # type: ignore[no-untyped-def]
    ) -> None:
        super().__init__(inner.formatter)
        self.inner = inner
        self.scheme = inner.scheme
        self.policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._opened = metrics.counter(
            "breaker.opened", "circuits tripped open"
        ) if metrics else None
        self._closed = metrics.counter(
            "breaker.closed", "circuits recovered closed"
        ) if metrics else None
        self._rejected = metrics.counter(
            "breaker.rejected", "calls rejected while open"
        ) if metrics else None

    def breaker_for(self, authority: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(authority)
            if breaker is None:
                breaker = CircuitBreaker(
                    authority,
                    self.policy,
                    clock=self._clock,
                    on_transition=self._note_transition,
                )
                self._breakers[authority] = breaker
            return breaker

    def state_of(self, authority: str) -> str:
        return self.breaker_for(authority).state

    def _note_transition(self, authority: str, old: str, new: str) -> None:
        if new == OPEN and self._opened is not None:
            self._opened.inc()
        if new == CLOSED and old != CLOSED and self._closed is not None:
            self._closed.inc()
        from repro.telemetry import active_tracer

        tracer = active_tracer()
        if tracer is not None:
            tracer.instant(
                "breaker",
                f"breaker.{new}",
                authority=authority,
                previous=old,
            )

    # -- Channel interface -------------------------------------------------

    def listen(self, authority: str, handler: RequestHandler) -> ServerBinding:
        return self.inner.listen(authority, handler)

    def call(
        self,
        authority: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> bytes:
        breaker = self.breaker_for(authority)
        try:
            breaker.before_call()
        except CircuitOpenError:
            if self._rejected is not None:
                self._rejected.inc()
            raise
        try:
            response = self.inner.call(authority, path, body, headers)
        except (ChannelError, ConnectionError):
            breaker.record_failure()
            raise
        breaker.record_success()
        return response

    def close(self) -> None:
        self.inner.close()
