"""Transport channels: how serialized messages move between nodes.

This is the analog of .Net remoting's channel layer, the part of the stack
the paper benchmarks directly (Fig. 8).  A channel couples a wire framing
with a formatter:

* :class:`TcpChannel` — length-prefixed frames over real TCP sockets,
  binary formatter.  The paper's measured "Mono (Tcp)" configuration.
* :class:`HttpChannel` — real HTTP/1.1 requests/responses over TCP, SOAP
  formatter.  The paper's slow "Mono (Http)" configuration (Fig. 8b).
* :class:`LoopbackChannel` — in-process delivery that still runs the full
  serialize/deserialize path, for single-process clusters and tests.

:class:`ChannelServices` is the scheme registry (``tcp://``, ``http://``,
``loopback://``) mirroring ``ChannelServices.RegisterChannel`` in the
paper's Fig. 2, and :class:`MeteredChannel` wraps any channel to count the
real bytes a protocol exchange puts on the wire (the benchmarks feed those
byte counts to the platform cost models).

:func:`create` builds whole channel *stacks* from a kind string
(``create("breaker+chaos+tcp", ...)``); see
:mod:`repro.channels.factory`.
"""

from repro.channels.base import Channel, ServerBinding
from repro.channels.factory import (
    available_kinds,
    create,
    register_scheme,
    register_wrapper,
)
from repro.channels.loopback import LoopbackChannel
from repro.channels.tcp import TcpChannel
from repro.channels.http import HttpChannel
from repro.channels.meter import ChannelMeter, MeteredChannel
from repro.channels.services import ChannelServices, RemotingUri, parse_uri
from repro.channels.sinks import (
    ChannelSink,
    CompressionSink,
    SinkChannel,
    TraceSink,
)

__all__ = [
    "Channel",
    "ChannelMeter",
    "ChannelServices",
    "ChannelSink",
    "CompressionSink",
    "HttpChannel",
    "LoopbackChannel",
    "MeteredChannel",
    "RemotingUri",
    "ServerBinding",
    "SinkChannel",
    "TraceSink",
    "available_kinds",
    "create",
    "parse_uri",
    "register_scheme",
    "register_wrapper",
]
