"""Channel registry and remoting-URI parsing.

The analog of ``ChannelServices.RegisterChannel`` /
``Activator.GetObject(typeof(T), "tcp://host:1050/DivideServer")`` from the
paper's Fig. 2: a URI's scheme selects a registered channel, its authority
is the endpoint to dial, and its path names the published object.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.channels.base import Channel
from repro.errors import AddressError, ChannelError


@dataclass(frozen=True)
class RemotingUri:
    """Parsed form of ``scheme://authority/path``."""

    scheme: str
    authority: str
    path: str

    def __str__(self) -> str:
        return f"{self.scheme}://{self.authority}/{self.path}"


def parse_uri(uri: str) -> RemotingUri:
    """Parse a remoting URI; raises AddressError on malformed input."""
    scheme, sep, rest = uri.partition("://")
    if not sep or not scheme:
        raise AddressError(f"remoting URI {uri!r} has no scheme://")
    authority, slash, path = rest.partition("/")
    if not authority:
        raise AddressError(f"remoting URI {uri!r} has no authority")
    if not slash or not path:
        raise AddressError(f"remoting URI {uri!r} has no object path")
    return RemotingUri(scheme=scheme, authority=authority, path=path)


class ChannelServices:
    """Per-process (or per-node) map from URI scheme to channel instance.

    Separate instances exist per simulated node so tests can build several
    independent "processes" in one interpreter; :func:`default_services`
    returns the real per-process registry used by the public API.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._channels: dict[str, Channel] = {}

    def register_channel(self, channel: Channel) -> Channel:
        """Register *channel* for its scheme; duplicate schemes are errors."""
        with self._lock:
            existing = self._channels.get(channel.scheme)
            if existing is not None and existing is not channel:
                raise ChannelError(
                    f"a channel for scheme {channel.scheme!r} is already "
                    f"registered"
                )
            self._channels[channel.scheme] = channel
        return channel

    def unregister_channel(self, scheme: str) -> None:
        with self._lock:
            self._channels.pop(scheme, None)

    def channel_for(self, scheme: str) -> Channel:
        try:
            return self._channels[scheme]
        except KeyError:
            raise ChannelError(
                f"no channel registered for scheme {scheme!r}; call "
                f"ChannelServices.register_channel first"
            ) from None

    def channel_for_uri(self, uri: str | RemotingUri) -> tuple[Channel, RemotingUri]:
        parsed = parse_uri(uri) if isinstance(uri, str) else uri
        return self.channel_for(parsed.scheme), parsed

    def close_all(self) -> None:
        """Close every registered channel and clear the registry."""
        with self._lock:
            channels = list(self._channels.values())
            self._channels.clear()
        for channel in channels:
            channel.close()


_default = ChannelServices()


def default_services() -> ChannelServices:
    """The process-wide registry used when none is passed explicitly."""
    return _default
