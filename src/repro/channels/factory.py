"""Scheme-registry channel factory: ``channels.create("chaos+aio")``.

Every subsystem that used to hand-roll a per-scheme ``if/elif`` ladder
(the cluster, the process-worker boot code, the benchmark drivers, tests)
builds channels here instead.  A *kind* is a ``+``-separated stack read
right to left: the last segment names a base transport, every earlier
segment names a wrapper applied around it — ``"breaker+chaos+tcp"`` is a
TCP channel inside a fault injector inside a circuit breaker, the
stacking order the cluster uses so injected faults trip the breaker like
organic ones.

Applications can extend both tables: :func:`register_scheme` adds a base
transport, :func:`register_wrapper` adds a wrapper prefix.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.channels.base import Channel
from repro.errors import ChannelError

_registry_lock = threading.Lock()


def _make_loopback(**opts: Any) -> Channel:
    from repro.channels.loopback import LoopbackChannel

    return LoopbackChannel(**opts)


def _make_tcp(**opts: Any) -> Channel:
    from repro.channels.tcp import TcpChannel

    return TcpChannel(**opts)


def _make_http(**opts: Any) -> Channel:
    from repro.channels.http import HttpChannel

    return HttpChannel(**opts)


def _make_aio(**opts: Any) -> Channel:
    from repro.aio import AioTcpChannel

    return AioTcpChannel(**opts)


def _make_shm(**opts: Any) -> Channel:
    from repro.shm import ShmChannel

    return ShmChannel(**opts)


def _wrap_chaos(
    inner: Channel,
    *,
    chaos_plan: Any = None,
    chaos_controller: Any = None,
    metrics: Any = None,
) -> Channel:
    from repro.chaos import FaultyChannel

    return FaultyChannel(
        inner, plan=chaos_plan, controller=chaos_controller, metrics=metrics
    )


def _wrap_breaker(
    inner: Channel,
    *,
    breaker_policy: Any = None,
    metrics: Any = None,
) -> Channel:
    from repro.channels.breaker import BreakerChannel

    return BreakerChannel(inner, policy=breaker_policy, metrics=metrics)


def _wrap_samenode(inner: Channel, *, metrics: Any = None) -> Channel:
    from repro.shm import SameNodeChannel

    return SameNodeChannel(inner, metrics=metrics)


_SCHEMES: dict[str, Callable[..., Channel]] = {
    "loopback": _make_loopback,
    "tcp": _make_tcp,
    "http": _make_http,
    "aio": _make_aio,
    "shm": _make_shm,
}

#: Wrapper options each prefix consumes from ``create``'s kwargs.
_WRAPPER_OPTS = {
    "chaos": ("chaos_plan", "chaos_controller", "metrics"),
    "breaker": ("breaker_policy", "metrics"),
    "samenode": ("metrics",),
}

_WRAPPERS: dict[str, Callable[..., Channel]] = {
    "chaos": _wrap_chaos,
    "breaker": _wrap_breaker,
    "samenode": _wrap_samenode,
}


def register_scheme(
    name: str, factory: Callable[..., Channel], replace: bool = False
) -> None:
    """Register a base transport under *name* (e.g. ``"quic"``).

    *factory* is called as ``factory(**opts)`` with whatever base-channel
    options :func:`create` received.
    """
    if "+" in name or not name:
        raise ChannelError(f"invalid scheme name {name!r}")
    with _registry_lock:
        if name in _SCHEMES and not replace:
            raise ChannelError(f"scheme {name!r} is already registered")
        _SCHEMES[name] = factory


def register_wrapper(
    name: str,
    wrap: Callable[..., Channel],
    opt_names: tuple[str, ...] = (),
    replace: bool = False,
) -> None:
    """Register a wrapper prefix (called as ``wrap(inner, **opts)``).

    *opt_names* lists the :func:`create` keyword arguments forwarded to
    the wrapper (unknown kwargs are rejected by ``create``).
    """
    if "+" in name or not name:
        raise ChannelError(f"invalid wrapper name {name!r}")
    with _registry_lock:
        if name in _WRAPPERS and not replace:
            raise ChannelError(f"wrapper {name!r} is already registered")
        _WRAPPERS[name] = wrap
        _WRAPPER_OPTS[name] = tuple(opt_names)


def available_kinds() -> tuple[str, ...]:
    """Registered base schemes (wrappers compose with any of them)."""
    with _registry_lock:
        return tuple(sorted(_SCHEMES))


def create(
    kind: str,
    *,
    chaos_plan: Any = None,
    chaos_controller: Any = None,
    breaker_policy: Any = None,
    metrics: Any = None,
    **base_opts: Any,
) -> Channel:
    """Build the channel stack named by *kind*.

    ``kind`` is ``[wrapper+[wrapper+...]]base``; wrapper-specific options
    (``chaos_plan``, ``chaos_controller``, ``breaker_policy``,
    ``metrics``) are routed to the wrapper that consumes them, and any
    remaining keyword arguments go to the base-transport constructor.
    Options for a wrapper that is not part of *kind* are an error — a
    silently ignored ``chaos_plan`` would run a test without its faults.
    """
    parts = kind.split("+")
    base_name, wrapper_names = parts[-1], parts[:-1]
    with _registry_lock:
        base_factory = _SCHEMES.get(base_name)
        wrappers = []
        for name in wrapper_names:
            wrap = _WRAPPERS.get(name)
            if wrap is None:
                raise ChannelError(
                    f"unknown channel wrapper {name!r} in kind {kind!r}"
                )
            wrappers.append((name, wrap, _WRAPPER_OPTS.get(name, ())))
    if base_factory is None:
        raise ChannelError(
            f"unknown channel kind {kind!r}; base schemes: "
            f"{', '.join(available_kinds())}"
        )
    wrapper_opts = {
        "chaos_plan": chaos_plan,
        "chaos_controller": chaos_controller,
        "breaker_policy": breaker_policy,
        "metrics": metrics,
    }
    consumed = set()
    for name, _wrap, opt_names in wrappers:
        consumed.update(opt_names)
        for opt in opt_names:
            # Registered wrappers may declare options beyond the
            # well-known four; those arrive through **base_opts and are
            # claimed here so the base factory never sees them.
            if opt not in wrapper_opts and opt in base_opts:
                wrapper_opts[opt] = base_opts.pop(opt)
    unused = {
        opt
        for opt, value in wrapper_opts.items()
        if value is not None and opt not in consumed and opt != "metrics"
    }
    if unused:
        raise ChannelError(
            f"options {sorted(unused)} have no consumer in kind {kind!r}"
        )
    channel = base_factory(**base_opts)
    # Apply wrappers right to left: the leftmost prefix is outermost.
    for name, wrap, opt_names in reversed(wrappers):
        opts = {
            opt: wrapper_opts[opt]
            for opt in opt_names
            if wrapper_opts.get(opt) is not None
        }
        channel = wrap(channel, **opts)
    return channel
