"""Length-prefixed frame codec used by the TCP and aio channels.

Frame layout::

    magic   2 bytes   0x50 0x43  ("PC")
    flags   1 byte    bit 0: payload starts with a correlation id
    length  4 bytes   big-endian payload length
    payload N bytes

The magic bytes catch cross-protocol accidents (e.g. an HTTP client dialing
a TCP-channel port) with a clear error instead of a hung read.

When bit 0 of ``flags`` (:data:`FLAG_CORRELATED`) is set, the first 8
payload bytes are a big-endian correlation id: the server echoes the id on
the matching response frame, so a multiplexing client
(:class:`repro.aio.AioTcpChannel`) can keep many requests in flight on one
socket and accept the responses out of order.  Frames without the flag are
the classic strictly-ordered request/response exchange of
:class:`repro.channels.tcp.TcpChannel`; the two interoperate on the wire.

Bit 1 (:data:`FLAG_CREDIT`) carries credit-based backpressure
(:mod:`repro.flow`) and is deliberately asymmetric so old peers keep
working: on a *request* the flag alone says "this client understands
credits" — the payload is unchanged, so a server that predates the flag
just ignores the bit.  On a *response* the flag means a 4-byte
big-endian window grant follows the optional correlation id; servers
only ever set it when the request carried the bit, so a client that
predates credits never sees the extra bytes.
"""

from __future__ import annotations

import socket
import struct

from repro.errors import ChannelClosedError, WireFormatError

MAGIC = b"PC"
_HEADER = struct.Struct(">2sBI")
_CORRELATION = struct.Struct(">Q")

#: Byte size of the fixed frame header (magic + flags + length).
HEADER_SIZE = _HEADER.size

#: Byte size of the optional correlation-id prefix inside the payload.
CORRELATION_SIZE = _CORRELATION.size

#: Flag bit: payload is prefixed with an 8-byte correlation id.
FLAG_CORRELATED = 0x01

#: Flag bit: credit-based backpressure.  Requests: flag only (the client
#: opts in).  Responses: a 4-byte window grant follows the correlation id.
FLAG_CREDIT = 0x02

_CREDIT = struct.Struct(">I")

#: Byte size of the optional response credit grant.
CREDIT_SIZE = _CREDIT.size

#: Refuse absurd frames rather than allocating gigabytes on a bad length.
MAX_FRAME = 256 * 1024 * 1024


def encode_frame(
    payload: bytes,
    flags: int = 0,
    correlation_id: int | None = None,
    credit: int | None = None,
) -> bytes:
    """Build a complete frame for *payload*.

    Passing *correlation_id* sets :data:`FLAG_CORRELATED` and prepends the
    id to the payload; :func:`split_correlation` recovers it on the far
    side.  Passing *credit* sets :data:`FLAG_CREDIT` and inserts the grant
    after the correlation id (response frames only; see module docstring).
    """
    if credit is not None:
        flags |= FLAG_CREDIT
        payload = _CREDIT.pack(credit) + payload
    if correlation_id is not None:
        flags |= FLAG_CORRELATED
        payload = _CORRELATION.pack(correlation_id) + payload
    if len(payload) > MAX_FRAME:
        raise WireFormatError(
            f"frame payload of {len(payload)} bytes exceeds {MAX_FRAME}"
        )
    return _HEADER.pack(MAGIC, flags, len(payload)) + payload


def parse_header(header: bytes) -> tuple[int, int]:
    """Validate a raw frame header; returns ``(flags, payload_length)``.

    Shared by the blocking socket reader below and the asyncio stream
    reader in :mod:`repro.aio` so both reject bad magic and absurd lengths
    identically.
    """
    magic, flags, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME:
        raise WireFormatError(f"frame length {length} exceeds {MAX_FRAME}")
    return flags, length


def split_correlation(flags: int, payload: bytes) -> tuple[int | None, bytes]:
    """Extract ``(correlation_id, body)`` from a decoded frame payload.

    Returns ``(None, payload)`` for uncorrelated frames.
    """
    if not flags & FLAG_CORRELATED:
        return None, payload
    if len(payload) < CORRELATION_SIZE:
        raise WireFormatError(
            f"correlated frame payload of {len(payload)} bytes is shorter "
            f"than the {CORRELATION_SIZE}-byte correlation id"
        )
    (correlation_id,) = _CORRELATION.unpack_from(payload)
    return correlation_id, payload[CORRELATION_SIZE:]


def split_credit(flags: int, payload):  # type: ignore[no-untyped-def]
    """Extract ``(credit_grant, body)`` from a *response* payload.

    Call after :func:`split_correlation` (the grant sits between the
    correlation id and the body).  Returns ``(None, payload)`` when the
    response carries no grant — an old server, or one without a grantor.
    Accepts ``bytes`` or ``memoryview`` and slices without copying.
    """
    if not flags & FLAG_CREDIT:
        return None, payload
    if len(payload) < CREDIT_SIZE:
        raise WireFormatError(
            f"credited frame payload of {len(payload)} bytes is shorter "
            f"than the {CREDIT_SIZE}-byte grant"
        )
    (credit,) = _CREDIT.unpack_from(payload)
    return credit, payload[CREDIT_SIZE:]


def pack_credit(credit: int) -> bytes:
    """The 4-byte grant field a credited response prepends to its body."""
    return _CREDIT.pack(credit)


def parse_header_from(buf, offset: int = 0) -> tuple[int, int]:
    """:func:`parse_header` reading in place from a buffer at *offset*.

    Lets stream readers validate headers directly inside their receive
    buffer (``memoryview``/``bytearray``) without slicing a copy first.
    """
    magic, flags, length = _HEADER.unpack_from(buf, offset)
    if magic != MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME:
        raise WireFormatError(f"frame length {length} exceeds {MAX_FRAME}")
    return flags, length


def pack_header_into(buf, offset: int, flags: int, length: int) -> None:
    """Write a frame header in place (the reserved-prefix encode trick).

    The fast encode path appends ``HEADER_SIZE`` placeholder bytes, builds
    the payload behind them, then patches the real header here — one
    buffer, no concatenation.
    """
    if length > MAX_FRAME:
        raise WireFormatError(
            f"frame payload of {length} bytes exceeds {MAX_FRAME}"
        )
    _HEADER.pack_into(buf, offset, MAGIC, flags, length)


def pack_correlation_into(buf, offset: int, correlation_id: int) -> None:
    """Patch a correlation id into a prebuilt frame at *offset*.

    The multiplexing client builds its frame before a correlation id is
    assigned (ids are allocated on the event loop); the placeholder bytes
    after the header are overwritten here at send time.
    """
    _CORRELATION.pack_into(buf, offset, correlation_id)


def append_frame(
    out: bytearray,
    parts,
    flags: int = 0,
    correlation_id: int | None = None,
    credit: int | None = None,
) -> None:
    """Append one complete frame for *parts* to a shared output buffer.

    The buffer-building sibling of :func:`encode_frame`: batched writers
    (the aio response drain) accumulate many frames into one ``bytearray``
    and hand the kernel a single write, with no per-frame ``bytes``.
    """
    length = sum(len(part) for part in parts)
    if correlation_id is not None:
        flags |= FLAG_CORRELATED
        length += CORRELATION_SIZE
    if credit is not None:
        flags |= FLAG_CREDIT
        length += CREDIT_SIZE
    if length > MAX_FRAME:
        raise WireFormatError(
            f"frame payload of {length} bytes exceeds {MAX_FRAME}"
        )
    out += _HEADER.pack(MAGIC, flags, length)
    if correlation_id is not None:
        out += _CORRELATION.pack(correlation_id)
    if credit is not None:
        out += _CREDIT.pack(credit)
    for part in parts:
        out += part


def recv_exact(sock: socket.socket, size: int) -> bytes:
    """Read exactly *size* bytes or raise on EOF."""
    chunks: list[bytes] = []
    remaining = size
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            raise ChannelClosedError(
                f"peer closed connection with {remaining} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_exact_into(sock: socket.socket, view: memoryview) -> None:
    """Fill *view* completely from the socket or raise on EOF.

    The zero-copy sibling of :func:`recv_exact`: bytes land directly in
    the caller's buffer via ``recv_into`` — no chunk list, no join.
    """
    offset = 0
    remaining = len(view)
    while remaining > 0:
        received = sock.recv_into(view[offset:], remaining)
        if received == 0:
            raise ChannelClosedError(
                f"peer closed connection with {remaining} bytes outstanding"
            )
        offset += received
        remaining -= received


def read_frame(sock: socket.socket) -> tuple[int, bytes]:
    """Read one frame; returns ``(flags, payload)``."""
    flags, length = parse_header(recv_exact(sock, HEADER_SIZE))
    return flags, recv_exact(sock, length)


def read_frame_into(
    sock: socket.socket, buf: bytearray
) -> tuple[int, memoryview]:
    """Read one frame into reusable *buf*; returns ``(flags, payload_view)``.

    *buf* is grown (never shrunk) to hold the payload, so a connection's
    receive buffer stabilises at its largest frame and later reads allocate
    nothing.  The returned ``memoryview`` aliases *buf*: the caller must
    release it (and any sub-views) before reusing or growing the buffer,
    or CPython will raise ``BufferError``.
    """
    flags, length = parse_header(recv_exact(sock, HEADER_SIZE))
    if len(buf) < length:
        buf.extend(bytes(length - len(buf)))
    view = memoryview(buf)[:length]
    try:
        recv_exact_into(sock, view)
    except BaseException:
        view.release()
        raise
    return flags, view


def sendmsg_all(sock: socket.socket, parts: list) -> None:
    """Gather-write *parts* (buffers) fully, scatter-gather style.

    Uses ``socket.sendmsg`` (writev) so a frame composed as
    ``[header, meta, body]`` goes out in one syscall without being joined
    into a fresh ``bytes``; partial sends resume mid-part.  Falls back to
    ``sendall`` of a join on platforms without ``sendmsg``.
    """
    views = [memoryview(part).cast("B") for part in parts if len(part)]
    if not views:
        return
    sendmsg = getattr(sock, "sendmsg", None)
    if sendmsg is None:  # pragma: no cover - all CI platforms have sendmsg
        sock.sendall(b"".join(views))
        return
    while views:
        sent = sendmsg(views)
        while views and sent >= len(views[0]):
            sent -= len(views[0])
            views.pop(0)
        if sent and views:
            views[0] = views[0][sent:]


def write_frame_parts(
    sock: socket.socket,
    parts: list,
    flags: int = 0,
    correlation_id: int | None = None,
    credit: int | None = None,
) -> None:
    """Send one frame whose payload is the concatenation of *parts*.

    The scatter-gather sibling of :func:`write_frame`: the header (and
    optional correlation id / credit grant) is built once into a small
    scratch buffer and the payload parts are handed to the kernel as-is.
    """
    length = sum(len(part) for part in parts)
    head = bytearray()
    if correlation_id is not None:
        flags |= FLAG_CORRELATED
        length += CORRELATION_SIZE
    if credit is not None:
        flags |= FLAG_CREDIT
        length += CREDIT_SIZE
    if length > MAX_FRAME:
        raise WireFormatError(
            f"frame payload of {length} bytes exceeds {MAX_FRAME}"
        )
    head += _HEADER.pack(MAGIC, flags, length)
    if correlation_id is not None:
        head += _CORRELATION.pack(correlation_id)
    if credit is not None:
        head += _CREDIT.pack(credit)
    sendmsg_all(sock, [head, *parts])


def write_frame(
    sock: socket.socket,
    payload: bytes,
    flags: int = 0,
    correlation_id: int | None = None,
    credit: int | None = None,
) -> None:
    """Send one complete frame."""
    sock.sendall(encode_frame(payload, flags, correlation_id, credit))
