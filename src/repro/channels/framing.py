"""Length-prefixed frame codec used by the TCP channel.

Frame layout::

    magic   2 bytes   0x50 0x43  ("PC")
    flags   1 byte    reserved (0)
    length  4 bytes   big-endian payload length
    payload N bytes

The magic bytes catch cross-protocol accidents (e.g. an HTTP client dialing
a TCP-channel port) with a clear error instead of a hung read.
"""

from __future__ import annotations

import socket
import struct

from repro.errors import ChannelClosedError, WireFormatError

MAGIC = b"PC"
_HEADER = struct.Struct(">2sBI")

#: Refuse absurd frames rather than allocating gigabytes on a bad length.
MAX_FRAME = 256 * 1024 * 1024


def encode_frame(payload: bytes, flags: int = 0) -> bytes:
    """Build a complete frame for *payload*."""
    if len(payload) > MAX_FRAME:
        raise WireFormatError(
            f"frame payload of {len(payload)} bytes exceeds {MAX_FRAME}"
        )
    return _HEADER.pack(MAGIC, flags, len(payload)) + payload


def recv_exact(sock: socket.socket, size: int) -> bytes:
    """Read exactly *size* bytes or raise on EOF."""
    chunks: list[bytes] = []
    remaining = size
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            raise ChannelClosedError(
                f"peer closed connection with {remaining} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> tuple[int, bytes]:
    """Read one frame; returns ``(flags, payload)``."""
    header = recv_exact(sock, _HEADER.size)
    magic, flags, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME:
        raise WireFormatError(f"frame length {length} exceeds {MAX_FRAME}")
    return flags, recv_exact(sock, length)


def write_frame(sock: socket.socket, payload: bytes, flags: int = 0) -> None:
    """Send one complete frame."""
    sock.sendall(encode_frame(payload, flags))
