"""Length-prefixed frame codec used by the TCP and aio channels.

Frame layout::

    magic   2 bytes   0x50 0x43  ("PC")
    flags   1 byte    bit 0: payload starts with a correlation id
    length  4 bytes   big-endian payload length
    payload N bytes

The magic bytes catch cross-protocol accidents (e.g. an HTTP client dialing
a TCP-channel port) with a clear error instead of a hung read.

When bit 0 of ``flags`` (:data:`FLAG_CORRELATED`) is set, the first 8
payload bytes are a big-endian correlation id: the server echoes the id on
the matching response frame, so a multiplexing client
(:class:`repro.aio.AioTcpChannel`) can keep many requests in flight on one
socket and accept the responses out of order.  Frames without the flag are
the classic strictly-ordered request/response exchange of
:class:`repro.channels.tcp.TcpChannel`; the two interoperate on the wire.
"""

from __future__ import annotations

import socket
import struct

from repro.errors import ChannelClosedError, WireFormatError

MAGIC = b"PC"
_HEADER = struct.Struct(">2sBI")
_CORRELATION = struct.Struct(">Q")

#: Byte size of the fixed frame header (magic + flags + length).
HEADER_SIZE = _HEADER.size

#: Byte size of the optional correlation-id prefix inside the payload.
CORRELATION_SIZE = _CORRELATION.size

#: Flag bit: payload is prefixed with an 8-byte correlation id.
FLAG_CORRELATED = 0x01

#: Refuse absurd frames rather than allocating gigabytes on a bad length.
MAX_FRAME = 256 * 1024 * 1024


def encode_frame(
    payload: bytes, flags: int = 0, correlation_id: int | None = None
) -> bytes:
    """Build a complete frame for *payload*.

    Passing *correlation_id* sets :data:`FLAG_CORRELATED` and prepends the
    id to the payload; :func:`split_correlation` recovers it on the far
    side.
    """
    if correlation_id is not None:
        flags |= FLAG_CORRELATED
        payload = _CORRELATION.pack(correlation_id) + payload
    if len(payload) > MAX_FRAME:
        raise WireFormatError(
            f"frame payload of {len(payload)} bytes exceeds {MAX_FRAME}"
        )
    return _HEADER.pack(MAGIC, flags, len(payload)) + payload


def parse_header(header: bytes) -> tuple[int, int]:
    """Validate a raw frame header; returns ``(flags, payload_length)``.

    Shared by the blocking socket reader below and the asyncio stream
    reader in :mod:`repro.aio` so both reject bad magic and absurd lengths
    identically.
    """
    magic, flags, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME:
        raise WireFormatError(f"frame length {length} exceeds {MAX_FRAME}")
    return flags, length


def split_correlation(flags: int, payload: bytes) -> tuple[int | None, bytes]:
    """Extract ``(correlation_id, body)`` from a decoded frame payload.

    Returns ``(None, payload)`` for uncorrelated frames.
    """
    if not flags & FLAG_CORRELATED:
        return None, payload
    if len(payload) < CORRELATION_SIZE:
        raise WireFormatError(
            f"correlated frame payload of {len(payload)} bytes is shorter "
            f"than the {CORRELATION_SIZE}-byte correlation id"
        )
    (correlation_id,) = _CORRELATION.unpack_from(payload)
    return correlation_id, payload[CORRELATION_SIZE:]


def recv_exact(sock: socket.socket, size: int) -> bytes:
    """Read exactly *size* bytes or raise on EOF."""
    chunks: list[bytes] = []
    remaining = size
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 16))
        if not chunk:
            raise ChannelClosedError(
                f"peer closed connection with {remaining} bytes outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> tuple[int, bytes]:
    """Read one frame; returns ``(flags, payload)``."""
    flags, length = parse_header(recv_exact(sock, HEADER_SIZE))
    return flags, recv_exact(sock, length)


def write_frame(
    sock: socket.socket,
    payload: bytes,
    flags: int = 0,
    correlation_id: int | None = None,
) -> None:
    """Send one complete frame."""
    sock.sendall(encode_frame(payload, flags, correlation_id))
