"""Channel interface: synchronous request/response over some wire.

A channel is deliberately simple — ``call(authority, path, body) -> bytes``
on the client side and a registered handler on the server side.  Request
correlation, async delegates, one-way optimization and object identity all
live a layer up in :mod:`repro.remoting`; this split mirrors .Net
remoting's channel-sink architecture and keeps each wire implementation
small enough to reason about.
"""

from __future__ import annotations

import abc
from typing import Callable, Mapping

#: Server-side request handler: (path, body, headers) -> response body.
RequestHandler = Callable[[str, bytes, Mapping[str, str]], bytes]


class ServerBinding(abc.ABC):
    """A live server endpoint created by :meth:`Channel.listen`."""

    @property
    @abc.abstractmethod
    def authority(self) -> str:
        """The address clients should dial (e.g. ``127.0.0.1:4711``)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Stop accepting requests and release resources (idempotent)."""

    def __enter__(self) -> "ServerBinding":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Channel(abc.ABC):
    """One wire protocol (framing + formatter) usable as client and server."""

    #: URI scheme this channel serves (``tcp``, ``http``, ``loopback``).
    scheme: str

    #: Serialized size of the most recent :meth:`round_trip` request body.
    #: A best-effort statistic (unsynchronised under concurrent callers) —
    #: the adaptive grain controller reads it to estimate bytes-per-call;
    #: it must never be used for correctness.
    last_request_bytes: int = 0

    def __init__(self, formatter) -> None:  # type: ignore[no-untyped-def]
        self.formatter = formatter

    @abc.abstractmethod
    def listen(self, authority: str, handler: RequestHandler) -> ServerBinding:
        """Start serving requests at *authority*.

        ``authority`` may request an ephemeral endpoint (port 0 for socket
        channels); the effective address is on the returned binding.
        """

    @abc.abstractmethod
    def call(
        self,
        authority: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> bytes:
        """Send one request and block for the response body."""

    def round_trip(
        self,
        authority: str,
        path: str,
        message: object,
        headers: Mapping[str, str] | None = None,
    ):
        """Serialize *message*, exchange it, deserialize the response.

        The default composes ``formatter.dumps`` → :meth:`call` →
        ``formatter.loads``, so wrapper channels (chaos, breaker, metering,
        sinks) inherit correct behaviour through their ``call`` overrides
        automatically.  Socket transports override this with a zero-copy
        fast path (pooled encode buffers, scatter-gather writes,
        ``memoryview`` decode) that never materialises the intermediate
        request/response ``bytes``.
        """
        body = self.formatter.dumps(message)
        self.last_request_bytes = len(body)
        response = self.call(authority, path, body, headers=headers)
        return self.formatter.loads(response)

    def close(self) -> None:
        """Release client-side resources (connection pools).  Idempotent."""
