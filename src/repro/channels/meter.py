"""Byte/call metering wrapper around any channel.

The figure benchmarks need the *real* number of bytes a protocol exchange
puts on the wire (binary vs SOAP encodings differ by multiples), which they
then price with a :class:`~repro.perfmodel.platforms.PlatformModel`.
``MeteredChannel`` decorates a channel and counts request/response bytes
and call counts without touching the payloads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping

from repro.channels.base import Channel, RequestHandler, ServerBinding


@dataclass
class ChannelMeter:
    """Mutable counters shared by all calls through one MeteredChannel."""

    calls: int = 0
    request_bytes: int = 0
    response_bytes: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, request_size: int, response_size: int) -> None:
        with self._lock:
            self.calls += 1
            self.request_bytes += request_size
            self.response_bytes += response_size

    @property
    def total_bytes(self) -> int:
        return self.request_bytes + self.response_bytes

    def reset(self) -> None:
        with self._lock:
            self.calls = 0
            self.request_bytes = 0
            self.response_bytes = 0


class MeteredChannel(Channel):
    """Delegates to an inner channel, counting payload traffic.

    Only body bytes are counted (framing overhead is platform-specific and
    already folded into the cost models' ``wire_expansion``).
    """

    def __init__(self, inner: Channel, meter: ChannelMeter | None = None) -> None:
        super().__init__(inner.formatter)
        self.inner = inner
        self.meter = meter if meter is not None else ChannelMeter()
        self.scheme = inner.scheme

    def listen(self, authority: str, handler: RequestHandler) -> ServerBinding:
        return self.inner.listen(authority, handler)

    def call(
        self,
        authority: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> bytes:
        response = self.inner.call(authority, path, body, headers)
        self.meter.record(len(body), len(response))
        return response

    def close(self) -> None:
        self.inner.close()
