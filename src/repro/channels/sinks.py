"""Channel sink chains: composable message processing (.Net sink analog).

.Net remoting channels are built from *sink chains* — each message passes
through formatter and custom sinks before the transport.  This module
reproduces that extensibility point: a :class:`ChannelSink` transforms
(body, headers) on the way out and back, and :class:`SinkChannel` wraps
any channel with a chain of them.

Provided sinks:

* :class:`CompressionSink` — zlib-compresses bodies above a threshold
  (the classic custom sink every .Net remoting tutorial built).  Over the
  paper's 100 Mbit Ethernet this is a real trade: CPU time for wire
  bytes; the EXT-COMP benchmark finds the crossover.
* :class:`TraceSink` — records per-call request/response sizes and
  transformations for diagnostics and tests.

Sinks are symmetric: the same chain instance must wrap both the client
channel and the server listener (headers negotiate per-message, so mixed
deployments degrade gracefully — an uncompressed message passes through a
decompressing server untouched).
"""

from __future__ import annotations

import threading
import zlib
from typing import Mapping, Sequence

from repro.channels.base import Channel, RequestHandler, ServerBinding
from repro.errors import ChannelError

#: Header marking a compressed body (value: original size).
COMPRESSION_HEADER = "parc-encoding"
COMPRESSION_VALUE = "zlib"


class ChannelSink:
    """One stage of a sink chain; default implementation is identity."""

    def outbound(self, body: bytes, headers: dict[str, str]) -> bytes:
        """Transform a message leaving this side (request or response)."""
        return body

    def inbound(self, body: bytes, headers: Mapping[str, str]) -> bytes:
        """Transform a message arriving at this side."""
        return body


class CompressionSink(ChannelSink):
    """zlib compression for bodies above *threshold* bytes.

    Compression is skipped when it does not actually shrink the body
    (already-compressed or random data), so the sink never inflates
    traffic.
    """

    def __init__(self, level: int = 6, threshold: int = 512) -> None:
        if not 0 <= level <= 9:
            raise ChannelError(f"zlib level must be 0..9, got {level}")
        if threshold < 0:
            raise ChannelError("threshold cannot be negative")
        self.level = level
        self.threshold = threshold

    def outbound(self, body: bytes, headers: dict[str, str]) -> bytes:
        if len(body) < self.threshold:
            return body
        compressed = zlib.compress(body, self.level)
        if len(compressed) >= len(body):
            return body
        headers[COMPRESSION_HEADER] = COMPRESSION_VALUE
        return compressed

    def inbound(self, body: bytes, headers: Mapping[str, str]) -> bytes:
        if headers.get(COMPRESSION_HEADER) != COMPRESSION_VALUE:
            return body
        try:
            return zlib.decompress(body)
        except zlib.error as exc:
            raise ChannelError(f"corrupt compressed body: {exc}") from exc


class TraceSink(ChannelSink):
    """Records (direction, size before, size after) per message."""

    def __init__(self) -> None:
        self.events: list[tuple[str, int, int]] = []
        self._lock = threading.Lock()

    def outbound(self, body: bytes, headers: dict[str, str]) -> bytes:
        with self._lock:
            self.events.append(("out", len(body), len(body)))
        return body

    def inbound(self, body: bytes, headers: Mapping[str, str]) -> bytes:
        with self._lock:
            self.events.append(("in", len(body), len(body)))
        return body

    def reset(self) -> None:
        with self._lock:
            self.events.clear()


class SinkChannel(Channel):
    """Wraps a channel with a sink chain (outermost sink first).

    Client side: requests run the chain front-to-back, responses
    back-to-front.  Server side (``listen``): the mirror image.  Response
    metadata rides in a reserved request header space, so the underlying
    channel needs no changes — response-side sink headers are carried
    in-band as a 1-byte flag prefix (0 = plain, 1 = zlib), the simplest
    faithful encoding over a body-only response path.
    """

    _FLAG_PLAIN = b"\x00"
    _FLAG_ZLIB = b"\x01"

    def __init__(self, inner: Channel, sinks: Sequence[ChannelSink]) -> None:
        super().__init__(inner.formatter)
        self.inner = inner
        self.sinks = list(sinks)
        self.scheme = inner.scheme

    # -- response-side framing helpers ------------------------------------

    def _encode_response(self, body: bytes) -> bytes:
        headers: dict[str, str] = {}
        for sink in self.sinks:
            body = sink.outbound(body, headers)
        flag = (
            self._FLAG_ZLIB
            if headers.get(COMPRESSION_HEADER) == COMPRESSION_VALUE
            else self._FLAG_PLAIN
        )
        return flag + body

    def _decode_response(self, payload: bytes) -> bytes:
        if not payload:
            raise ChannelError("empty sink-framed response")
        flag, body = payload[:1], payload[1:]
        headers = (
            {COMPRESSION_HEADER: COMPRESSION_VALUE}
            if flag == self._FLAG_ZLIB
            else {}
        )
        for sink in reversed(self.sinks):
            body = sink.inbound(body, headers)
        return body

    # -- channel surface ----------------------------------------------------

    def listen(self, authority: str, handler: RequestHandler) -> ServerBinding:
        def sink_handler(path: str, body: bytes, headers: Mapping[str, str]) -> bytes:
            incoming = body
            for sink in reversed(self.sinks):
                incoming = sink.inbound(incoming, headers)
            response = handler(path, incoming, headers)
            return self._encode_response(response)

        return self.inner.listen(authority, sink_handler)

    def call(
        self,
        authority: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> bytes:
        mutable_headers = dict(headers or {})
        outgoing = body
        for sink in self.sinks:
            outgoing = sink.outbound(outgoing, mutable_headers)
        payload = self.inner.call(authority, path, outgoing, mutable_headers)
        return self._decode_response(payload)

    def close(self) -> None:
        self.inner.close()
