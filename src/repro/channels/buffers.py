"""Reusable byte buffers for the wire fast path.

The legacy encode path allocates a fresh ``BytesIO`` + ``bytes`` for every
request; at high call rates the allocator churn dominates small-message
latency.  A :class:`BufferPool` hands out ``bytearray``\\ s that are reused
across calls: encoders append into them (``dumps_into``), the socket layer
sends straight from them, and the pool reclaims them afterwards.

Safety rules, enforced here rather than by convention:

* a released buffer is cleared before reuse — no stale request bytes can
  leak into the next payload;
* a buffer with live ``memoryview`` exports cannot be cleared (CPython
  raises ``BufferError``); :meth:`BufferPool.release` treats that as "the
  caller still holds a view" and simply drops the buffer instead of
  corrupting it under the view;
* oversized buffers (a rare huge payload) are dropped on release so the
  pool's steady-state memory stays bounded.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

#: Buffers that grew beyond this are not retained (bytes).
DEFAULT_MAX_BUFFER = 4 * 1024 * 1024

#: Retained buffers per pool.
DEFAULT_MAX_BUFFERS = 16


class BufferPool:
    """A small thread-safe free list of reusable ``bytearray`` buffers."""

    __slots__ = ("_lock", "_buffers", "max_buffers", "max_buffer_size")

    def __init__(
        self,
        max_buffers: int = DEFAULT_MAX_BUFFERS,
        max_buffer_size: int = DEFAULT_MAX_BUFFER,
    ) -> None:
        self._lock = threading.Lock()
        self._buffers: list[bytearray] = []
        self.max_buffers = max_buffers
        self.max_buffer_size = max_buffer_size

    def acquire(self) -> bytearray:
        """Take an empty buffer from the pool (or allocate a fresh one)."""
        with self._lock:
            if self._buffers:
                return self._buffers.pop()
        return bytearray()

    def release(self, buf: bytearray) -> None:
        """Return *buf* to the pool.

        Buffers that still have live ``memoryview`` exports, grew beyond
        ``max_buffer_size``, or exceed the pool's capacity are dropped.
        """
        if len(buf) > self.max_buffer_size:
            return
        try:
            buf.clear()
        except BufferError:
            return  # caller still holds a view into it; let the GC have it
        with self._lock:
            if len(self._buffers) < self.max_buffers:
                self._buffers.append(buf)

    @contextlib.contextmanager
    def borrow(self) -> Iterator[bytearray]:
        """``with pool.borrow() as buf:`` — acquire/release scope helper."""
        buf = self.acquire()
        try:
            yield buf
        finally:
            self.release(buf)

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffers)
