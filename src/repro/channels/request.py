"""Request/response payload codec shared by the framed socket channels.

:class:`~repro.channels.tcp.TcpChannel` and
:class:`~repro.aio.AioTcpChannel` speak the same payload language inside
their frames — only the framing discipline differs (strictly ordered
versus correlation-id multiplexed).  Keeping the codec here means the two
transports stay wire-compatible by construction.

Request payload layout (inside one frame)::

    uvarint len(path)    path bytes (utf-8)
    uvarint header-count (len(key) key len(value) value)*
    body (rest of frame)

Response payload layout::

    status byte (0 = ok, 1 = handler raised)
    body (result bytes, or utf-8 error text when status = 1)
"""

from __future__ import annotations

import io
from typing import Mapping

from repro.errors import ChannelError
from repro.serialization.binary import read_uvarint, write_uvarint

STATUS_OK = 0
STATUS_ERROR = 1


def encode_request(path: str, headers: Mapping[str, str], body: bytes) -> bytes:
    out = io.BytesIO()
    path_bytes = path.encode("utf-8")
    write_uvarint(out, len(path_bytes))
    out.write(path_bytes)
    write_uvarint(out, len(headers))
    for key, value in headers.items():
        key_bytes = key.encode("utf-8")
        value_bytes = value.encode("utf-8")
        write_uvarint(out, len(key_bytes))
        out.write(key_bytes)
        write_uvarint(out, len(value_bytes))
        out.write(value_bytes)
    out.write(body)
    return out.getvalue()


def decode_request(payload: bytes) -> tuple[str, dict[str, str], bytes]:
    buf = io.BytesIO(payload)
    path = buf.read(read_uvarint(buf)).decode("utf-8")
    header_count = read_uvarint(buf)
    headers: dict[str, str] = {}
    for _ in range(header_count):
        key = buf.read(read_uvarint(buf)).decode("utf-8")
        value = buf.read(read_uvarint(buf)).decode("utf-8")
        headers[key] = value
    return path, headers, buf.read()


def encode_response(status: int, body: bytes) -> bytes:
    return bytes((status,)) + body


def decode_response(payload: bytes) -> bytes:
    """Return the response body, raising :class:`ChannelError` on failure."""
    if not payload:
        raise ChannelError("empty response payload")
    status, body = payload[0], payload[1:]
    if status == STATUS_ERROR:
        raise ChannelError(
            f"remote handler failed: {body.decode('utf-8', 'replace')}"
        )
    if status != STATUS_OK:
        raise ChannelError(f"unknown response status {status}")
    return body
