"""Request/response payload codec shared by the framed socket channels.

:class:`~repro.channels.tcp.TcpChannel` and
:class:`~repro.aio.AioTcpChannel` speak the same payload language inside
their frames — only the framing discipline differs (strictly ordered
versus correlation-id multiplexed).  Keeping the codec here means the two
transports stay wire-compatible by construction.

Request payload layout (inside one frame)::

    uvarint len(path)    path bytes (utf-8)
    uvarint header-count (len(key) key len(value) value)*
    body (rest of frame)

Response payload layout::

    status byte (0 = ok, 1 = handler raised)
    body (result bytes, or utf-8 error text when status = 1)
"""

from __future__ import annotations

import io
from typing import Mapping

from repro.errors import ChannelError, WireFormatError
from repro.serialization.binary import (
    append_uvarint,
    read_uvarint,
    uvarint_from,
    write_uvarint,
)

STATUS_OK = 0
STATUS_ERROR = 1


def encode_request(path: str, headers: Mapping[str, str], body: bytes) -> bytes:
    out = io.BytesIO()
    path_bytes = path.encode("utf-8")
    write_uvarint(out, len(path_bytes))
    out.write(path_bytes)
    write_uvarint(out, len(headers))
    for key, value in headers.items():
        key_bytes = key.encode("utf-8")
        value_bytes = value.encode("utf-8")
        write_uvarint(out, len(key_bytes))
        out.write(key_bytes)
        write_uvarint(out, len(value_bytes))
        out.write(value_bytes)
    out.write(body)
    return out.getvalue()


def decode_request(payload: bytes) -> tuple[str, dict[str, str], bytes]:
    buf = io.BytesIO(payload)
    path = buf.read(read_uvarint(buf)).decode("utf-8")
    header_count = read_uvarint(buf)
    headers: dict[str, str] = {}
    for _ in range(header_count):
        key = buf.read(read_uvarint(buf)).decode("utf-8")
        value = buf.read(read_uvarint(buf)).decode("utf-8")
        headers[key] = value
    return path, headers, buf.read()


def encode_request_meta(out: bytearray, path: str, headers: Mapping[str, str]) -> None:
    """Append the request *metadata* (path + headers) to a buffer.

    The fast path builds a frame as ``[reserved header][meta][body]`` in
    one reusable ``bytearray``: this writes the meta section, then the
    caller appends the body via ``formatter.dumps_into`` — no intermediate
    ``bytes`` objects at any step.
    """
    path_bytes = path.encode("utf-8")
    append_uvarint(out, len(path_bytes))
    out += path_bytes
    append_uvarint(out, len(headers))
    for key, value in headers.items():
        key_bytes = key.encode("utf-8")
        value_bytes = value.encode("utf-8")
        append_uvarint(out, len(key_bytes))
        out += key_bytes
        append_uvarint(out, len(value_bytes))
        out += value_bytes


def _sized_read(buf: memoryview, pos: int) -> tuple[memoryview, int]:
    size, pos = uvarint_from(buf, pos)
    end = pos + size
    if end > len(buf):
        raise WireFormatError("truncated request payload")
    return buf[pos:end], end


def decode_request_view(payload) -> tuple[str, dict[str, str], memoryview]:
    """Zero-copy :func:`decode_request`: the body comes back as a view.

    The returned body ``memoryview`` aliases *payload* — callers that keep
    it past the underlying buffer's reuse must copy it explicitly.
    """
    buf = payload if isinstance(payload, memoryview) else memoryview(payload)
    chunk, pos = _sized_read(buf, 0)
    path = str(chunk, "utf-8")
    header_count, pos = uvarint_from(buf, pos)
    headers: dict[str, str] = {}
    for _ in range(header_count):
        chunk, pos = _sized_read(buf, pos)
        key = str(chunk, "utf-8")
        chunk, pos = _sized_read(buf, pos)
        headers[key] = str(chunk, "utf-8")
    return path, headers, buf[pos:]


def encode_response(status: int, body: bytes) -> bytes:
    return bytes((status,)) + body


def decode_response(payload: bytes) -> bytes:
    """Return the response body, raising :class:`ChannelError` on failure."""
    if not payload:
        raise ChannelError("empty response payload")
    status, body = payload[0], payload[1:]
    if status == STATUS_ERROR:
        raise ChannelError(
            f"remote handler failed: {body.decode('utf-8', 'replace')}"
        )
    if status != STATUS_OK:
        raise ChannelError(f"unknown response status {status}")
    return body


def decode_response_view(payload) -> memoryview:
    """Zero-copy :func:`decode_response`: the body comes back as a view."""
    buf = payload if isinstance(payload, memoryview) else memoryview(payload)
    if not len(buf):
        raise ChannelError("empty response payload")
    status = buf[0]
    if status == STATUS_ERROR:
        raise ChannelError(
            f"remote handler failed: {bytes(buf[1:]).decode('utf-8', 'replace')}"
        )
    if status != STATUS_OK:
        raise ChannelError(f"unknown response status {status}")
    return buf[1:]
