"""TCP channel: length-prefixed binary frames over real sockets.

The analog of ``TcpChannel`` in the paper's Fig. 2 and the configuration
behind every "Mono (Tcp)" measurement.  Requests carry a path (the
published object URI) plus headers and a body; responses carry a status
byte so transport-level handler failures are distinguishable from
application-level return values.  The payload layouts live in
:mod:`repro.channels.request`, shared with the multiplexing
:class:`repro.aio.AioTcpChannel`.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Callable, Mapping

from repro.channels.base import Channel, RequestHandler, ServerBinding
from repro.channels.buffers import BufferPool
from repro.channels.framing import (
    FLAG_CREDIT,
    HEADER_SIZE,
    pack_header_into,
    read_frame,
    read_frame_into,
    split_credit,
    write_frame,
    write_frame_parts,
)
from repro.channels.request import (
    STATUS_ERROR,
    STATUS_OK,
    decode_request,
    decode_request_view,
    decode_response,
    decode_response_view,
    encode_request,
    encode_request_meta,
    encode_response,
)
from repro.errors import (
    AddressError,
    ChannelClosedError,
    ChannelError,
    WireFormatError,
)
from repro.flow import CreditGate
from repro.serialization import BinaryFormatter, FastBinaryFormatter


def parse_host_port(authority: str) -> tuple[str, int]:
    """Split ``host:port``; raises AddressError on malformed input."""
    host, sep, port_text = authority.rpartition(":")
    if not sep:
        raise AddressError(f"authority {authority!r} is not host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise AddressError(f"bad port in authority {authority!r}") from None
    if not 0 <= port <= 65535:
        raise AddressError(f"port {port} out of range in {authority!r}")
    return host or "127.0.0.1", port


class _TcpBinding(ServerBinding):
    """Accept loop + per-connection worker threads."""

    def __init__(
        self,
        host: str,
        port: int,
        handler: RequestHandler,
        fastpath: bool = False,
    ) -> None:
        self._handler = handler
        self._fastpath = fastpath
        # Hosts that do flow control hang their CreditGrantor off the
        # handler; a plain handler means responses stay uncredited.
        self._grantor = getattr(handler, "credit_grantor", None)
        self._closed = threading.Event()
        self._server = socket.create_server((host, port), reuse_port=False)
        self._host, self._port = self._server.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"parc-tcp-accept-{self._port}",
            daemon=True,
        )
        self._accept_thread.start()

    @property
    def authority(self) -> str:
        return f"{self._host}:{self._port}"

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # server socket closed
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"parc-tcp-conn-{self._port}",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            if self._fastpath:
                self._serve_fast(conn)
                return
            while not self._closed.is_set():
                try:
                    flags, payload = read_frame(conn)
                except (ChannelError, WireFormatError, OSError):
                    return  # client hung up or sent garbage
                try:
                    path, headers, body = decode_request(payload)
                    response = self._handler(path, body, headers)
                    status = STATUS_OK
                except Exception as exc:  # noqa: BLE001 - wire boundary
                    response = f"{type(exc).__name__}: {exc}".encode("utf-8")
                    status = STATUS_ERROR
                credit = self._grant_for(flags)
                try:
                    write_frame(
                        conn, encode_response(status, response), credit=credit
                    )
                except OSError:
                    return

    def _serve_fast(self, conn: socket.socket) -> None:
        """Zero-copy serve loop: one reusable receive buffer per connection.

        Serving is strictly serial per connection, so the frame payload can
        live in a buffer that is reused across requests; the handler sees
        the request body as a ``memoryview`` into it (handlers must not
        retain the body past their return) and the response goes out as a
        ``[header, status, body]`` gather write with no concatenation.
        """
        recv_buf = bytearray()
        while not self._closed.is_set():
            try:
                flags, view = read_frame_into(conn, recv_buf)
            except (ChannelError, WireFormatError, OSError):
                return  # client hung up or sent garbage
            body = response = None
            try:
                try:
                    path, headers, body = decode_request_view(view)
                    response = self._handler(path, body, headers)
                    status = STATUS_OK
                except Exception as exc:  # noqa: BLE001 - wire boundary
                    response = f"{type(exc).__name__}: {exc}".encode("utf-8")
                    status = STATUS_ERROR
                credit = self._grant_for(flags)
                try:
                    write_frame_parts(
                        conn, [bytes((status,)), response], credit=credit
                    )
                except OSError:
                    return
            finally:
                # Every view into recv_buf must be gone before the next
                # read grows it, or bytearray.extend raises BufferError.
                del body, response
                view.release()

    def _grant_for(self, request_flags: int) -> int | None:
        """Window grant for one response, or ``None`` to stay uncredited.

        Grants only go to peers that set :data:`FLAG_CREDIT` on the
        request — a client that predates credits must never see the
        extra payload bytes.
        """
        if self._grantor is None or not request_flags & FLAG_CREDIT:
            return None
        return self._grantor.grant()

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            try:
                self._server.close()
            except OSError:
                pass


#: Idle sockets kept per remote authority; overflow closes immediately.
DEFAULT_MAX_IDLE_PER_AUTHORITY = 8

#: Idle sockets older than this are discarded instead of reused — a
#: long-parked socket has usually been dropped by the peer or a middlebox,
#: and reusing it surfaces as a confusing first-call ChannelError.
DEFAULT_MAX_IDLE_SECONDS = 30.0


class _ConnectionPool:
    """Bounded idle-socket pool, one list per remote authority.

    ``checkin`` keeps at most *max_idle_per_authority* sockets per
    authority (extras are closed) and ``checkout`` discards sockets that
    sat idle longer than *max_idle_s* rather than handing back a
    probably-dead connection.
    """

    def __init__(
        self,
        max_idle_per_authority: int = DEFAULT_MAX_IDLE_PER_AUTHORITY,
        max_idle_s: float = DEFAULT_MAX_IDLE_SECONDS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._idle: dict[str, list[tuple[socket.socket, float]]] = {}
        # Sockets currently out on a call.  close() force-closes them so
        # an in-flight call fails promptly with ChannelClosedError rather
        # than blocking shutdown on a response that may never come.
        self._checked_out: set[socket.socket] = set()
        self._closed = False
        self._max_idle_per_authority = max_idle_per_authority
        self._max_idle_s = max_idle_s
        self._clock = clock

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def checkout(self, authority: str) -> socket.socket:
        stale: list[socket.socket] = []
        reused: socket.socket | None = None
        with self._lock:
            if self._closed:
                raise ChannelClosedError("channel is closed")
            idle = self._idle.get(authority)
            cutoff = self._clock() - self._max_idle_s
            while idle:
                conn, parked_at = idle.pop()
                if parked_at >= cutoff:
                    reused = conn
                    break
                stale.append(conn)
            if reused is not None:
                self._checked_out.add(reused)
        for conn in stale:
            conn.close()
        if reused is not None:
            return reused
        host, port = parse_host_port(authority)
        try:
            conn = socket.create_connection((host, port), timeout=30.0)
        except OSError as exc:
            raise ChannelError(f"cannot connect to {authority}: {exc}") from exc
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._lock:
            if self._closed:
                conn.close()
                raise ChannelClosedError("channel is closed")
            self._checked_out.add(conn)
        return conn

    def checkin(self, authority: str, conn: socket.socket) -> None:
        with self._lock:
            self._checked_out.discard(conn)
            if not self._closed:
                idle = self._idle.setdefault(authority, [])
                if len(idle) < self._max_idle_per_authority:
                    idle.append((conn, self._clock()))
                    return
        conn.close()

    def forget(self, conn: socket.socket) -> None:
        """Drop a socket that errored mid-call from the checked-out set."""
        with self._lock:
            self._checked_out.discard(conn)

    def idle_count(self, authority: str) -> int:
        with self._lock:
            return len(self._idle.get(authority, ()))

    def close(self) -> None:
        with self._lock:
            self._closed = True
            sockets = [
                conn for conns in self._idle.values() for conn, _at in conns
            ]
            sockets.extend(self._checked_out)
            self._idle.clear()
            self._checked_out.clear()
        for conn in sockets:
            try:
                # shutdown() before close(): closing alone does not wake a
                # thread blocked in recv() on the same socket.
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown must finish
                pass


class TcpChannel(Channel):
    """Binary formatter over framed TCP — the fast remoting configuration.

    ``fastpath=True`` (the default) selects the zero-copy wire path: the
    formatter becomes :class:`FastBinaryFormatter` (same wire format,
    compiled codecs), requests are built in pooled ``bytearray``\\ s with
    the frame header patched in place, and responses are decoded from
    ``memoryview``\\ s of a reusable receive buffer.  ``fastpath=False``
    restores the legacy copy-per-stage path; the two interoperate on the
    wire in either direction.

    ``credits=True`` (the default) opts into credit-based backpressure
    (:mod:`repro.flow`): requests carry :data:`FLAG_CREDIT`, responses
    from credit-aware servers resize a per-authority in-flight window,
    and a saturated window stalls the sender — then sheds with
    :class:`~repro.errors.OverloadError` once the stall budget runs out.
    Either side may predate credits; the exchange degrades to the
    uncredited protocol.
    """

    scheme = "tcp"

    def __init__(
        self,
        formatter=None,  # type: ignore[no-untyped-def]
        *,
        max_idle_per_authority: int = DEFAULT_MAX_IDLE_PER_AUTHORITY,
        max_idle_s: float = DEFAULT_MAX_IDLE_SECONDS,
        fastpath: bool = True,
        credits: bool = True,
        metrics=None,  # type: ignore[no-untyped-def]
    ) -> None:
        if formatter is None:
            formatter = FastBinaryFormatter() if fastpath else BinaryFormatter()
        super().__init__(formatter)
        # The zero-copy encode path needs a formatter that can append into
        # a shared buffer; anything else silently keeps the generic path.
        self._fastpath = fastpath and hasattr(self.formatter, "dumps_into")
        self._pool = _ConnectionPool(max_idle_per_authority, max_idle_s)
        self._buffers = BufferPool()
        self._credits = credits
        self._metrics = metrics
        self._gates: dict[str, CreditGate] = {}
        self._gates_lock = threading.Lock()

    def _gate_for(self, authority: str) -> CreditGate | None:
        if not self._credits:
            return None
        # Unlocked read on the hot path: dict lookups are atomic and
        # gates, once created, are never replaced.
        gate = self._gates.get(authority)
        if gate is not None:
            return gate
        with self._gates_lock:
            gate = self._gates.get(authority)
            if gate is None:
                gate = self._gates[authority] = CreditGate(
                    metrics=self._metrics
                )
            return gate

    def listen(self, authority: str, handler: RequestHandler) -> ServerBinding:
        host, port = parse_host_port(authority)
        return _TcpBinding(host, port, handler, fastpath=self._fastpath)

    def call(
        self,
        authority: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> bytes:
        request = encode_request(path, dict(headers or {}), body)
        gate = self._gate_for(authority)
        if gate is not None:
            gate.acquire()
        try:
            conn = self._pool.checkout(authority)
            try:
                write_frame(
                    conn, request, flags=FLAG_CREDIT if gate else 0
                )
                flags, payload = read_frame(conn)
            except (OSError, ChannelError) as exc:
                self._handle_call_error(conn, authority, path, exc)
                raise
            self._pool.checkin(authority, conn)
        finally:
            if gate is not None:
                gate.release()
        if gate is not None:
            credit, payload = split_credit(flags, payload)
            if credit is not None:
                gate.observe_grant(credit)
        return decode_response(payload)

    def _handle_call_error(
        self, conn: socket.socket, authority: str, path: str, exc: Exception
    ) -> None:
        """Common transport-failure cleanup for ``call``/``round_trip``."""
        self._pool.forget(conn)
        conn.close()
        if self._pool.closed and not isinstance(exc, ChannelClosedError):
            # The pool was closed under us (cluster shutdown): the
            # socket error is a symptom, report the real cause.
            raise ChannelClosedError(
                f"channel closed while calling {authority}/{path}"
            ) from exc

    def round_trip(
        self,
        authority: str,
        path: str,
        message: object,
        headers: Mapping[str, str] | None = None,
    ):
        """Zero-copy request/response exchange.

        The whole request frame — ``[header][path+headers][body]`` — is
        built in one pooled ``bytearray`` (the header is reserved up front
        and patched in place once the length is known) and sent with a
        single ``sendall``; the response frame lands in a second pooled
        buffer and is deserialized straight from a ``memoryview``.  The
        only per-call heap traffic left is the decoded result itself.
        """
        if not self._fastpath:
            return super().round_trip(authority, path, message, headers)
        send_buf = self._buffers.acquire()
        recv_buf = self._buffers.acquire()
        view = payload = body = None
        gate = self._gate_for(authority)
        try:
            send_buf += b"\x00" * HEADER_SIZE
            encode_request_meta(send_buf, path, dict(headers or {}))
            body_start = len(send_buf)
            self.formatter.dumps_into(send_buf, message)
            self.last_request_bytes = len(send_buf) - body_start
            pack_header_into(
                send_buf,
                0,
                FLAG_CREDIT if gate is not None else 0,
                len(send_buf) - HEADER_SIZE,
            )
            if gate is not None:
                gate.acquire()
            try:
                conn = self._pool.checkout(authority)
                try:
                    conn.sendall(send_buf)
                    flags, view = read_frame_into(conn, recv_buf)
                except (OSError, ChannelError) as exc:
                    self._handle_call_error(conn, authority, path, exc)
                    raise
                self._pool.checkin(authority, conn)
            finally:
                if gate is not None:
                    gate.release()
            payload = view
            if gate is not None:
                credit, payload = split_credit(flags, view)
                if credit is not None:
                    gate.observe_grant(credit)
            body = decode_response_view(payload)
            return self.formatter.loads(body)
        finally:
            if body is not None:
                body.release()
            if payload is not None and payload is not view:
                payload.release()
            if view is not None:
                view.release()
            self._buffers.release(recv_buf)
            self._buffers.release(send_buf)

    def close(self) -> None:
        self._pool.close()
