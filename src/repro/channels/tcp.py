"""TCP channel: length-prefixed binary frames over real sockets.

The analog of ``TcpChannel`` in the paper's Fig. 2 and the configuration
behind every "Mono (Tcp)" measurement.  Requests carry a path (the
published object URI) plus headers and a body; responses carry a status
byte so transport-level handler failures are distinguishable from
application-level return values.

Request payload layout (inside one frame)::

    uvarint len(path)    path bytes (utf-8)
    uvarint header-count (len(key) key len(value) value)*
    body (rest of frame)

Response payload layout::

    status byte (0 = ok, 1 = handler raised)
    body (result bytes, or utf-8 error text when status = 1)
"""

from __future__ import annotations

import io
import socket
import threading
from typing import Mapping

from repro.channels.base import Channel, RequestHandler, ServerBinding
from repro.channels.framing import read_frame, write_frame
from repro.errors import AddressError, ChannelClosedError, ChannelError
from repro.serialization import BinaryFormatter
from repro.serialization.binary import read_uvarint, write_uvarint

_STATUS_OK = 0
_STATUS_ERROR = 1


def _encode_request(path: str, headers: Mapping[str, str], body: bytes) -> bytes:
    out = io.BytesIO()
    path_bytes = path.encode("utf-8")
    write_uvarint(out, len(path_bytes))
    out.write(path_bytes)
    write_uvarint(out, len(headers))
    for key, value in headers.items():
        key_bytes = key.encode("utf-8")
        value_bytes = value.encode("utf-8")
        write_uvarint(out, len(key_bytes))
        out.write(key_bytes)
        write_uvarint(out, len(value_bytes))
        out.write(value_bytes)
    out.write(body)
    return out.getvalue()


def _decode_request(payload: bytes) -> tuple[str, dict[str, str], bytes]:
    buf = io.BytesIO(payload)
    path = buf.read(read_uvarint(buf)).decode("utf-8")
    header_count = read_uvarint(buf)
    headers: dict[str, str] = {}
    for _ in range(header_count):
        key = buf.read(read_uvarint(buf)).decode("utf-8")
        value = buf.read(read_uvarint(buf)).decode("utf-8")
        headers[key] = value
    return path, headers, buf.read()


def parse_host_port(authority: str) -> tuple[str, int]:
    """Split ``host:port``; raises AddressError on malformed input."""
    host, sep, port_text = authority.rpartition(":")
    if not sep:
        raise AddressError(f"authority {authority!r} is not host:port")
    try:
        port = int(port_text)
    except ValueError:
        raise AddressError(f"bad port in authority {authority!r}") from None
    if not 0 <= port <= 65535:
        raise AddressError(f"port {port} out of range in {authority!r}")
    return host or "127.0.0.1", port


class _TcpBinding(ServerBinding):
    """Accept loop + per-connection worker threads."""

    def __init__(self, host: str, port: int, handler: RequestHandler) -> None:
        self._handler = handler
        self._closed = threading.Event()
        self._server = socket.create_server((host, port), reuse_port=False)
        self._host, self._port = self._server.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"parc-tcp-accept-{self._port}",
            daemon=True,
        )
        self._accept_thread.start()

    @property
    def authority(self) -> str:
        return f"{self._host}:{self._port}"

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # server socket closed
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"parc-tcp-conn-{self._port}",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while not self._closed.is_set():
                try:
                    _flags, payload = read_frame(conn)
                except (ChannelError, OSError):
                    return  # client hung up or sent garbage
                try:
                    path, headers, body = _decode_request(payload)
                    response = self._handler(path, body, headers)
                    status = _STATUS_OK
                except Exception as exc:  # noqa: BLE001 - wire boundary
                    response = f"{type(exc).__name__}: {exc}".encode("utf-8")
                    status = _STATUS_ERROR
                try:
                    write_frame(conn, bytes((status,)) + response)
                except OSError:
                    return

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            try:
                self._server.close()
            except OSError:
                pass


class _ConnectionPool:
    """Idle-socket pool, one list per remote authority."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._idle: dict[str, list[socket.socket]] = {}
        self._closed = False

    def checkout(self, authority: str) -> socket.socket:
        with self._lock:
            if self._closed:
                raise ChannelClosedError("channel is closed")
            idle = self._idle.get(authority)
            if idle:
                return idle.pop()
        host, port = parse_host_port(authority)
        try:
            conn = socket.create_connection((host, port), timeout=30.0)
        except OSError as exc:
            raise ChannelError(f"cannot connect to {authority}: {exc}") from exc
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return conn

    def checkin(self, authority: str, conn: socket.socket) -> None:
        with self._lock:
            if not self._closed:
                self._idle.setdefault(authority, []).append(conn)
                return
        conn.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            sockets = [
                conn for conns in self._idle.values() for conn in conns
            ]
            self._idle.clear()
        for conn in sockets:
            conn.close()


class TcpChannel(Channel):
    """Binary formatter over framed TCP — the fast remoting configuration."""

    scheme = "tcp"

    def __init__(self, formatter=None) -> None:  # type: ignore[no-untyped-def]
        super().__init__(formatter if formatter is not None else BinaryFormatter())
        self._pool = _ConnectionPool()

    def listen(self, authority: str, handler: RequestHandler) -> ServerBinding:
        host, port = parse_host_port(authority)
        return _TcpBinding(host, port, handler)

    def call(
        self,
        authority: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> bytes:
        request = _encode_request(path, dict(headers or {}), body)
        conn = self._pool.checkout(authority)
        try:
            write_frame(conn, request)
            _flags, payload = read_frame(conn)
        except (OSError, ChannelError):
            conn.close()
            raise
        self._pool.checkin(authority, conn)
        if not payload:
            raise ChannelError("empty response payload")
        status, response = payload[0], payload[1:]
        if status == _STATUS_ERROR:
            raise ChannelError(
                f"remote handler failed: {response.decode('utf-8', 'replace')}"
            )
        if status != _STATUS_OK:
            raise ChannelError(f"unknown response status {status}")
        return response

    def close(self) -> None:
        self._pool.close()
