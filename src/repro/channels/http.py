"""HTTP channel: real HTTP/1.1 over sockets carrying SOAP payloads.

The paper's Fig. 8b shows the Http channel far below the Tcp channel; the
cost is structural — text framing, per-request header blocks, and the SOAP
formatter's verbose encoding.  This module implements an honest (if
minimal) HTTP/1.1 codec: request line + headers + Content-Length body,
keep-alive connections, 200/500 status mapping.  Interoperability with
general HTTP clients is a non-goal; wire realism for the benchmark is.
"""

from __future__ import annotations

import socket
import threading
from typing import Mapping

from repro.channels.base import Channel, RequestHandler, ServerBinding
from repro.channels.framing import recv_exact
from repro.channels.tcp import _ConnectionPool, parse_host_port
from repro.errors import ChannelClosedError, ChannelError, WireFormatError
from repro.serialization import SoapFormatter

_MAX_HEADER_BYTES = 64 * 1024
_USER_HEADER_PREFIX = "x-parc-"


def _read_until_blank_line(conn: socket.socket) -> bytes:
    """Read up to and including the ``\\r\\n\\r\\n`` header terminator."""
    data = bytearray()
    while not data.endswith(b"\r\n\r\n"):
        if len(data) > _MAX_HEADER_BYTES:
            raise WireFormatError("HTTP header block too large")
        chunk = conn.recv(1)
        if not chunk:
            if not data:
                raise ChannelClosedError("peer closed before request")
            raise ChannelClosedError("peer closed mid-header")
        data += chunk
    return bytes(data)


def _parse_headers(lines: list[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(":")
        if not sep:
            raise WireFormatError(f"malformed HTTP header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


def read_http_message(conn: socket.socket) -> tuple[str, dict[str, str], bytes]:
    """Read one HTTP message; returns (start line, headers, body)."""
    raw = _read_until_blank_line(conn).decode("iso-8859-1")
    lines = raw.split("\r\n")
    start_line = lines[0]
    headers = _parse_headers([line for line in lines[1:] if line])
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise WireFormatError(f"bad Content-Length {length_text!r}") from None
    body = recv_exact(conn, length) if length else b""
    return start_line, headers, body


def build_request(
    authority: str, path: str, headers: Mapping[str, str], body: bytes
) -> bytes:
    lines = [
        f"POST /{path} HTTP/1.1",
        f"Host: {authority}",
        "Content-Type: text/xml; charset=utf-8",
        f"Content-Length: {len(body)}",
        'SOAPAction: "parc#invoke"',
        "Connection: keep-alive",
    ]
    for key, value in headers.items():
        lines.append(f"{_USER_HEADER_PREFIX}{key}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("iso-8859-1") + body


def build_response(status: int, reason: str, body: bytes) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: text/xml; charset=utf-8",
        f"Content-Length: {len(body)}",
        "Server: PyParC",
        "Connection: keep-alive",
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("iso-8859-1") + body


class _HttpBinding(ServerBinding):
    def __init__(self, host: str, port: int, handler: RequestHandler) -> None:
        self._handler = handler
        self._closed = threading.Event()
        self._server = socket.create_server((host, port))
        self._host, self._port = self._server.getsockname()[:2]
        thread = threading.Thread(
            target=self._accept_loop,
            name=f"parc-http-accept-{self._port}",
            daemon=True,
        )
        thread.start()

    @property
    def authority(self) -> str:
        return f"{self._host}:{self._port}"

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"parc-http-conn-{self._port}",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while not self._closed.is_set():
                try:
                    start_line, headers, body = read_http_message(conn)
                except (ChannelError, OSError):
                    return
                try:
                    response = self._dispatch(start_line, headers, body)
                except Exception as exc:  # noqa: BLE001 - wire boundary
                    text = f"{type(exc).__name__}: {exc}".encode("utf-8")
                    response = build_response(500, "Internal Server Error", text)
                try:
                    conn.sendall(response)
                except OSError:
                    return

    def _dispatch(
        self, start_line: str, headers: Mapping[str, str], body: bytes
    ) -> bytes:
        parts = start_line.split(" ")
        if len(parts) != 3 or parts[0] != "POST":
            raise WireFormatError(f"unsupported request line {start_line!r}")
        path = parts[1].lstrip("/")
        user_headers = {
            key[len(_USER_HEADER_PREFIX):]: value
            for key, value in headers.items()
            if key.startswith(_USER_HEADER_PREFIX)
        }
        result = self._handler(path, body, user_headers)
        return build_response(200, "OK", result)

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            try:
                self._server.close()
            except OSError:
                pass


class HttpChannel(Channel):
    """SOAP formatter over HTTP/1.1 — the slow remoting configuration."""

    scheme = "http"

    def __init__(self, formatter=None) -> None:  # type: ignore[no-untyped-def]
        super().__init__(formatter if formatter is not None else SoapFormatter())
        self._pool = _ConnectionPool()

    def listen(self, authority: str, handler: RequestHandler) -> ServerBinding:
        host, port = parse_host_port(authority)
        return _HttpBinding(host, port, handler)

    def call(
        self,
        authority: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> bytes:
        request = build_request(authority, path, dict(headers or {}), body)
        conn = self._pool.checkout(authority)
        try:
            conn.sendall(request)
            start_line, _headers, response_body = read_http_message(conn)
        except (OSError, ChannelError):
            conn.close()
            raise
        self._pool.checkin(authority, conn)
        parts = start_line.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise WireFormatError(f"bad HTTP status line {start_line!r}")
        status = parts[1]
        if status == "200":
            return response_body
        raise ChannelError(
            f"remote handler failed (HTTP {status}): "
            f"{response_body.decode('utf-8', 'replace')}"
        )

    def close(self) -> None:
        self._pool.close()
