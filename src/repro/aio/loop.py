"""A dedicated asyncio event loop running on a background thread.

The aio substrate keeps the public :class:`repro.channels.base.Channel`
contract — blocking ``call`` / ``listen`` — while all socket I/O happens
on one event loop.  :class:`LoopThread` is the bridge: it owns the loop,
runs it forever on a daemon thread, and lets synchronous callers submit
coroutines and block on their results.  One loop thread serves every
connection and server of a channel; nothing in this module is
channel-specific.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Any, Coroutine

from repro.errors import ChannelClosedError, ChannelError


class LoopThread:
    """Owns an event loop on a daemon thread; submits work from any thread."""

    def __init__(self, name: str = "parc-aio-loop") -> None:
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._closed = False
        self._lock = threading.Lock()
        self._thread = threading.Thread(
            target=self._run, name=name, daemon=True
        )
        self._thread.start()
        self._started.wait()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.call_soon(self._started.set)
        try:
            self._loop.run_forever()
        finally:
            # Cancel whatever survived close() so the loop can shut down
            # without "task was destroyed but it is pending" warnings.
            tasks = asyncio.all_tasks(self._loop)
            for task in tasks:
                task.cancel()
            if tasks:
                self._loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.close()

    def run(self, coro: Coroutine[Any, Any, Any], timeout: float | None = None) -> Any:
        """Run *coro* on the loop and block for its result.

        Raises :class:`ChannelClosedError` once the loop has been shut
        down; a *timeout* here is a last-ditch guard — per-request
        deadlines belong inside the coroutine (``asyncio.wait_for``) so
        the loop-side work is actually cancelled.
        """
        with self._lock:
            if self._closed:
                raise ChannelClosedError("aio event loop is closed")
            future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise ChannelError(
                f"aio operation did not complete within {timeout}s"
            ) from None

    def close(self, join_timeout: float = 5.0) -> None:
        """Stop the loop and join the thread; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=join_timeout)

    @property
    def closed(self) -> bool:
        return self._closed
