"""Asyncio channel substrate: multiplexed, pipelined remoting transport.

The paper's remoting measurements (§4, Fig. 8) are all about per-call
transport cost; ParC#'s grain-size adaptation exists to amortize it.  This
package attacks the same overhead from the transport side, the way
java.nio does in the paper's §2 comparison: a single event loop instead of
a thread per connection, and one socket per peer carrying many concurrent
requests matched by correlation ids.

* :class:`AioTcpChannel` — the channel (scheme ``"aio"``).  Blocking
  ``call``/``listen`` façade over a dedicated event-loop thread, so it
  plugs into ``ChannelServices`` / ``RemotingHost`` like any other
  channel.
* :class:`LoopThread` — the loop-on-a-thread bridge, reusable by other
  asyncio-backed substrates.

See ``docs/ARCHITECTURE.md`` §2a for the threading model.
"""

from repro.aio.channel import (
    DEFAULT_CONNECT_TIMEOUT,
    DEFAULT_DISPATCH_WORKERS,
    DEFAULT_REQUEST_TIMEOUT,
    DEFAULT_WINDOW,
    AioTcpChannel,
)
from repro.aio.loop import LoopThread

__all__ = [
    "AioTcpChannel",
    "DEFAULT_CONNECT_TIMEOUT",
    "DEFAULT_DISPATCH_WORKERS",
    "DEFAULT_REQUEST_TIMEOUT",
    "DEFAULT_WINDOW",
    "LoopThread",
]
