"""AioTcpChannel: multiplexed, pipelined remoting transport on asyncio.

The thread-per-connection :class:`~repro.channels.tcp.TcpChannel` allows
exactly one in-flight request per pooled socket; every concurrent caller
costs a socket on the client and an OS thread on the server.  This module
is the event-loop alternative — the direction java.nio takes in the
paper's §2 comparison — behind the *same* blocking
:class:`~repro.channels.base.Channel` contract:

* **Server**: one ``asyncio`` event loop accepts every connection; no
  thread per client.  Handlers (which block — they run the remoting
  dispatcher) execute on a bounded dispatch pool, so many requests from
  one or many connections are in flight at once and responses return in
  completion order, matched by correlation id.
* **Client**: one socket per remote authority, shared by all concurrent
  callers.  Each request is tagged with a correlation id
  (:data:`~repro.channels.framing.FLAG_CORRELATED`), so the socket is
  pipelined: many requests go out before the first response returns.  A
  bounded in-flight window applies backpressure (excess requests queue in
  a backlog), each request carries a deadline, and a dead connection is
  re-established on the next call (requests already on the wire fail
  fast; they are never silently retried).
* **Façade**: the event loop runs on a dedicated daemon thread
  (:class:`~repro.aio.loop.LoopThread`); ``call``/``listen`` block, so
  the channel registers under scheme ``"aio"`` in ``ChannelServices`` and
  existing proxies, factories, and ``RemotingHost`` work unchanged.

The per-call path deliberately creates no asyncio task and runs no
coroutine: frames are parsed in ``Protocol.data_received`` callbacks,
caller threads park on ``concurrent.futures.Future``s the parser
completes directly, and cross-thread wake-ups are *coalesced* — caller
threads append requests to an outbox and schedule at most one loop
drain, dispatch workers do the same with finished responses.  Under load
one loop wake-up moves many calls, which is where the multiplexed socket
out-runs thread-per-socket (see ``benchmarks/test_aio_channel.py``).
Coroutines appear only on slow paths (connection establishment).

Frames and payloads are wire-compatible with ``TcpChannel`` (shared codec
in :mod:`repro.channels.request`); an uncorrelated frame from a classic
client is served in arrival order, so the two interoperate.
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import itertools
import queue
import socket
import threading
from typing import Callable, Mapping

from repro.channels.base import Channel, RequestHandler, ServerBinding
from repro.channels.framing import (
    CORRELATION_SIZE,
    FLAG_CORRELATED,
    FLAG_CREDIT,
    HEADER_SIZE,
    append_frame,
    encode_frame,
    pack_correlation_into,
    pack_header_into,
    parse_header_from,
    split_credit,
)
from repro.channels.request import (
    STATUS_ERROR,
    STATUS_OK,
    decode_request,
    decode_request_view,
    decode_response,
    decode_response_view,
    encode_request,
    encode_request_meta,
    encode_response,
)
from repro.channels.tcp import parse_host_port
from repro.errors import ChannelClosedError, ChannelError, WireFormatError
from repro.aio.loop import LoopThread
from repro.serialization import BinaryFormatter, FastBinaryFormatter
from repro.telemetry import MetricsRegistry

#: Default bound on concurrent in-flight requests per client connection.
DEFAULT_WINDOW = 64

#: Default per-request deadline (submit → matching response), seconds.
DEFAULT_REQUEST_TIMEOUT = 30.0

#: Default TCP connect deadline, seconds.
DEFAULT_CONNECT_TIMEOUT = 10.0

#: Default server dispatch pool size (concurrent blocking handlers).
DEFAULT_DISPATCH_WORKERS = 16

#: Response status bytes, indexed by status code (avoids a per-response
#: ``bytes((status,))`` allocation in the drain loop).
_STATUS_BYTES = (bytes((STATUS_OK,)), bytes((STATUS_ERROR,)))


def _finish(future: concurrent.futures.Future, body: bytes) -> None:
    """Complete a caller future, tolerating a caller that gave up."""
    if not future.done():
        try:
            future.set_result(body)
        except concurrent.futures.InvalidStateError:
            pass


def _fail(future: concurrent.futures.Future, error: Exception) -> None:
    if not future.done():
        try:
            future.set_exception(error)
        except concurrent.futures.InvalidStateError:
            pass


class _FrameReceiver(asyncio.Protocol):
    """Incremental PC-frame parser; subclasses get whole frames.

    Parsing happens inside ``data_received`` — no stream-reader
    coroutine, no per-frame scheduling.  A malformed header or a
    correlation flag with a short payload drops the connection, the same
    "hang up on garbage" policy as the threaded TCP server.
    """

    def __init__(self) -> None:
        self.transport: asyncio.Transport | None = None
        self._buffer = bytearray()

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]
        sock = transport.get_extra_info("socket")
        if sock is not None:
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass

    def data_received(self, data: bytes) -> None:
        buffer = self._buffer
        buffer += data
        offset = 0
        try:
            while True:
                if len(buffer) - offset < HEADER_SIZE:
                    break
                # Header and correlation id are parsed in place; only the
                # body is copied out (it outlives this rolling buffer: it
                # is handed to caller futures / the dispatch pool).
                flags, length = parse_header_from(buffer, offset)
                end = offset + HEADER_SIZE + length
                if len(buffer) < end:
                    break
                start = offset + HEADER_SIZE
                if flags & FLAG_CORRELATED:
                    if length < CORRELATION_SIZE:
                        raise WireFormatError(
                            f"correlated frame payload of {length} bytes is "
                            f"shorter than the {CORRELATION_SIZE}-byte "
                            f"correlation id"
                        )
                    correlation_id: int | None = int.from_bytes(
                        buffer[start:start + CORRELATION_SIZE], "big"
                    )
                    body = bytes(buffer[start + CORRELATION_SIZE:end])
                else:
                    correlation_id = None
                    body = bytes(buffer[start:end])
                offset = end
                self.frame_received(correlation_id, body, flags)
        except WireFormatError:
            if self.transport is not None:
                self.transport.close()
            return
        finally:
            if offset:
                del buffer[:offset]

    def frame_received(
        self, correlation_id: int | None, body: bytes, flags: int
    ) -> None:
        raise NotImplementedError


class _ClientMetrics:
    """The client-side telemetry bundle (shared across connections)."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.in_flight = registry.gauge(
            "aio.client.in_flight", "requests on the wire awaiting a response"
        )
        self.queued = registry.gauge(
            "aio.client.queued", "requests waiting for a window slot"
        )
        self.reconnects = registry.counter(
            "aio.client.reconnects", "connections re-established after failure"
        )


class _ClientProtocol(_FrameReceiver):
    """Feeds received frames / connection loss into an _AioConnection."""

    def __init__(self, connection: "_AioConnection") -> None:
        super().__init__()
        self._connection = connection

    def frame_received(
        self, correlation_id: int | None, body: bytes, flags: int
    ) -> None:
        self._connection._on_frame(correlation_id, body, flags)

    def connection_lost(self, exc: Exception | None) -> None:
        self._connection._on_lost(exc)


class _AioConnection:
    """One multiplexed client connection.

    All state is confined to the event loop: every method below other
    than the constructor must run on the loop thread.  Callers park on
    ``concurrent.futures.Future``s which the frame parser completes
    directly — no per-request task or timer exists on the loop.
    """

    def __init__(
        self,
        authority: str,
        window: int,
        metrics: _ClientMetrics,
        credits: bool = True,
    ) -> None:
        self.authority = authority
        self.broken: ChannelError | None = None
        self._transport: asyncio.Transport | None = None
        self._loop = asyncio.get_running_loop()
        self._window = window
        # With credits enabled every request advertises FLAG_CREDIT and
        # the window tracks the server's grants (repro.flow): a loaded
        # server shrinks it, an idle one restores it.  The configured
        # window is only the starting value.
        self._request_flags = FLAG_CREDIT if credits else 0
        self._metrics = metrics
        self._in_flight = 0
        self._pending: dict[int, concurrent.futures.Future] = {}
        self._backlog: collections.deque[
            tuple[bytes, bool, concurrent.futures.Future]
        ] = collections.deque()
        self._ids = itertools.count(1)
        # Outgoing frames are coalesced per loop iteration: _send appends
        # here and the scheduled _flush writes them as one buffer — one
        # syscall carries every frame queued in the same drain cycle.
        self._write_buffer: list[bytes] = []
        self._flush_scheduled = False

    @classmethod
    async def open(
        cls,
        authority: str,
        window: int,
        metrics: _ClientMetrics,
        credits: bool = True,
    ) -> "_AioConnection":
        host, port = parse_host_port(authority)
        connection = cls(authority, window, metrics, credits)
        loop = asyncio.get_running_loop()
        try:
            transport, _protocol = await loop.create_connection(
                lambda: _ClientProtocol(connection), host, port
            )
        except OSError as exc:
            raise ChannelError(f"cannot connect to {authority}: {exc}") from exc
        connection._transport = transport
        return connection

    # -- submission ------------------------------------------------------

    def submit(
        self,
        request: bytes,
        future: concurrent.futures.Future,
        prebuilt: bool = False,
    ) -> None:
        """Send now if a window slot is free, else queue (backpressure).

        *prebuilt* marks a fast-path request: a complete frame built by
        the caller thread with placeholder correlation-id bytes that
        :meth:`_send` patches in place — no re-framing on the loop.
        """
        if future.done():
            return  # caller already timed out or the channel closed
        if self.broken is not None:
            _fail(future, self.broken)
            return
        if self._in_flight >= self._window:
            self._backlog.append((request, prebuilt, future))
            self._metrics.queued.add(1)
            return
        self._send(request, prebuilt, future)

    def _send(
        self,
        request: bytes,
        prebuilt: bool,
        future: concurrent.futures.Future,
    ) -> None:
        correlation_id = next(self._ids)
        self._pending[correlation_id] = future
        future._parc_cid = correlation_id  # for abandon() after a timeout
        self._in_flight += 1
        self._metrics.in_flight.add(1)
        if prebuilt:
            pack_correlation_into(request, HEADER_SIZE, correlation_id)
            self._write_buffer.append(request)
        else:
            self._write_buffer.append(
                encode_frame(
                    request,
                    self._request_flags,
                    correlation_id=correlation_id,
                )
            )
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._loop.call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self._write_buffer or self.broken is not None:
            self._write_buffer.clear()
            return
        if len(self._write_buffer) == 1:
            data = self._write_buffer[0]
        else:
            data = b"".join(self._write_buffer)
        self._write_buffer.clear()
        try:
            self._transport.write(data)
        except Exception as exc:  # noqa: BLE001 - transport boundary
            self._mark_broken(
                ChannelError(f"send to {self.authority} failed: {exc}")
            )

    def _pump(self) -> None:
        """Promote backlog entries into freed window slots."""
        while (
            self._backlog
            and self._in_flight < self._window
            and self.broken is None
        ):
            request, prebuilt, future = self._backlog.popleft()
            self._metrics.queued.add(-1)
            if future.done():
                continue  # abandoned while queued
            self._send(request, prebuilt, future)

    def abandon(self, future: concurrent.futures.Future) -> None:
        """Forget a request whose caller gave up (timeout path)."""
        correlation_id = getattr(future, "_parc_cid", None)
        if correlation_id is not None:
            if self._pending.pop(correlation_id, None) is not None:
                self._in_flight -= 1
                self._metrics.in_flight.add(-1)
                self._pump()
            return
        for entry in self._backlog:
            if entry[2] is future:
                self._backlog.remove(entry)
                self._metrics.queued.add(-1)
                return

    # -- receive ---------------------------------------------------------

    def _on_frame(
        self, correlation_id: int | None, body: bytes, flags: int = 0
    ) -> None:
        if flags & FLAG_CREDIT:
            credit, body = split_credit(flags, body)
            if credit is not None:
                # The server's grant *is* the window; a grown window is
                # applied before the pump below so backlog entries can
                # ride the freed slots immediately.
                self._window = max(1, credit)
        future = self._pending.pop(correlation_id, None)
        if future is None:
            return  # response to an abandoned request
        self._in_flight -= 1
        self._metrics.in_flight.add(-1)
        _finish(future, body)
        if self._backlog:
            self._pump()

    def _on_lost(self, exc: Exception | None) -> None:
        detail = f": {exc}" if exc else ""
        self._mark_broken(
            ChannelError(f"connection to {self.authority} lost{detail}")
        )

    # -- teardown --------------------------------------------------------

    def _mark_broken(self, error: ChannelError) -> None:
        if self.broken is None:
            self.broken = error
        self._write_buffer.clear()
        pending, self._pending = self._pending, {}
        for future in pending.values():
            _fail(future, error)
        self._metrics.in_flight.add(-len(pending))
        self._in_flight = 0
        backlog, self._backlog = self._backlog, collections.deque()
        for _request, _prebuilt, future in backlog:
            _fail(future, error)
        self._metrics.queued.add(-len(backlog))
        if self._transport is not None and not self._transport.is_closing():
            self._transport.close()

    def abort(self) -> None:
        """Tear the connection down, failing anything still pending."""
        self._mark_broken(
            ChannelClosedError(f"connection to {self.authority} closed")
        )


class _DispatchPool:
    """Minimal worker pool for blocking handlers.

    Far leaner than ``ThreadPoolExecutor`` on this hot path: no per-task
    Future, no done-callback machinery — workers pull ``(payload,
    on_done)`` items off a ``SimpleQueue`` and invoke the completion
    callback on the worker thread.
    """

    def __init__(
        self, workers: int, dispatch: Callable[[bytes], tuple[int, bytes]]
    ) -> None:
        self._dispatch = dispatch
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._work, name="parc-aio-dispatch", daemon=True
            )
            for _ in range(max(1, workers))
        ]
        for thread in self._threads:
            thread.start()

    def submit(
        self, payload: bytes, on_done: Callable[[int, bytes], None]
    ) -> bool:
        """Queue one dispatch; False once the pool is shut down."""
        if self._closed:
            return False
        self._queue.put((payload, on_done))
        return True

    def _work(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            payload, on_done = item
            status, response = self._dispatch(payload)
            try:
                on_done(status, response)
            except Exception:  # noqa: BLE001 - completion must not kill worker
                pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)


class _ServerProtocol(_FrameReceiver):
    """One accepted connection: frames in, correlated responses out.

    Correlated requests go straight to the dispatch pool and respond in
    completion order.  Uncorrelated frames (a classic ordered TcpChannel
    client) are dispatched one at a time so their responses keep request
    order.
    """

    def __init__(self, binding: "_AioBinding") -> None:
        super().__init__()
        self._binding = binding
        self._ordered: collections.deque[tuple[bytes, bool]] = (
            collections.deque()
        )
        self._ordered_busy = False

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        super().connection_made(transport)
        self._binding._transports.add(self.transport)

    def connection_lost(self, exc: Exception | None) -> None:
        self._binding._transports.discard(self.transport)

    def frame_received(
        self, correlation_id: int | None, body: bytes, flags: int
    ) -> None:
        binding = self._binding
        binding._in_flight.add(1)
        # The client opted into credit grants (repro.flow); responses to
        # it carry a window grant when the binding has a grantor.
        wants_credit = bool(flags & FLAG_CREDIT) and binding._grantor is not None
        if correlation_id is None:
            self._ordered.append((body, wants_credit))
            if not self._ordered_busy:
                self._ordered_busy = True
                self._next_ordered()
            return
        accepted = binding._pool.submit(
            body,
            lambda status, response, cid=correlation_id, wc=wants_credit:
                binding._respond_later(
                    self.transport, cid, status, response, wc
                ),
        )
        if not accepted:  # pool shut down: binding is closing
            binding._in_flight.add(-1)
            self.transport.close()

    def _next_ordered(self) -> None:
        body, wants_credit = self._ordered.popleft()
        accepted = self._binding._pool.submit(
            body,
            lambda status, response, wc=wants_credit:
                self._ordered_done(status, response, wc),
        )
        if not accepted:
            self._binding._in_flight.add(-1)
            self.transport.close()

    def _ordered_done(
        self, status: int, response: bytes, wants_credit: bool
    ) -> None:
        # Runs on a dispatch worker; hop to the loop to write in order.
        try:
            self._binding._loop.call_soon_threadsafe(
                self._ordered_complete, status, response, wants_credit
            )
        except RuntimeError:
            pass  # loop already closed

    def _ordered_complete(
        self, status: int, response: bytes, wants_credit: bool
    ) -> None:
        binding = self._binding
        binding._in_flight.add(-1)
        credit = binding._grantor.grant() if wants_credit else None
        binding._write_response(
            self.transport, None, status, response, credit
        )
        if self._ordered:
            self._next_ordered()
        else:
            self._ordered_busy = False


class _AioBinding(ServerBinding):
    """A listening asyncio server plus its blocking-dispatch pool.

    The accept loop and all frame I/O run on the channel's event loop;
    each decoded request is handed straight to the dispatch pool.
    Finished responses are queued and written by a *coalesced* loop
    callback — under load one loop wake-up flushes many responses.
    """

    def __init__(
        self,
        channel: "AioTcpChannel",
        host: str,
        port: int,
        handler: RequestHandler,
    ) -> None:
        self._handler = handler
        # Attached by RemotingHost.listen; plain handlers have none and
        # their responses carry no credit grants.
        self._grantor = getattr(handler, "credit_grantor", None)
        self._fastpath = channel._fastpath
        self._loop_thread = channel._ensure_loop()
        self._loop = self._loop_thread.loop
        self._in_flight = channel.metrics.gauge(
            "aio.server.in_flight", "requests accepted, response not yet sent"
        )
        self._pool = _DispatchPool(channel.dispatch_workers, self._dispatch)
        self._responses: collections.deque = collections.deque()
        self._responses_scheduled = False
        self._closed = False
        self._transports: set[asyncio.Transport] = set()

        async def start() -> asyncio.AbstractServer:
            return await self._loop.create_server(
                lambda: _ServerProtocol(self), host, port
            )

        self._server = self._loop_thread.run(start())
        name = self._server.sockets[0].getsockname()
        self._authority = f"{name[0]}:{name[1]}"

    @property
    def authority(self) -> str:
        return self._authority

    def _dispatch(self, payload: bytes) -> tuple[int, bytes]:
        """Decode + run the blocking handler (executes on the pool)."""
        try:
            if self._fastpath:
                # The payload is an immutable per-frame bytes object, so
                # the body view stays valid for the handler's lifetime.
                path, headers, body = decode_request_view(payload)
            else:
                path, headers, body = decode_request(payload)
            return STATUS_OK, self._handler(path, body, headers)
        except Exception as exc:  # noqa: BLE001 - wire boundary
            return STATUS_ERROR, f"{type(exc).__name__}: {exc}".encode("utf-8")

    def _respond_later(
        self,
        transport: asyncio.Transport,
        correlation_id: int,
        status: int,
        response: bytes,
        wants_credit: bool = False,
    ) -> None:
        """Dispatch-pool completion (worker thread): queue the response.

        Scheduling is coalesced: the first completion after a drain wakes
        the loop, completions racing in behind it ride the same wake-up.
        """
        self._responses.append(
            (transport, correlation_id, status, response, wants_credit)
        )
        if not self._responses_scheduled:
            self._responses_scheduled = True
            try:
                self._loop.call_soon_threadsafe(self._drain_responses)
            except RuntimeError:
                pass  # loop already closed

    def _drain_responses(self) -> None:
        self._responses_scheduled = False
        buffers: dict[asyncio.Transport, bytearray] = {}
        drained = 0
        # One grant covers every credited response in this drain cycle:
        # pressure does not move faster than a loop wake-up.
        grant: int | None = None
        while True:
            try:
                transport, correlation_id, status, response, wants_credit = (
                    self._responses.popleft()
                )
            except IndexError:
                break
            drained += 1
            if transport.is_closing():
                continue
            credit = None
            if wants_credit:
                if grant is None:
                    grant = self._grantor.grant()
                credit = grant
            # Frames are appended straight into one buffer per connection
            # — no per-response bytes objects, no final join.
            frames = buffers.get(transport)
            if frames is None:
                frames = buffers[transport] = bytearray()
            append_frame(
                frames,
                (_STATUS_BYTES[status], response),
                correlation_id=correlation_id,
                credit=credit,
            )
        if drained:
            self._in_flight.add(-drained)
        # One write per connection flushes every response drained above.
        for transport, frames in buffers.items():
            try:
                transport.write(frames)
            except Exception:  # noqa: BLE001 - client went away mid-response
                pass

    def _write_response(
        self,
        transport: asyncio.Transport,
        correlation_id: int | None,
        status: int,
        response: bytes,
        credit: int | None = None,
    ) -> None:
        if transport.is_closing():
            return
        frame = bytearray()
        append_frame(
            frame,
            (_STATUS_BYTES[status], response),
            correlation_id=correlation_id,
            credit=credit,
        )
        try:
            transport.write(frame)
        except Exception:  # noqa: BLE001 - client went away mid-response
            pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True

        async def shut_down() -> None:
            self._server.close()
            # asyncio keeps established connections alive after a server
            # closes; drop them so clients observe the shutdown (EOF) and
            # reconnect instead of pipelining into a dead dispatcher.
            for transport in list(self._transports):
                try:
                    transport.close()
                except Exception:  # noqa: BLE001 - best-effort teardown
                    pass
            self._transports.clear()
            await self._server.wait_closed()

        try:
            self._loop_thread.run(shut_down(), timeout=5.0)
        except (ChannelClosedError, ChannelError):
            pass  # loop already gone: sockets die with the daemon thread
        self._pool.close()


class AioTcpChannel(Channel):
    """Event-loop transport, scheme ``aio`` — one socket, many in-flight calls.

    Parameters
    ----------
    window:
        Max concurrent in-flight requests per client connection; further
        requests queue in a backlog (backpressure) and the wait counts
        toward their deadline.  With *credits* enabled this is only the
        starting value — server grants resize it per connection.
    credits:
        Credit-based backpressure (:mod:`repro.flow`): requests advertise
        :data:`~repro.channels.framing.FLAG_CREDIT` and the in-flight
        window follows the server's response grants, so a loaded server
        throttles this client without dropping anything.  Responses from
        servers that predate credits (or have no grantor) leave the
        window at its configured value.
    request_timeout:
        Per-request deadline in seconds, covering backlog wait + send +
        response (and connection establishment when one must be opened).
    connect_timeout:
        TCP connect deadline in seconds.
    dispatch_workers:
        Server-side dispatch-pool size (concurrent blocking handlers).
    metrics:
        A :class:`~repro.telemetry.MetricsRegistry` receiving the
        in-flight / queue-depth gauges and the reconnect counter; a
        private registry is created when omitted (exposed as ``.metrics``).
    """

    scheme = "aio"

    def __init__(
        self,
        formatter=None,  # type: ignore[no-untyped-def]
        *,
        window: int = DEFAULT_WINDOW,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        dispatch_workers: int = DEFAULT_DISPATCH_WORKERS,
        metrics: MetricsRegistry | None = None,
        fastpath: bool = True,
        credits: bool = True,
    ) -> None:
        if formatter is None:
            formatter = FastBinaryFormatter() if fastpath else BinaryFormatter()
        super().__init__(formatter)
        self._fastpath = fastpath and hasattr(self.formatter, "dumps_into")
        if window < 1:
            raise ChannelError("window must be at least 1")
        self.window = window
        self.credits = credits
        self._request_flags = FLAG_CORRELATED | (
            FLAG_CREDIT if credits else 0
        )
        self.request_timeout = request_timeout
        self.connect_timeout = connect_timeout
        self.dispatch_workers = dispatch_workers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._client_metrics = _ClientMetrics(self.metrics)
        self._lock = threading.Lock()
        self._loop_thread: LoopThread | None = None
        self._closed = False
        # Submission outbox: caller threads append, one coalesced loop
        # callback drains.  Under load many calls share one loop wake-up.
        self._outbox: collections.deque = collections.deque()
        self._outbox_scheduled = False
        # Loop-confined state (touched only from the loop thread):
        self._connections: dict[str, _AioConnection] = {}
        self._conn_locks: dict[str, asyncio.Lock] = {}

    # -- loop lifecycle --------------------------------------------------

    def _ensure_loop(self) -> LoopThread:
        with self._lock:
            if self._closed:
                raise ChannelClosedError("channel is closed")
            if self._loop_thread is None:
                self._loop_thread = LoopThread(name="parc-aio-loop")
            return self._loop_thread

    # -- server ----------------------------------------------------------

    def listen(self, authority: str, handler: RequestHandler) -> ServerBinding:
        host, port = parse_host_port(authority)
        return _AioBinding(self, host, port, handler)

    # -- client ----------------------------------------------------------

    def call(
        self,
        authority: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> bytes:
        request = encode_request(path, dict(headers or {}), body)
        payload = self._exchange(authority, request, prebuilt=False)
        return decode_response(payload)

    def round_trip(
        self,
        authority: str,
        path: str,
        message: object,
        headers: Mapping[str, str] | None = None,
    ):
        """Fast-path exchange: the complete frame is built by the caller.

        The frame — ``[header][correlation-id placeholder][path+headers]
        [body]`` — is assembled in one ``bytearray`` on the caller thread
        (header patched in place once the length is known); the event
        loop only stamps the correlation id and hands the buffer to the
        transport.  The response body deserializes from a ``memoryview``,
        skipping the legacy status-strip copy.
        """
        if not self._fastpath:
            return super().round_trip(authority, path, message, headers)
        request = bytearray(HEADER_SIZE + CORRELATION_SIZE)
        encode_request_meta(request, path, dict(headers or {}))
        body_start = len(request)
        self.formatter.dumps_into(request, message)
        self.last_request_bytes = len(request) - body_start
        pack_header_into(
            request, 0, self._request_flags, len(request) - HEADER_SIZE
        )
        payload = self._exchange(authority, request, prebuilt=True)
        return self.formatter.loads(decode_response_view(payload))

    def _exchange(
        self, authority: str, request, prebuilt: bool
    ) -> bytes:
        """Submit one framed request and block for the raw response payload."""
        loop_thread = self._ensure_loop()
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._outbox.append((authority, request, prebuilt, future))
        if not self._outbox_scheduled:
            # Benign race: a stale False schedules a second (empty) drain;
            # a stale True means a drain that has not yet run will pick
            # this entry up.
            self._outbox_scheduled = True
            try:
                loop_thread.loop.call_soon_threadsafe(self._drain_outbox)
            except RuntimeError:
                raise ChannelClosedError("channel is closed") from None
        try:
            payload = future.result(self.request_timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            try:
                loop_thread.loop.call_soon_threadsafe(
                    self._abandon, authority, future
                )
            except RuntimeError:
                pass
            raise ChannelError(
                f"request to {authority} timed out after "
                f"{self.request_timeout}s"
            ) from None
        except concurrent.futures.CancelledError:
            raise ChannelClosedError(
                "channel closed while the request was in flight"
            ) from None
        return payload

    # The callbacks below run on the event loop.

    def _drain_outbox(self) -> None:
        self._outbox_scheduled = False
        while True:
            try:
                authority, request, prebuilt, future = self._outbox.popleft()
            except IndexError:
                return
            self._submit(authority, request, prebuilt, future)

    def _submit(
        self, authority: str, request: bytes, prebuilt: bool,
        future: concurrent.futures.Future,
    ) -> None:
        if self._closed:
            _fail(future, ChannelClosedError("channel is closed"))
            return
        connection = self._connections.get(authority)
        if connection is not None and connection.broken is None:
            connection.submit(request, future, prebuilt)
        else:
            asyncio.ensure_future(
                self._connect_and_submit(authority, request, prebuilt, future)
            )

    async def _connect_and_submit(
        self, authority: str, request: bytes, prebuilt: bool,
        future: concurrent.futures.Future,
    ) -> None:
        try:
            connection = await self._connection_for(authority)
        except (ChannelError, OSError) as exc:
            _fail(future, exc if isinstance(exc, ChannelError)
                  else ChannelError(str(exc)))
            return
        connection.submit(request, future, prebuilt)

    async def _connection_for(self, authority: str) -> _AioConnection:
        lock = self._conn_locks.setdefault(authority, asyncio.Lock())
        async with lock:
            connection = self._connections.get(authority)
            if connection is not None:
                if connection.broken is None:
                    return connection
                del self._connections[authority]
                connection.abort()
                self._client_metrics.reconnects.inc()
            try:
                connection = await asyncio.wait_for(
                    _AioConnection.open(
                        authority,
                        self.window,
                        self._client_metrics,
                        self.credits,
                    ),
                    timeout=self.connect_timeout,
                )
            except asyncio.TimeoutError:
                raise ChannelError(
                    f"connect to {authority} timed out after "
                    f"{self.connect_timeout}s"
                ) from None
            self._connections[authority] = connection
            return connection

    def _abandon(
        self, authority: str, future: concurrent.futures.Future
    ) -> None:
        connection = self._connections.get(authority)
        if connection is not None:
            connection.abandon(future)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            loop_thread = self._loop_thread
        if loop_thread is None:
            return

        async def shut_down() -> None:
            for connection in list(self._connections.values()):
                connection.abort()
            self._connections.clear()

        try:
            loop_thread.run(shut_down(), timeout=5.0)
        except (ChannelClosedError, ChannelError):
            pass
        loop_thread.close()
