"""Shared-memory channel: framed request/response that skips the wire.

``ShmChannel`` speaks the exact frame format of
:mod:`repro.channels.framing` and the payload codec of
:mod:`repro.channels.request` — but the frames travel through SPSC ring
buffers in a ``multiprocessing.shared_memory`` segment instead of a
socket.  Everything layered on frames therefore composes unchanged:
tracing headers, chaos and breaker wrappers, the fast and legacy codec
paths, ``channels.create("breaker+shm")``.

Connection anatomy (one per client/server pair, pooled client-side):

* a Unix domain socket used **only** for the handshake and liveness —
  the client creates the segment plus two doorbells and sends the
  segment name and doorbell fds over the socket (``SCM_RIGHTS``); after
  the server's one-byte ack, no payload byte ever touches it again, but
  both sides keep it in their poll set so a dead peer is an immediate
  EOF instead of a hung ring;
* one shm segment holding a c2s and an s2c ring (:mod:`repro.shm.ring`),
  unlinked by the client as soon as the server has attached, so a crash
  on either side leaks nothing named;
* two doorbells (:mod:`repro.shm.doorbell`) for the park half of the
  hybrid wait.

Waiting is busy/park hybrid: spin a bounded number of ready checks,
then publish a park flag in the segment, re-check the ring, and poll
the doorbell with a bounded timeout.  The publish-then-recheck order
makes a lost doorbell cost at most one poll timeout; in a tight
cross-process request/response loop neither side ever parks and a
round trip completes without a single syscall.  Spinning is reserved
for peers in *other* processes — they really do run in parallel — while
a same-process peer shares our GIL and is served by parking
immediately, which releases it like a socket read would.

Reads are zero-copy where physics allows: when the next frame happens
to be contiguous in the ring (the overwhelmingly common case — frames
wrap only every ``ring_size`` bytes), the payload is handed to the
decoder as a ``memoryview`` straight into shared memory and consumed
only after decoding.  ``bytes`` and columnar batch payloads are thus
materialised exactly once, from ring to result object.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import re
import select
import socket
import struct
import tempfile
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Mapping

from repro.channels.base import Channel, RequestHandler, ServerBinding
from repro.channels.buffers import BufferPool
from repro.channels.framing import (
    FLAG_CREDIT,
    HEADER_SIZE,
    MAX_FRAME,
    pack_credit,
    pack_header_into,
    parse_header_from,
    split_credit,
)
from repro.channels.request import (
    STATUS_ERROR,
    STATUS_OK,
    decode_request_view,
    decode_response_view,
    encode_request_meta,
)
from repro.errors import (
    AddressError,
    ChannelClosedError,
    ChannelError,
    ShmSetupError,
    WireFormatError,
)
from repro.flow import CreditGate
from repro.serialization import BinaryFormatter, FastBinaryFormatter
from repro.shm.doorbell import Doorbell
from repro.shm.ring import (
    DEFAULT_RING_SIZE,
    VERSION,
    client_rings,
    init_segment,
    is_closed,
    mark_closed,
    read_segment_header,
    segment_size,
    server_rings,
)

#: Ready-check spin iterations before a cross-process waiter parks on
#: its doorbell (same-process peers always park immediately).
DEFAULT_SPIN = 1000

#: Bounded park so a lost doorbell (benign flag race) self-heals (ms).
PARK_TIMEOUT_MS = 100

#: Idle connections kept per remote authority (they pin a segment each,
#: so the default is tighter than the TCP pool's).
DEFAULT_MAX_IDLE_PER_AUTHORITY = 4

# magic, version, name length, ring size, creator's resource-tracker id
_HELLO = struct.Struct("<4sHHIQ")
_HELLO_MAGIC = b"PSHL"

_SAFE_AUTHORITY = re.compile(r"[^A-Za-z0-9_.:-]")
_auto_authorities = itertools.count(1)


def shm_socket_dir() -> str:
    """Directory holding the handshake sockets (``PARC_SHM_DIR`` overrides).

    The socket file doubles as the same-node advertisement: a peer whose
    authority has a socket here is co-located and reachable over shm.
    """
    base = os.environ.get("PARC_SHM_DIR") or os.path.join(
        tempfile.gettempdir(), f"parc-shm-{os.getuid()}"
    )
    os.makedirs(base, mode=0o700, exist_ok=True)
    return base


def socket_path_for(authority: str) -> str:
    """Deterministic handshake-socket path for *authority*.

    Both sides derive the path independently — the listener from the
    authority it binds, the connector from the authority in the object
    URI — which is the entire same-node negotiation protocol.  Long or
    exotic authorities are digested to stay inside ``sun_path`` limits.
    """
    token = _SAFE_AUTHORITY.sub("_", authority)
    if not token or len(token) > 64:
        token = hashlib.sha1(authority.encode("utf-8")).hexdigest()[:24]
    return os.path.join(shm_socket_dir(), f"{token}.sock")


def shm_available(authority: str) -> bool:
    """True when a co-located shm listener advertises *authority*."""
    return os.path.exists(socket_path_for(authority))


def _same_process_peer(sock: socket.socket) -> bool:
    """True when the handshake socket's peer is this very process."""
    try:
        creds = sock.getsockopt(
            socket.SOL_SOCKET, socket.SO_PEERCRED, struct.calcsize("3i")
        )
        pid, _uid, _gid = struct.unpack("3i", creds)
    except (OSError, AttributeError):  # pragma: no cover - non-Linux
        return False
    return pid == os.getpid()


def _tracker_id() -> int:
    """Identity of this process's resource-tracker daemon (0 if unknown).

    The tracker is identified by the inode of its command pipe rather
    than a pid: multiprocessing-spawned children inherit the parent's
    tracker as a bare duplicated fd (their local ``_pid`` stays unset),
    and two processes share a daemon exactly when their fds point at
    the same live pipe.
    """
    tracker = getattr(resource_tracker, "_resource_tracker", None)
    fd = getattr(tracker, "_fd", None)
    if fd is None:
        return 0
    try:
        return os.fstat(fd).st_ino
    except OSError:  # pragma: no cover - tracker pipe gone
        return 0


def _untrack(segment: shared_memory.SharedMemory, creator_tracker: int) -> None:
    """Undo the resource tracker's attach-side registration.

    This Python registers a segment with the resource tracker on
    *attach* as well as create; without unregistering, the attaching
    process would try to unlink the (already unlinked) segment at
    interpreter exit and spam KeyError warnings from the tracker.

    The twist: multiprocessing-spawned workers *share* the parent's
    tracker daemon, whose cache is a plain name set — the attach-side
    register deduplicates into the creator's entry, and the creator's
    post-handshake ``unlink`` is the single unregister that entry needs.
    So only unregister when the attacher's tracker daemon is a
    different process than the creator's (*creator_tracker*, carried in
    the hello); unregistering a shared entry here would make the
    creator's unlink the double-remove instead.
    """
    if creator_tracker and creator_tracker == _tracker_id():
        return
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


class _ShmCounters:
    """Cached ``shm.*`` instruments (all ``None`` without a registry).

    Park ratio is derived at read time as
    ``shm.wait.parks / (shm.wait.parks + shm.wait.spin_hits)``.
    """

    __slots__ = (
        "rings",
        "wakeups",
        "parks",
        "spin_hits",
        "frames",
        "bytes",
        "occupancy",
        "connections",
    )

    def __init__(self, metrics=None) -> None:  # type: ignore[no-untyped-def]
        if metrics is None:
            for name in self.__slots__:
                setattr(self, name, None)
            return
        self.rings = metrics.counter(
            "shm.doorbell.rings", "doorbell wakeup syscalls issued"
        )
        self.wakeups = metrics.counter(
            "shm.doorbell.wakeups", "parked waits ended by a doorbell"
        )
        self.parks = metrics.counter(
            "shm.wait.parks", "waits that exhausted their spin budget"
        )
        self.spin_hits = metrics.counter(
            "shm.wait.spin_hits", "waits satisfied while spinning"
        )
        self.frames = metrics.counter(
            "shm.frames", "frames received off shm rings"
        )
        self.bytes = metrics.counter(
            "shm.bytes", "frame bytes moved through shm rings"
        )
        self.occupancy = metrics.histogram(
            "shm.ring.occupancy",
            buckets=(0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0),
            help_text="tx ring fill fraction sampled after each frame",
        )
        self.connections = metrics.gauge(
            "shm.connections", "live shm connections in this process"
        )


class _ShmConnection:
    """One established connection: a (tx, rx) ring pair plus doorbells.

    Strictly one in-flight exchange at a time per side — the client pool
    checks a connection out exclusively and the server serves each
    connection from a single thread — so no locking is needed on the
    rings themselves (that is what makes them SPSC).
    """

    def __init__(
        self,
        sock: socket.socket,
        segment: shared_memory.SharedMemory,
        tx,
        rx,
        bell_peer: Doorbell,
        bell_self: Doorbell,
        *,
        spin: int,
        counters: _ShmCounters,
    ) -> None:
        sock.setblocking(False)
        self._sock = sock
        self._sock_fd = sock.fileno()
        self._segment = segment
        self._tx = tx
        self._rx = rx
        self._bell_peer = bell_peer
        self._bell_self = bell_self
        # Spinning only pays off against a peer that can actually run
        # concurrently.  A same-process peer (detected via the handshake
        # socket's credentials) shares our GIL — spinning would hold it
        # while the peer waits for it — and on a single-CPU host the
        # spin just burns the timeslice the peer needs (``sched_yield``
        # does not reliably hand it over under CFS), so both cases park
        # immediately, which behaves like a socket.
        if _same_process_peer(sock) or (os.cpu_count() or 1) < 2:
            self._spin = 0
        else:
            self._spin = spin
        self._counters = counters
        self._header_scratch = bytearray(HEADER_SIZE)
        self._coalesce_scratch = bytearray(HEADER_SIZE)
        self._closed = False
        self._poller = select.poll()
        self._poller.register(bell_self.fileno(), select.POLLIN)
        self._poller.register(self._sock_fd, select.POLLIN)
        if counters.connections is not None:
            counters.connections.add(1)

    # -- liveness -----------------------------------------------------

    def alive(self) -> bool:
        return not self._closed and not is_closed(self._segment.buf)

    def _check_open(self) -> None:
        if self._closed or is_closed(self._segment.buf):
            raise ChannelClosedError("shm connection is closed")

    # -- hybrid wait --------------------------------------------------

    def _wait(self, side, ready: Callable[[], bool]) -> None:
        """Block until ``ready()``: busy-spin, then park on the doorbell.

        *side* is the ring half whose park flag we own.  The flag is
        published *before* the final readiness re-check, so the peer's
        "flag set → ring" and our "flag set → re-check → poll" can
        interleave any way at all and the worst case is one bounded
        poll timeout, never a lost wakeup.
        """
        counters = self._counters
        for _ in range(self._spin):
            if ready():
                if counters.spin_hits is not None:
                    counters.spin_hits.inc()
                return
        self._check_open()
        while True:
            # set_waiting raises ValueError (released view) or TypeError
            # (read-only view) when a concurrent close() tore the ring
            # down under us; both mean "closed", like the flag check.
            try:
                side.set_waiting(True)
                try:
                    if ready():
                        return
                    if counters.parks is not None:
                        counters.parks.inc()
                    self._park()
                finally:
                    side.set_waiting(False)
            except (ValueError, TypeError):
                raise ChannelClosedError("shm connection is closed") from None
            if ready():
                return
            self._check_open()

    def _park(self) -> None:
        for fd, _event in self._poller.poll(PARK_TIMEOUT_MS):
            if fd == self._sock_fd:
                try:
                    data = self._sock.recv(16)
                except (BlockingIOError, InterruptedError):
                    continue
                except OSError:
                    raise ChannelClosedError(
                        "shm peer closed the connection"
                    ) from None
                if not data:
                    raise ChannelClosedError("shm peer closed the connection")
                # Bytes after the handshake are protocol noise; ignore.
            else:
                self._bell_self.drain()
                if self._counters.wakeups is not None:
                    self._counters.wakeups.inc()

    def _ring_peer(self) -> None:
        self._bell_peer.ring()
        if self._counters.rings is not None:
            self._counters.rings.inc()

    # -- sending ------------------------------------------------------

    def send_frame(self, frame) -> None:
        """Send a prebuilt frame (header already at the front)."""
        self._check_open()
        try:
            self._write_all(frame)
            self._flush()
            self._note_sent(len(frame))
        except (ValueError, TypeError):
            # A concurrent close() released the segment views under us.
            raise ChannelClosedError("shm connection is closed") from None

    def send_frame_parts(self, parts, flags: int = 0) -> None:
        """Frame and send the concatenation of *parts*.

        The header and any leading run of small parts (request meta, a
        response status byte) are coalesced into one scratch buffer so a
        typical frame costs two ring writes — scratch, then the payload
        — instead of one per part.
        """
        self._check_open()
        total = sum(len(part) for part in parts)
        if total > MAX_FRAME:
            raise WireFormatError(
                f"frame payload of {total} bytes exceeds {MAX_FRAME}"
            )
        try:
            scratch = self._coalesce_scratch
            del scratch[HEADER_SIZE:]
            pack_header_into(scratch, 0, flags, total)
            tail_parts = []
            for part in parts:
                if not tail_parts and len(part) <= 512:
                    scratch += part
                else:
                    tail_parts.append(part)
            self._write_all(scratch)
            for part in tail_parts:
                if len(part):
                    self._write_all(part)
            self._flush()
            self._note_sent(HEADER_SIZE + total)
        except (ValueError, TypeError):
            raise ChannelClosedError("shm connection is closed") from None

    def _note_sent(self, count: int) -> None:
        counters = self._counters
        if counters.bytes is not None:
            counters.bytes.inc(count)
        if counters.frames is not None:
            counters.frames.inc()
        if counters.occupancy is not None:
            counters.occupancy.observe(self._tx.used() / self._tx.size)

    def _write_all(self, data) -> None:
        """Copy *data* into the tx ring, waiting for space as needed.

        Deliberately does NOT ring the peer's doorbell on the happy
        path: a frame is sent as several parts (header, meta, body), and
        waking a parked reader per part makes it find a partial frame,
        park again, and pay a context-switch round trip for every piece.
        :meth:`_flush` rings once per *frame* instead.  The one exception
        is a full ring — then the reader must run before we can, so it
        is woken before we park for space.
        """
        tx = self._tx
        view = data if isinstance(data, memoryview) else memoryview(data)
        while True:
            count = tx.write_some(view)
            if count == len(view):
                return
            if count:
                view = view[count:]
            else:
                if tx.reader_waiting():
                    self._ring_peer()
                self._wait(tx, lambda: tx.space() > 0)

    def _flush(self) -> None:
        """Wake the reader once, after a complete frame is in the ring."""
        if self._tx.reader_waiting():
            self._ring_peer()

    # -- receiving ----------------------------------------------------

    def read_frame(self, bounce: bytearray):
        """Read one frame; returns ``(flags, payload_view, pending)``.

        When the payload is contiguous in the ring, *payload_view* is a
        window straight into shared memory and *pending* is the byte
        count the caller must pass to :meth:`consume` **after** releasing
        the view (and any sub-views).  Otherwise the payload is staged
        through *bounce* (grown, never shrunk — it stabilises at the
        connection's largest wrapped frame), the ring is already
        consumed, and *pending* is 0.
        """
        try:
            self._read_exact(self._header_scratch)
            flags, length = parse_header_from(self._header_scratch, 0)
            rx = self._rx
            counters = self._counters
            if counters.frames is not None:
                counters.frames.inc()
                counters.bytes.inc(HEADER_SIZE + length)
            if rx.can_view(length):
                if rx.used() < length:
                    self._wait(rx, lambda: rx.used() >= length)
                return flags, rx.view(length), length
            if len(bounce) < length:
                bounce.extend(bytes(length - len(bounce)))
            view = memoryview(bounce)[:length]
            try:
                self._read_exact(view)
            except BaseException:
                view.release()
                raise
            return flags, view, 0
        except (ValueError, TypeError):
            raise ChannelClosedError("shm connection is closed") from None

    def _read_exact(self, out) -> None:
        rx = self._rx
        view = out if isinstance(out, memoryview) else memoryview(out)
        offset = 0
        length = len(view)
        while offset < length:
            count = rx.read_into(view[offset:])
            if count:
                offset += count
                if rx.writer_waiting():
                    self._ring_peer()
            else:
                self._wait(rx, lambda: rx.used() > 0)

    def consume(self, length: int) -> None:
        """Retire bytes served zero-copy by :meth:`read_frame`."""
        if self._closed:
            return
        try:
            self._rx.consume(length)
            if self._rx.writer_waiting():
                self._ring_peer()
        except (ValueError, TypeError):  # concurrent close() released the views
            pass

    # -- teardown -----------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            mark_closed(self._segment.buf)
        except (ValueError, TypeError):  # pragma: no cover - torn segment
            pass
        # Wake a parked peer so it observes the closed flag promptly.
        self._bell_peer.ring()
        self._tx.release()
        self._rx.release()
        self._bell_peer.close()
        self._bell_self.close()
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - teardown must finish
            pass
        try:
            self._segment.close()
        except (OSError, BufferError):  # pragma: no cover
            pass
        if self._counters.connections is not None:
            self._counters.connections.add(-1)


def _connect(
    authority: str, *, ring_size: int, spin: int, counters: _ShmCounters
) -> _ShmConnection:
    """Dial *authority*'s handshake socket and establish a ring pair.

    The connector creates everything (segment + both doorbells) so the
    listener only ever attaches; the segment is unlinked the moment the
    ack arrives, leaving nothing named behind even on a later crash.
    All failures before the ack raise :class:`ShmSetupError` — the
    router treats those as "no usable shm here" and falls back to the
    wire, which is safe precisely because no request was sent yet.
    """
    path = socket_path_for(authority)
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    segment = None
    bell_self = bell_peer = None
    try:
        sock.settimeout(10.0)
        sock.connect(path)
        segment = shared_memory.SharedMemory(
            create=True, size=segment_size(ring_size)
        )
        init_segment(segment.buf, ring_size)
        bell_self = Doorbell.create()  # we park here; the server rings it
        bell_peer = Doorbell.create()  # the server parks; we ring it
        name_bytes = segment.name.encode("utf-8")
        hello = (
            _HELLO.pack(
                _HELLO_MAGIC,
                VERSION,
                len(name_bytes),
                ring_size,
                _tracker_id(),
            )
            + name_bytes
        )
        socket.send_fds(
            sock, [hello], [bell_self.fds()[0], bell_peer.fds()[1]]
        )
        if sock.recv(1) != b"\x01":
            raise OSError("handshake rejected")
        segment.unlink()
    except (OSError, ValueError) as exc:
        if bell_self is not None:
            bell_self.close()
        if bell_peer is not None:
            bell_peer.close()
        if segment is not None:
            try:
                segment.unlink()
            except OSError:
                pass
            segment.close()
        sock.close()
        raise ShmSetupError(
            f"cannot establish shm connection to {authority}: {exc}"
        ) from exc
    tx, rx = client_rings(segment.buf, ring_size)
    return _ShmConnection(
        sock,
        segment,
        tx,
        rx,
        bell_peer=bell_peer,
        bell_self=bell_self,
        spin=spin,
        counters=counters,
    )


class _ShmBinding(ServerBinding):
    """Handshake-socket accept loop + one serve thread per connection."""

    def __init__(
        self,
        authority: str,
        handler: RequestHandler,
        *,
        spin: int,
        counters: _ShmCounters,
    ) -> None:
        if authority in ("", "0", "auto"):
            authority = f"shm-{os.getpid()}-{next(_auto_authorities)}"
        self._authority = authority
        self._handler = handler
        # Attached by RemotingHost.listen; plain handlers have none and
        # their responses carry no credit grants.
        self._grantor = getattr(handler, "credit_grantor", None)
        self._spin = spin
        self._counters = counters
        self._closed = threading.Event()
        self._lock = threading.Lock()
        self._connections: set[_ShmConnection] = set()
        self._path = socket_path_for(authority)
        self._server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            self._bind_socket()
            self._server.listen(16)
        except OSError:
            self._server.close()
            raise
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"parc-shm-accept-{authority}",
            daemon=True,
        )
        self._accept_thread.start()

    def _bind_socket(self) -> None:
        try:
            self._server.bind(self._path)
        except OSError as exc:
            # A leftover socket from a dead process is reclaimable; a
            # live listener is a real address conflict.
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                probe.connect(self._path)
            except (ConnectionRefusedError, FileNotFoundError):
                os.unlink(self._path)
                self._server.bind(self._path)
                return
            except OSError:
                pass
            finally:
                probe.close()
            raise AddressError(
                f"shm authority {self._authority!r} is already bound"
            ) from exc

    @property
    def authority(self) -> str:
        return self._authority

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                sock, _addr = self._server.accept()
            except OSError:
                return  # listener closed
            thread = threading.Thread(
                target=self._serve_connection,
                args=(sock,),
                name=f"parc-shm-conn-{self._authority}",
                daemon=True,
            )
            thread.start()

    def _handshake(self, sock: socket.socket) -> _ShmConnection | None:
        sock.settimeout(10.0)
        msg, fds, _flags, _addr = socket.recv_fds(sock, 256, 2)
        segment = None
        try:
            if len(msg) < _HELLO.size or len(fds) != 2:
                raise OSError("short shm hello")
            magic, version, name_len, ring_size, creator_tracker = (
                _HELLO.unpack_from(msg, 0)
            )
            if magic != _HELLO_MAGIC or version != VERSION:
                raise OSError(f"bad shm hello {magic!r} v{version}")
            name = msg[_HELLO.size : _HELLO.size + name_len].decode("utf-8")
            segment = shared_memory.SharedMemory(name=name)
            _untrack(segment, creator_tracker)
            if read_segment_header(segment.buf) != ring_size:
                raise OSError("shm segment/hello ring-size mismatch")
            sock.sendall(b"\x01")
        except (OSError, ValueError):
            for fd in set(fds):
                try:
                    os.close(fd)
                except OSError:
                    pass
            if segment is not None:
                segment.close()
            sock.close()
            return None
        tx, rx = server_rings(segment.buf, ring_size)
        return _ShmConnection(
            sock,
            segment,
            tx,
            rx,
            bell_peer=Doorbell.ring_only(fds[0]),
            bell_self=Doorbell.wait_only(fds[1]),
            spin=self._spin,
            counters=self._counters,
        )

    def _serve_connection(self, sock: socket.socket) -> None:
        conn = self._handshake(sock)
        if conn is None:
            return
        with self._lock:
            if self._closed.is_set():
                conn.close()
                return
            self._connections.add(conn)
        bounce = bytearray()
        try:
            self._serve_loop(conn, bounce)
        finally:
            with self._lock:
                self._connections.discard(conn)
            conn.close()

    def _serve_loop(self, conn: _ShmConnection, bounce: bytearray) -> None:
        """Serial request/response loop, zero-copy like TCP's fast serve.

        The handler sees the request body as a ``memoryview`` — into the
        shared ring itself in the contiguous case — and must not retain
        it past its return; the ring bytes are consumed (and the client
        thereby unblocked) only after the response has been written.
        """
        grantor = self._grantor
        while not self._closed.is_set():
            try:
                flags, view, pending = conn.read_frame(bounce)
            except (ChannelError, WireFormatError, OSError):
                return  # peer hung up or sent garbage
            body = response = None
            ok = True
            try:
                try:
                    path, headers, body = decode_request_view(view)
                    response = self._handler(path, body, headers)
                    status = STATUS_OK
                except Exception as exc:  # noqa: BLE001 - wire boundary
                    response = f"{type(exc).__name__}: {exc}".encode("utf-8")
                    status = STATUS_ERROR
                # Grants only go to peers that set FLAG_CREDIT on the
                # request — an old client must never see extra bytes.
                if grantor is not None and flags & FLAG_CREDIT:
                    parts = [
                        pack_credit(grantor.grant()),
                        bytes((status,)),
                        response,
                    ]
                    response_flags = FLAG_CREDIT
                else:
                    parts = [bytes((status,)), response]
                    response_flags = 0
                try:
                    conn.send_frame_parts(parts, response_flags)
                except (ChannelError, OSError):
                    ok = False
            finally:
                del body, response
                view.release()
                if pending:
                    conn.consume(pending)
            if not ok:
                return

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._server.close()
        except OSError:
            pass
        try:
            os.unlink(self._path)
        except OSError:
            pass
        with self._lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            conn.close()


class _ShmPool:
    """Idle-connection pool, one list per authority (TCP-pool discipline)."""

    def __init__(
        self,
        connect: Callable[[str], _ShmConnection],
        max_idle_per_authority: int = DEFAULT_MAX_IDLE_PER_AUTHORITY,
    ) -> None:
        self._connect = connect
        self._lock = threading.Lock()
        self._idle: dict[str, list[_ShmConnection]] = {}
        self._checked_out: set[_ShmConnection] = set()
        self._closed = False
        self._max_idle_per_authority = max_idle_per_authority

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def checkout(self, authority: str) -> _ShmConnection:
        dead: list[_ShmConnection] = []
        reused: _ShmConnection | None = None
        with self._lock:
            if self._closed:
                raise ChannelClosedError("channel is closed")
            idle = self._idle.get(authority)
            while idle:
                conn = idle.pop()
                if conn.alive():
                    reused = conn
                    break
                dead.append(conn)
            if reused is not None:
                self._checked_out.add(reused)
        for conn in dead:
            conn.close()
        if reused is not None:
            return reused
        conn = self._connect(authority)
        with self._lock:
            if self._closed:
                conn.close()
                raise ChannelClosedError("channel is closed")
            self._checked_out.add(conn)
        return conn

    def checkin(self, authority: str, conn: _ShmConnection) -> None:
        with self._lock:
            self._checked_out.discard(conn)
            if not self._closed and conn.alive():
                idle = self._idle.setdefault(authority, [])
                if len(idle) < self._max_idle_per_authority:
                    idle.append(conn)
                    return
        conn.close()

    def forget(self, conn: _ShmConnection) -> None:
        with self._lock:
            self._checked_out.discard(conn)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            connections = [
                conn for conns in self._idle.values() for conn in conns
            ]
            connections.extend(self._checked_out)
            self._idle.clear()
            self._checked_out.clear()
        for conn in connections:
            # close() marks the shared closed flag and rings the peer's
            # doorbell, so a thread parked mid-call fails promptly.
            conn.close()


class ShmChannel(Channel):
    """Framed request/response over shared-memory rings (scheme ``shm``).

    Same frame format and payload codec as :class:`TcpChannel`, same
    ``fastpath`` contract (pooled encode buffers, ``memoryview`` decode)
    — plus ring-resident response payloads: the decode views alias the
    shared segment itself, so a 64 KiB ``bytes`` reply is copied exactly
    once, straight from the ring into the result object.

    ``credits=True`` (the default) opts into credit-based backpressure
    (:mod:`repro.flow`), identical to the socket channels: requests carry
    :data:`~repro.channels.framing.FLAG_CREDIT` and server grants resize
    a per-authority in-flight window shared by every pooled connection.
    """

    scheme = "shm"

    def __init__(
        self,
        formatter=None,  # type: ignore[no-untyped-def]
        *,
        ring_size: int = DEFAULT_RING_SIZE,
        spin: int = DEFAULT_SPIN,
        fastpath: bool = True,
        max_idle_per_authority: int = DEFAULT_MAX_IDLE_PER_AUTHORITY,
        credits: bool = True,
        metrics=None,  # type: ignore[no-untyped-def]
    ) -> None:
        if formatter is None:
            formatter = FastBinaryFormatter() if fastpath else BinaryFormatter()
        super().__init__(formatter)
        if ring_size < 4096:
            raise ChannelError(f"shm ring_size {ring_size} is below 4096")
        self._fastpath = fastpath and hasattr(self.formatter, "dumps_into")
        self._ring_size = ring_size
        self._spin = spin
        self._counters = _ShmCounters(metrics)
        self._pool = _ShmPool(self._open_connection, max_idle_per_authority)
        self._buffers = BufferPool()
        # Credit-based backpressure (repro.flow): one gate per authority
        # bounds in-flight calls across all pooled connections to the
        # server's most recent window grant.
        self._credits = credits
        self._metrics = metrics
        self._gates: dict[str, CreditGate] = {}
        self._gates_lock = threading.Lock()

    def _gate_for(self, authority: str) -> CreditGate | None:
        if not self._credits:
            return None
        # Unlocked read on the hot path: dict lookups are atomic and
        # gates, once created, are never replaced.
        gate = self._gates.get(authority)
        if gate is not None:
            return gate
        with self._gates_lock:
            gate = self._gates.get(authority)
            if gate is None:
                gate = self._gates[authority] = CreditGate(
                    metrics=self._metrics
                )
            return gate

    def _open_connection(self, authority: str) -> _ShmConnection:
        return _connect(
            authority,
            ring_size=self._ring_size,
            spin=self._spin,
            counters=self._counters,
        )

    def listen(self, authority: str, handler: RequestHandler) -> ServerBinding:
        return _ShmBinding(
            authority, handler, spin=self._spin, counters=self._counters
        )

    def _handle_call_error(
        self, conn: _ShmConnection, authority: str, path: str, exc: Exception
    ) -> None:
        self._pool.forget(conn)
        conn.close()
        if self._pool.closed and not isinstance(exc, ChannelClosedError):
            raise ChannelClosedError(
                f"channel closed while calling {authority}/{path}"
            ) from exc

    def call(
        self,
        authority: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> bytes:
        # The body never touches an intermediate request buffer: the meta
        # section (path + headers, a few dozen bytes) is built separately
        # and the caller's own bytes go straight into the ring — the
        # zero-copy passive-object path for raw payloads.
        meta = bytearray()
        encode_request_meta(meta, path, dict(headers or {}))
        gate = self._gate_for(authority)
        if gate is not None:
            gate.acquire()
        bounce = self._buffers.acquire()
        view = payload_view = body_view = None
        pending = 0
        conn = None
        conn_ok = False
        try:
            conn = self._pool.checkout(authority)
            try:
                conn.send_frame_parts(
                    [meta, body], FLAG_CREDIT if gate is not None else 0
                )
                flags, view, pending = conn.read_frame(bounce)
            except (OSError, ChannelError) as exc:
                self._handle_call_error(conn, authority, path, exc)
                raise
            conn_ok = True
            payload_view = view
            if gate is not None:
                credit, payload_view = split_credit(flags, view)
                if credit is not None:
                    gate.observe_grant(credit)
            body_view = decode_response_view(payload_view)
            payload = bytes(body_view)
        finally:
            if body_view is not None:
                body_view.release()
            if payload_view is not None and payload_view is not view:
                payload_view.release()
            if view is not None:
                view.release()
            if conn_ok:
                if pending:
                    conn.consume(pending)
                self._pool.checkin(authority, conn)
            self._buffers.release(bounce)
            if gate is not None:
                gate.release()
        return payload

    def round_trip(
        self,
        authority: str,
        path: str,
        message: object,
        headers: Mapping[str, str] | None = None,
    ):
        """Zero-copy exchange: pooled encode buffer in, ring view out.

        Mirrors the TCP fast path on the way out — one reusable
        ``bytearray`` holds ``[header][meta][body]`` with the header
        patched in place — and beats it on the way back: the response is
        usually decoded from a ``memoryview`` directly into the shared
        ring, so there is no receive-buffer copy at all.
        """
        if not self._fastpath:
            return super().round_trip(authority, path, message, headers)
        gate = self._gate_for(authority)
        if gate is not None:
            gate.acquire()
        send_buf = self._buffers.acquire()
        bounce = self._buffers.acquire()
        view = payload = body = None
        pending = 0
        conn = None
        conn_ok = False
        try:
            send_buf += b"\x00" * HEADER_SIZE
            encode_request_meta(send_buf, path, dict(headers or {}))
            body_start = len(send_buf)
            self.formatter.dumps_into(send_buf, message)
            self.last_request_bytes = len(send_buf) - body_start
            pack_header_into(
                send_buf,
                0,
                FLAG_CREDIT if gate is not None else 0,
                len(send_buf) - HEADER_SIZE,
            )
            conn = self._pool.checkout(authority)
            try:
                conn.send_frame(send_buf)
                flags, view, pending = conn.read_frame(bounce)
            except (OSError, ChannelError) as exc:
                self._handle_call_error(conn, authority, path, exc)
                raise
            conn_ok = True
            payload = view
            if gate is not None:
                credit, payload = split_credit(flags, view)
                if credit is not None:
                    gate.observe_grant(credit)
            body = decode_response_view(payload)
            return self.formatter.loads(body)
        finally:
            if body is not None:
                body.release()
            if payload is not None and payload is not view:
                payload.release()
            if view is not None:
                view.release()
            if conn_ok:
                if pending:
                    conn.consume(pending)
                self._pool.checkin(authority, conn)
            self._buffers.release(bounce)
            self._buffers.release(send_buf)
            if gate is not None:
                gate.release()

    def close(self) -> None:
        self._pool.close()
