"""Same-node shared-memory backplane.

The ``shm`` channel scheme moves the existing frame format through SPSC
ring buffers in ``multiprocessing.shared_memory`` instead of sockets —
same payload codec, same wrapper composition
(``channels.create("breaker+shm")``), no wire.  ``SameNodeChannel``
makes adoption automatic: wrapped around tcp/aio it detects co-located
peers by their handshake socket and routes their calls through shm
while remote peers stay on the wire.  The cluster enables it with
``ParcConfig(same_node_transport="shm")``.

Layers:

* :mod:`repro.shm.ring` — segment layout and the SPSC ring halves;
* :mod:`repro.shm.doorbell` — eventfd/pipe wakeups for the park side of
  the busy/park hybrid wait;
* :mod:`repro.shm.channel` — the :class:`ShmChannel` transport;
* :mod:`repro.shm.router` — :class:`SameNodeChannel` auto-negotiation.
"""

from repro.shm.channel import (
    DEFAULT_SPIN,
    ShmChannel,
    shm_available,
    shm_socket_dir,
    socket_path_for,
)
from repro.shm.doorbell import Doorbell
from repro.shm.ring import (
    DEFAULT_RING_SIZE,
    RingReader,
    RingWriter,
    client_rings,
    init_segment,
    read_segment_header,
    segment_size,
    server_rings,
)
from repro.shm.router import SameNodeChannel

__all__ = [
    "DEFAULT_RING_SIZE",
    "DEFAULT_SPIN",
    "Doorbell",
    "RingReader",
    "RingWriter",
    "SameNodeChannel",
    "ShmChannel",
    "client_rings",
    "init_segment",
    "read_segment_header",
    "segment_size",
    "server_rings",
    "shm_available",
    "shm_socket_dir",
    "socket_path_for",
]
