"""Doorbells: the park/wake half of the shm channel's hybrid wait.

A doorbell is a kernel-wakeable object with two ends: the *ring* end
(held by the peer, written to wake us) and the *wait* end (what we poll
while parked).  On Linux both ends are one ``eventfd`` — a single fd
that accumulates rings and drains with one read; elsewhere a pipe pair
stands in.  Both ends are plain file descriptors, so the handshake can
pass them to the peer process over a Unix socket with ``SCM_RIGHTS``
(:func:`socket.send_fds`) and the rings themselves never touch a
syscall unless someone is actually parked.

The wait protocol that makes a missed ring harmless lives in
:mod:`repro.shm.channel`: waiters set their park flag in the shared
segment *before* re-checking the ring and poll with a bounded timeout,
so the worst case for any flag/ring race is one timeout's extra
latency, never a hang.
"""

from __future__ import annotations

import os

_COUNT_ONE = (1).to_bytes(8, "little")  # eventfd increments by this much


class Doorbell:
    """One wakeup line; may hold only the end(s) this process uses."""

    __slots__ = ("_ring_fd", "_wait_fd", "_closed")

    def __init__(self, ring_fd: int | None, wait_fd: int | None) -> None:
        self._ring_fd = ring_fd
        self._wait_fd = wait_fd
        self._closed = False

    @classmethod
    def create(cls) -> "Doorbell":
        """New doorbell with both ends: eventfd preferred, pipe fallback."""
        if hasattr(os, "eventfd"):
            fd = os.eventfd(0, os.EFD_NONBLOCK | os.EFD_CLOEXEC)
            return cls(fd, fd)
        read_fd, write_fd = os.pipe()
        os.set_blocking(read_fd, False)
        os.set_blocking(write_fd, False)
        return cls(write_fd, read_fd)

    @classmethod
    def ring_only(cls, fd: int) -> "Doorbell":
        """Wrap a received fd used solely to ring the peer."""
        return cls(fd, None)

    @classmethod
    def wait_only(cls, fd: int) -> "Doorbell":
        """Wrap a received fd used solely to park on."""
        os.set_blocking(fd, False)
        return cls(None, fd)

    def fds(self) -> tuple[int, int]:
        """``(ring_fd, wait_fd)`` for SCM_RIGHTS transfer (may be equal)."""
        assert self._ring_fd is not None and self._wait_fd is not None
        return self._ring_fd, self._wait_fd

    def fileno(self) -> int:
        assert self._wait_fd is not None
        return self._wait_fd

    def ring(self) -> None:
        """Wake the waiter.  Never blocks; a full pipe already woke them."""
        if self._closed or self._ring_fd is None:
            return
        try:
            os.write(self._ring_fd, _COUNT_ONE)
        except (BlockingIOError, OSError):
            pass

    def drain(self) -> None:
        """Clear pending rings after waking so the next park blocks."""
        if self._closed or self._wait_fd is None:
            return
        try:
            while os.read(self._wait_fd, 8):
                pass
        except (BlockingIOError, OSError):
            pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for fd in {self._ring_fd, self._wait_fd} - {None}:
            try:
                os.close(fd)
            except OSError:
                pass
