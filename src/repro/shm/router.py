"""Same-node router: shm for co-located peers, the wire for everyone else.

``SameNodeChannel`` wraps a socket channel (tcp/aio) and steers each
call by authority.  Negotiation is deliberately trivial — no extra
round trip, no capability headers: a peer that can accept shm has a
handshake socket at :func:`repro.shm.channel.socket_path_for` for its
authority, and only a same-node peer can have one (Unix sockets do not
cross hosts).  One ``stat`` on first contact decides the route; remote
peers keep riding the wrapped channel untouched.

The wrapper presents the *inner* channel's scheme, so it slots into an
existing stack invisibly: the cluster builds ``chaos+samenode+tcp`` and
chaos faults, breaker state, tracing headers and metering all apply to
shm-routed calls exactly as to wire calls.

Fallback is safe by construction: establishment failures raise
:class:`ShmSetupError` strictly before any request bytes move, so those
calls are retried on the wire with no double-execution risk (and the
authority is demoted so the probe is not repeated).  Failures after a
route has proven itself propagate unchanged, like any channel error.
"""

from __future__ import annotations

import threading
from typing import Mapping

from repro.channels.base import Channel, RequestHandler, ServerBinding
from repro.errors import ShmSetupError
from repro.shm.channel import ShmChannel, shm_available


class SameNodeChannel(Channel):
    """Route calls over shm when the authority is provably co-located."""

    def __init__(
        self,
        inner: Channel,
        *,
        shm_channel: ShmChannel | None = None,
        metrics=None,  # type: ignore[no-untyped-def]
    ) -> None:
        super().__init__(inner.formatter)
        self.inner = inner
        self.scheme = inner.scheme
        self.shm = (
            shm_channel
            if shm_channel is not None
            else ShmChannel(formatter=inner.formatter, metrics=metrics)
        )
        self._lock = threading.Lock()
        self._shm_routed: set[str] = set()  # socket seen, shm selected
        self._proven: set[str] = set()  # at least one shm call completed
        self._demoted: set[str] = set()  # shm setup failed; wire forever
        if metrics is None:
            self._shm_calls = self._wire_calls = self._fallbacks = None
        else:
            self._shm_calls = metrics.counter(
                "shm.router.shm_calls", "calls routed over shared memory"
            )
            self._wire_calls = metrics.counter(
                "shm.router.wire_calls", "calls routed over the wire"
            )
            self._fallbacks = metrics.counter(
                "shm.router.fallbacks",
                "shm setup failures retried on the wire",
            )

    def listen(self, authority: str, handler: RequestHandler) -> ServerBinding:
        return self.inner.listen(authority, handler)

    def _route_shm(self, authority: str) -> bool:
        with self._lock:
            if authority in self._demoted:
                return False
            if authority in self._shm_routed:
                return True
        # Unrouted authorities re-probe every call on purpose: a worker's
        # shm listener may come up after its tcp endpoint is already being
        # dialled, and a one-time negative cache would strand it on the
        # wire forever.  The stat is noise next to a socket round trip.
        if shm_available(authority):
            with self._lock:
                self._shm_routed.add(authority)
            return True
        return False

    def _demote(self, authority: str) -> None:
        with self._lock:
            self._demoted.add(authority)
            self._shm_routed.discard(authority)
        if self._fallbacks is not None:
            self._fallbacks.inc()

    def _mark_proven(self, authority: str) -> None:
        if authority not in self._proven:
            with self._lock:
                self._proven.add(authority)

    def call(
        self,
        authority: str,
        path: str,
        body: bytes,
        headers: Mapping[str, str] | None = None,
    ) -> bytes:
        if self._route_shm(authority):
            try:
                response = self.shm.call(authority, path, body, headers=headers)
            except ShmSetupError:
                self._demote(authority)  # nothing was sent; wire retry is safe
            else:
                self._mark_proven(authority)
                if self._shm_calls is not None:
                    self._shm_calls.inc()
                return response
        if self._wire_calls is not None:
            self._wire_calls.inc()
        return self.inner.call(authority, path, body, headers=headers)

    def round_trip(
        self,
        authority: str,
        path: str,
        message: object,
        headers: Mapping[str, str] | None = None,
    ):
        if self._route_shm(authority):
            try:
                result = self.shm.round_trip(authority, path, message, headers)
            except ShmSetupError:
                self._demote(authority)
            else:
                self._mark_proven(authority)
                if self._shm_calls is not None:
                    self._shm_calls.inc()
                self.last_request_bytes = self.shm.last_request_bytes
                return result
        if self._wire_calls is not None:
            self._wire_calls.inc()
        result = self.inner.round_trip(authority, path, message, headers)
        self.last_request_bytes = self.inner.last_request_bytes
        return result

    def close(self) -> None:
        self.shm.close()
        self.inner.close()
