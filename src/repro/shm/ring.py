"""SPSC byte-stream rings inside a ``multiprocessing.shared_memory`` segment.

One shm segment backs one connection and holds two independent
single-producer/single-consumer rings — client→server and server→client —
so neither direction ever contends with the other.  Indices are monotonic
unsigned 64-bit byte counters (they never wrap in practice: 2^64 bytes at
10 GB/s is half a century of traffic); the physical position is simply
``index % ring_size``.  The writer owns ``tail``, the reader owns
``head``, and each index plus each park flag sits on its own 64-byte
span so the two sides never write the same cache line.

Segment layout::

    0    magic    4 bytes  "PSHM"
    4    version  2 bytes  little-endian
    6    (reserved)
    8    ring_size u64     bytes per direction
    16   closed   u32      either side sets 1 on close
    64   c2s head u64      (server advances)
    128  c2s tail u64      (client advances)
    192  c2s reader_waiting u32 / 196 c2s writer_waiting u32
    256  s2c head u64      (client advances)
    320  s2c tail u64      (server advances)
    384  s2c reader_waiting u32 / 388 s2c writer_waiting u32
    512  c2s data ring     ring_size bytes
    512 + ring_size  s2c data ring

Correctness note: index loads/stores are plain ``struct`` pack/unpack on
the shared mapping.  That is safe for this SPSC discipline on CPython —
each 8-byte store is a single aligned write, exactly one process writes
each field, and the GIL plus the kernel's cross-core coherence give the
reader an eventually-current value; a momentarily stale index only makes
the peer under-estimate available bytes/space, never corrupt them.  The
park flags are advisory (a missed doorbell is recovered by the waiter's
bounded poll timeout), so they need no stronger ordering either.
"""

from __future__ import annotations

import struct

MAGIC = b"PSHM"
VERSION = 1

_PREAMBLE = struct.Struct("<4sHxxQ")  # magic, version, pad, ring_size
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")

CLOSED_OFFSET = 16

#: Control-block offsets for the two directions (see module docstring).
C2S_CONTROL = 64
S2C_CONTROL = 256

_HEAD = 0          # relative to a control block
_TAIL = 64
_READER_WAITING = 128
_WRITER_WAITING = 132

DATA_OFFSET = 512

#: Bytes per direction unless the channel overrides it.
DEFAULT_RING_SIZE = 1 << 20


def segment_size(ring_size: int) -> int:
    """Total shm segment bytes for two *ring_size* data rings."""
    return DATA_OFFSET + 2 * ring_size


def init_segment(buf, ring_size: int) -> None:
    """Stamp a freshly created segment's preamble (creator side).

    ``shared_memory`` hands back zero-filled pages, so only the preamble
    needs writing — zeroed indices and flags are the correct initial
    state for both rings.
    """
    _PREAMBLE.pack_into(buf, 0, MAGIC, VERSION, ring_size)


def read_segment_header(buf) -> int:
    """Validate an attached segment's preamble; returns its ring size."""
    magic, version, ring_size = _PREAMBLE.unpack_from(buf, 0)
    if magic != MAGIC:
        raise ValueError(f"bad shm segment magic {magic!r}")
    if version != VERSION:
        raise ValueError(f"unsupported shm segment version {version}")
    return ring_size


def is_closed(buf) -> bool:
    return _U32.unpack_from(buf, CLOSED_OFFSET)[0] != 0


def mark_closed(buf) -> None:
    _U32.pack_into(buf, CLOSED_OFFSET, 1)


class RingWriter:
    """Producer half of one SPSC ring (owns ``tail``)."""

    __slots__ = ("_buf", "_control", "_data", "size")

    def __init__(self, buf: memoryview, control: int, data: int, size: int) -> None:
        self._buf = buf
        self._control = control
        self._data = buf[data : data + size]
        self.size = size

    def space(self) -> int:
        head = _U64.unpack_from(self._buf, self._control + _HEAD)[0]
        tail = _U64.unpack_from(self._buf, self._control + _TAIL)[0]
        return self.size - (tail - head)

    def used(self) -> int:
        return self.size - self.space()

    def write_some(self, src) -> int:
        """Copy as much of *src* as fits; returns bytes written (may be 0)."""
        head = _U64.unpack_from(self._buf, self._control + _HEAD)[0]
        tail = _U64.unpack_from(self._buf, self._control + _TAIL)[0]
        count = min(self.size - (tail - head), len(src))
        if count == 0:
            return 0
        position = tail % self.size
        first = min(count, self.size - position)
        self._data[position : position + first] = src[:first]
        if count > first:
            self._data[: count - first] = src[first:count]
        _U64.pack_into(self._buf, self._control + _TAIL, tail + count)
        return count

    def reader_waiting(self) -> bool:
        return _U32.unpack_from(self._buf, self._control + _READER_WAITING)[0] != 0

    def set_waiting(self, waiting: bool) -> None:
        _U32.pack_into(
            self._buf, self._control + _WRITER_WAITING, 1 if waiting else 0
        )

    def release(self) -> None:
        self._data.release()


class RingReader:
    """Consumer half of one SPSC ring (owns ``head``)."""

    __slots__ = ("_buf", "_control", "_data", "size")

    def __init__(self, buf: memoryview, control: int, data: int, size: int) -> None:
        self._buf = buf
        self._control = control
        self._data = buf[data : data + size]
        self.size = size

    def used(self) -> int:
        head = _U64.unpack_from(self._buf, self._control + _HEAD)[0]
        tail = _U64.unpack_from(self._buf, self._control + _TAIL)[0]
        return tail - head

    def read_into(self, dest) -> int:
        """Copy up to ``len(dest)`` available bytes out; returns the count."""
        head = _U64.unpack_from(self._buf, self._control + _HEAD)[0]
        tail = _U64.unpack_from(self._buf, self._control + _TAIL)[0]
        count = min(tail - head, len(dest))
        if count == 0:
            return 0
        position = head % self.size
        first = min(count, self.size - position)
        dest[:first] = self._data[position : position + first]
        if count > first:
            dest[first:count] = self._data[: count - first]
        _U64.pack_into(self._buf, self._control + _HEAD, head + count)
        return count

    def can_view(self, length: int) -> bool:
        """True when the next *length* bytes will be physically contiguous.

        Depends only on the current head position, not on how much data
        has arrived yet — callers decide up front whether to wait for a
        zero-copy view or stream through a bounce buffer.
        """
        head = _U64.unpack_from(self._buf, self._control + _HEAD)[0]
        return (head % self.size) + length <= self.size

    def view(self, length: int) -> memoryview:
        """Zero-copy window over the next *length* bytes (no consume).

        Caller must have checked :meth:`can_view` and waited until
        :meth:`used` covers *length*, must release the view, and must
        then call :meth:`consume` — in that order, or the writer could
        scribble over bytes the view still exposes.
        """
        position = _U64.unpack_from(self._buf, self._control + _HEAD)[0] % self.size
        return self._data[position : position + length]

    def consume(self, length: int) -> None:
        """Advance ``head`` past bytes already seen via :meth:`view`."""
        head = _U64.unpack_from(self._buf, self._control + _HEAD)[0]
        _U64.pack_into(self._buf, self._control + _HEAD, head + length)

    def writer_waiting(self) -> bool:
        return _U32.unpack_from(self._buf, self._control + _WRITER_WAITING)[0] != 0

    def set_waiting(self, waiting: bool) -> None:
        _U32.pack_into(
            self._buf, self._control + _READER_WAITING, 1 if waiting else 0
        )

    def release(self) -> None:
        self._data.release()


def client_rings(buf: memoryview, ring_size: int) -> tuple[RingWriter, RingReader]:
    """(tx, rx) pair for the connecting side: writes c2s, reads s2c."""
    tx = RingWriter(buf, C2S_CONTROL, DATA_OFFSET, ring_size)
    rx = RingReader(buf, S2C_CONTROL, DATA_OFFSET + ring_size, ring_size)
    return tx, rx


def server_rings(buf: memoryview, ring_size: int) -> tuple[RingWriter, RingReader]:
    """(tx, rx) pair for the accepting side: writes s2c, reads c2s."""
    tx = RingWriter(buf, S2C_CONTROL, DATA_OFFSET + ring_size, ring_size)
    rx = RingReader(buf, C2S_CONTROL, DATA_OFFSET, ring_size)
    return tx, rx
