"""java.nio analog: buffer-based, lower-level message passing.

§4 of the paper compares Mono remoting's latency with "the new Java nio
package ... this Java package is more low level, based on message
passing."  This package reproduces that level of abstraction:

* :class:`ByteBuffer` — the java.nio buffer with its position/limit/
  capacity discipline (``flip``/``clear``/``compact``), typed puts/gets;
* :class:`SocketChannel` / :class:`ServerSocketChannel` /
  :class:`Selector` — non-blocking socket channels multiplexed by a
  selector, mirroring the java.nio.channels API shape.

The point of keeping it this low-level is the comparison itself: the nio
user hand-rolls framing and buffer management that RMI/remoting do
automatically — less overhead on the wire, more burden in the code.
"""

from repro.nio.buffer import ByteBuffer
from repro.nio.channels import (
    OP_ACCEPT,
    OP_READ,
    OP_WRITE,
    Selector,
    ServerSocketChannel,
    SocketChannel,
)

__all__ = [
    "ByteBuffer",
    "OP_ACCEPT",
    "OP_READ",
    "OP_WRITE",
    "Selector",
    "ServerSocketChannel",
    "SocketChannel",
]
