"""ByteBuffer: java.nio's buffer with its state-machine discipline.

Invariant (enforced on every operation)::

    0 <= mark <= position <= limit <= capacity

Relative ``put_*`` operations advance ``position`` while filling; ``flip``
switches to draining mode (limit = position, position = 0); relative
``get_*`` operations advance ``position`` while draining; ``clear`` resets
for refilling; ``compact`` preserves the undrained tail.  Misuse raises
:class:`~repro.errors.BufferStateError` — the analog of java.nio's
Buffer{Overflow,Underflow}Exception.
"""

from __future__ import annotations

import struct

from repro.errors import BufferStateError

_INT = struct.Struct(">i")
_LONG = struct.Struct(">q")
_DOUBLE = struct.Struct(">d")


class ByteBuffer:
    """Fixed-capacity binary buffer with position/limit/capacity."""

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise BufferStateError(f"capacity must be >= 0, got {capacity}")
        self._data = bytearray(capacity)
        self._capacity = capacity
        self._position = 0
        self._limit = capacity
        self._mark: int | None = None

    @classmethod
    def allocate(cls, capacity: int) -> "ByteBuffer":
        """java.nio.ByteBuffer.allocate."""
        return cls(capacity)

    @classmethod
    def wrap(cls, data: bytes) -> "ByteBuffer":
        """Buffer over a copy of *data*, ready for draining."""
        buffer = cls(len(data))
        buffer._data[:] = data
        buffer._limit = len(data)
        return buffer

    # -- accessors -----------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def position(self) -> int:
        return self._position

    @position.setter
    def position(self, value: int) -> None:
        if not 0 <= value <= self._limit:
            raise BufferStateError(
                f"position {value} outside [0, limit={self._limit}]"
            )
        self._position = value
        if self._mark is not None and self._mark > value:
            self._mark = None

    @property
    def limit(self) -> int:
        return self._limit

    @limit.setter
    def limit(self, value: int) -> None:
        if not 0 <= value <= self._capacity:
            raise BufferStateError(
                f"limit {value} outside [0, capacity={self._capacity}]"
            )
        self._limit = value
        if self._position > value:
            self._position = value
        if self._mark is not None and self._mark > value:
            self._mark = None

    def remaining(self) -> int:
        return self._limit - self._position

    def has_remaining(self) -> bool:
        return self._position < self._limit

    # -- mode switches --------------------------------------------------------

    def flip(self) -> "ByteBuffer":
        """Fill mode -> drain mode."""
        self._limit = self._position
        self._position = 0
        self._mark = None
        return self

    def clear(self) -> "ByteBuffer":
        """Reset for refilling (contents untouched, state reset)."""
        self._position = 0
        self._limit = self._capacity
        self._mark = None
        return self

    def rewind(self) -> "ByteBuffer":
        """Re-drain from the start."""
        self._position = 0
        self._mark = None
        return self

    def compact(self) -> "ByteBuffer":
        """Move the undrained tail to the front; switch to fill mode."""
        tail = self._data[self._position : self._limit]
        self._data[: len(tail)] = tail
        self._position = len(tail)
        self._limit = self._capacity
        self._mark = None
        return self

    def mark(self) -> "ByteBuffer":
        self._mark = self._position
        return self

    def reset(self) -> "ByteBuffer":
        if self._mark is None:
            raise BufferStateError("reset without a mark")
        self._position = self._mark
        return self

    # -- relative puts ---------------------------------------------------

    def _claim(self, size: int) -> int:
        if self.remaining() < size:
            raise BufferStateError(
                f"buffer overflow: need {size} bytes, {self.remaining()} "
                f"remaining"
            )
        start = self._position
        self._position += size
        return start

    def put(self, data: bytes) -> "ByteBuffer":
        start = self._claim(len(data))
        self._data[start : start + len(data)] = data
        return self

    def put_int(self, value: int) -> "ByteBuffer":
        start = self._claim(4)
        _INT.pack_into(self._data, start, value)
        return self

    def put_long(self, value: int) -> "ByteBuffer":
        start = self._claim(8)
        _LONG.pack_into(self._data, start, value)
        return self

    def put_double(self, value: float) -> "ByteBuffer":
        start = self._claim(8)
        _DOUBLE.pack_into(self._data, start, value)
        return self

    # -- relative gets ---------------------------------------------------

    def _drain(self, size: int) -> int:
        if self.remaining() < size:
            raise BufferStateError(
                f"buffer underflow: need {size} bytes, {self.remaining()} "
                f"remaining"
            )
        start = self._position
        self._position += size
        return start

    def get(self, size: int) -> bytes:
        start = self._drain(size)
        return bytes(self._data[start : start + size])

    def get_int(self) -> int:
        start = self._drain(4)
        return _INT.unpack_from(self._data, start)[0]

    def get_long(self) -> int:
        start = self._drain(8)
        return _LONG.unpack_from(self._data, start)[0]

    def get_double(self) -> float:
        start = self._drain(8)
        return _DOUBLE.unpack_from(self._data, start)[0]

    # -- absolute access ---------------------------------------------------

    def get_at(self, index: int, size: int = 1) -> bytes:
        """Absolute read: bytes at [index, index+size), position untouched."""
        if index < 0 or index + size > self._limit:
            raise BufferStateError(
                f"absolute read [{index}, {index + size}) outside "
                f"limit {self._limit}"
            )
        return bytes(self._data[index : index + size])

    def put_at(self, index: int, data: bytes) -> "ByteBuffer":
        """Absolute write at *index*, position untouched."""
        if index < 0 or index + len(data) > self._limit:
            raise BufferStateError(
                f"absolute write [{index}, {index + len(data)}) outside "
                f"limit {self._limit}"
            )
        self._data[index : index + len(data)] = data
        return self

    # -- derived buffers ---------------------------------------------------

    def slice(self) -> "ByteBuffer":
        """New buffer over a copy of [position, limit) (java's slice,
        except content is copied: Python bytearrays cannot alias safely
        across independent position/limit state)."""
        view = ByteBuffer(self.remaining())
        view._data[:] = self._data[self._position : self._limit]
        return view

    def duplicate(self) -> "ByteBuffer":
        """New buffer with the same content, position and limit."""
        copy = ByteBuffer(self._capacity)
        copy._data[:] = self._data
        copy._position = self._position
        copy._limit = self._limit
        return copy

    # -- bulk views ------------------------------------------------------

    def readable_view(self) -> memoryview:
        """View of [position, limit) for socket writes."""
        return memoryview(self._data)[self._position : self._limit]

    def writable_view(self) -> memoryview:
        """View of [position, limit) for socket reads."""
        return memoryview(self._data)[self._position : self._limit]

    def advance(self, count: int) -> None:
        """Move position forward after an external bulk read/write."""
        if count < 0 or count > self.remaining():
            raise BufferStateError(
                f"cannot advance by {count}; {self.remaining()} remaining"
            )
        self._position += count

    def array(self) -> bytes:
        """Copy of the full backing array (diagnostics)."""
        return bytes(self._data)

    def __repr__(self) -> str:
        return (
            f"<ByteBuffer pos={self._position} lim={self._limit} "
            f"cap={self._capacity}>"
        )
