"""Non-blocking socket channels and the selector (java.nio.channels).

A thin, faithful mapping of the java.nio API shape onto Python's
``socket`` and ``selectors`` modules:

* ``ServerSocketChannel.open().bind(addr)`` then ``accept()``;
* ``SocketChannel.open(addr)``, ``configure_blocking(False)``,
  ``read(buffer)`` / ``write(buffer)`` against :class:`ByteBuffer`;
* ``Selector.open()``, ``channel.register(selector, ops)``,
  ``selector.select(timeout)`` yielding ready :class:`SelectionKey`s.

Framing is the *user's* job here — that is precisely the "more low level"
property §4 ascribes to nio relative to RMI/remoting, and what the
latency benchmark's nio driver hand-rolls.
"""

from __future__ import annotations

import selectors
import socket
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import NioError
from repro.nio.buffer import ByteBuffer

OP_READ = selectors.EVENT_READ
OP_WRITE = selectors.EVENT_WRITE
OP_ACCEPT = selectors.EVENT_READ  # accept readiness is read readiness


class SocketChannel:
    """Stream channel reading/writing through ByteBuffers."""

    def __init__(self, sock: socket.socket) -> None:
        self._socket = sock
        self._socket.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._blocking = True

    @classmethod
    def open(cls, address: tuple[str, int] | None = None) -> "SocketChannel":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        channel = cls(sock)
        if address is not None:
            channel.connect(address)
        return channel

    def connect(self, address: tuple[str, int]) -> None:
        try:
            self._socket.connect(address)
        except OSError as exc:
            raise NioError(f"connect to {address} failed: {exc}") from exc

    def configure_blocking(self, blocking: bool) -> "SocketChannel":
        self._socket.setblocking(blocking)
        self._blocking = blocking
        return self

    def read(self, buffer: ByteBuffer) -> int:
        """Read into [position, limit); returns bytes read, -1 at EOF.

        In non-blocking mode returns 0 when no data is available.
        """
        view = buffer.writable_view()
        if not len(view):
            return 0
        try:
            count = self._socket.recv_into(view)
        except BlockingIOError:
            return 0
        except OSError as exc:
            raise NioError(f"read failed: {exc}") from exc
        if count == 0:
            return -1
        buffer.advance(count)
        return count

    def write(self, buffer: ByteBuffer) -> int:
        """Write from [position, limit); returns bytes written."""
        view = buffer.readable_view()
        if not len(view):
            return 0
        try:
            count = self._socket.send(view)
        except BlockingIOError:
            return 0
        except OSError as exc:
            raise NioError(f"write failed: {exc}") from exc
        buffer.advance(count)
        return count

    def write_fully(self, buffer: ByteBuffer) -> int:
        """Drain the buffer completely (blocking-mode convenience)."""
        total = 0
        while buffer.has_remaining():
            count = self.write(buffer)
            if count == 0 and not self._blocking:
                raise NioError("write_fully on a non-writable channel")
            total += count
        return total

    def read_fully(self, buffer: ByteBuffer) -> int:
        """Fill the buffer completely; raises NioError on premature EOF."""
        total = 0
        while buffer.has_remaining():
            count = self.read(buffer)
            if count < 0:
                raise NioError(
                    f"EOF after {total} bytes with "
                    f"{buffer.remaining()} still needed"
                )
            total += count
        return total

    def register(self, selector: "Selector", ops: int, attachment: Any = None) -> "SelectionKey":
        return selector._register(self, self._socket, ops, attachment)

    def close(self) -> None:
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self) -> "SocketChannel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ServerSocketChannel:
    """Listening channel producing SocketChannels."""

    def __init__(self, sock: socket.socket) -> None:
        self._socket = sock

    @classmethod
    def open(cls) -> "ServerSocketChannel":
        return cls(socket.socket(socket.AF_INET, socket.SOCK_STREAM))

    def bind(self, address: tuple[str, int], backlog: int = 16) -> "ServerSocketChannel":
        self._socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._socket.bind(address)
        self._socket.listen(backlog)
        return self

    @property
    def local_address(self) -> tuple[str, int]:
        return self._socket.getsockname()[:2]

    def configure_blocking(self, blocking: bool) -> "ServerSocketChannel":
        self._socket.setblocking(blocking)
        return self

    def accept(self) -> SocketChannel | None:
        try:
            conn, _addr = self._socket.accept()
        except BlockingIOError:
            return None
        except OSError as exc:
            raise NioError(f"accept failed: {exc}") from exc
        return SocketChannel(conn)

    def register(self, selector: "Selector", ops: int, attachment: Any = None) -> "SelectionKey":
        return selector._register(self, self._socket, ops, attachment)

    def close(self) -> None:
        try:
            self._socket.close()
        except OSError:
            pass

    def __enter__(self) -> "ServerSocketChannel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class SelectionKey:
    """Association between a channel and a selector."""

    channel: Any
    ops: int
    attachment: Any
    ready_ops: int = 0

    def is_readable(self) -> bool:
        return bool(self.ready_ops & OP_READ)

    def is_writable(self) -> bool:
        return bool(self.ready_ops & OP_WRITE)


class Selector:
    """Multiplexer over registered channels (java.nio.channels.Selector)."""

    def __init__(self) -> None:
        self._impl = selectors.DefaultSelector()
        self._keys: dict[Any, SelectionKey] = {}

    @classmethod
    def open(cls) -> "Selector":
        return cls()

    def _register(
        self, channel: Any, sock: socket.socket, ops: int, attachment: Any
    ) -> SelectionKey:
        key = SelectionKey(channel=channel, ops=ops, attachment=attachment)
        self._impl.register(sock, ops, data=key)
        self._keys[channel] = key
        return key

    def unregister(self, channel: Any) -> None:
        key = self._keys.pop(channel, None)
        if key is not None:
            self._impl.unregister(channel._socket)

    def select(self, timeout: float | None = None) -> Iterator[SelectionKey]:
        """Yield keys whose channels are ready."""
        for impl_key, ready in self._impl.select(timeout):
            key: SelectionKey = impl_key.data
            key.ready_ops = ready
            yield key

    def close(self) -> None:
        self._impl.close()
        self._keys.clear()

    def __enter__(self) -> "Selector":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
