"""repro.sched — the adaptive scheduler.

Per-node load accounting, idle-node work stealing, live grain
migration, and the :class:`ClusterView` snapshot the redesigned
placement API is built on.  The pure pieces (views, config, planner)
live here with no heavy imports; the migration engine
(:class:`repro.sched.engine.NodeScheduler`) is re-exported lazily to
keep import order clean for :mod:`repro.cluster.placement`.
"""

from repro.sched.config import SchedulerConfig
from repro.sched.planner import PlannedMove, RebalancePlanner
from repro.sched.view import ClusterView, NodeView

__all__ = [
    "ClusterView",
    "NodeView",
    "SchedulerConfig",
    "PlannedMove",
    "RebalancePlanner",
    "NodeScheduler",
]


def __getattr__(name: str):  # type: ignore[no-untyped-def]
    if name == "NodeScheduler":
        from repro.sched.engine import NodeScheduler

        return NodeScheduler
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
