"""NodeScheduler: the per-node migration engine, published at ``/sched``.

Each node publishes one :class:`NodeScheduler` next to its ``/om`` and
``/factory`` objects.  The cluster's rebalance loop calls ``report()``
for load accounting and ``migrate_out()`` to execute planned moves;
``adopt()`` is the receiving half, invoked victim→target over the
ordinary remoting channel.

The migration protocol (zero lost calls):

1. ``begin_migration`` pauses the grain's mailbox: new admissions park,
   the batch executing right now finishes on the victim (executing work
   is never stolen), and every queued entry is extracted in drain order.
2. The instance's state — now stable — is serialized with the
   registry's ``state_of`` (the same ``__getstate__``-shaped dict the
   compiled codecs ship for passive classes) and sent to the target's
   ``adopt()``, which rebuilds the instance via ``restore_state``,
   wraps it in a fresh ImplementationObject and returns it by
   reference.
3. The extracted backlog is replayed to the new IO in order —
   asynchronous runs as aggregate batches, synchronous calls relayed
   inline so parked local waiters get their results.
4. ``complete_migration`` flips the old IO into a forwarding shell:
   parked and straggler callers are relayed to the new home, so even
   proxies that never hear about the move keep working.  On any
   failure, ``abort_migration`` requeues the backlog and the grain
   stays put.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any

from repro.core.impl import ImplementationObject, _Task
from repro.core.model import parallel_class_table
from repro.errors import MigrationError
from repro.remoting import MarshalByRefObject
from repro.serialization.registry import default_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.node import Node

#: Replayed asynchronous calls are re-aggregated into batches of at most
#: this many, so a huge stolen backlog neither ships as one giant frame
#: nor degrades into per-call round trips.
REPLAY_BATCH = 64

#: Grains reported to the planner per node (deepest backlogs first).
REPORT_TOP_GRAINS = 16


class NodeScheduler(MarshalByRefObject):
    """Load accounting + live grain migration for one node."""

    def __init__(self, node: "Node") -> None:
        self.node = node
        self._lock = threading.Lock()
        self._migrations_out = 0
        self._migrations_in = 0
        self._migration_failures = 0
        self._calls_moved = 0
        self._steals = 0

    # -- remote surface ----------------------------------------------------

    def report(self) -> dict:
        """Load report for the rebalance planner.

        ``queued`` counts only stealable (normal/low-lane) backlog;
        grains with queued high-priority work appear with their ``high``
        count so the planner can pin them.  Also exports the
        ``flow.mailbox.depth`` gauge so the mailbox backlog is
        scrapeable alongside the existing ``flow.*`` counters.
        """
        impls = self.node.impl_snapshot()
        grains = []
        stealable_total = 0
        depth_total = 0
        for impl in impls:
            stealable, high = impl.stealable_backlog()
            stealable_total += stealable
            depth_total += stealable + high
            path = getattr(impl, "_parc_path", None)
            if path is None:
                continue  # never marshaled: unreachable by peers, pinned
            grains.append(
                {
                    "path": path,
                    "class_name": impl.class_name,
                    "backlog": stealable,
                    "high": high,
                }
            )
        grains.sort(key=lambda g: g["backlog"], reverse=True)
        telemetry = self.node.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.metrics.gauge(
                "flow.mailbox.depth", "queued calls across hosted mailboxes"
            ).set(float(depth_total))
        with self._lock:
            counters = self._counters_locked()
        summaries = self.node.method_summaries()
        avg_service_s = 0.0
        if summaries:
            count_total = sum(s["count"] for s in summaries.values())
            if count_total > 0:
                avg_service_s = (
                    sum(s["avg_s"] * s["count"] for s in summaries.values())
                    / count_total
                )
        return {
            "base_uri": self.node.base_uri,
            "index": self.node.index,
            "alive": True,
            "load": self.node.current_load(),
            "ios": len(impls),
            "queued": stealable_total,
            "queued_total": depth_total,
            # Measured mean service time across this node's method
            # histograms (0.0 with telemetry off): lets the planner
            # weigh backlog in seconds of work rather than task counts.
            "avg_service_s": avg_service_s,
            "grains": grains[:REPORT_TOP_GRAINS],
            **counters,
        }

    def adopt(self, class_name: str, state: dict) -> ImplementationObject:
        """Receiving half of a migration: rebuild the grain here.

        The instance is reconstructed without running ``__init__`` (its
        state arrives whole from the victim, shaped exactly like the
        registry's ``__getstate__`` contract) and hosted in a fresh
        ImplementationObject with this node's flow-control knobs.  The
        IO travels back by reference, so the victim gets a proxy to
        replay the backlog into.
        """
        info = parallel_class_table.by_name(class_name)
        instance = info.cls.__new__(info.cls)
        default_registry.restore_state(instance, dict(state))
        impl = self.node.build_impl(instance, class_name)
        self.node.adopt_impl(impl)
        with self._lock:
            self._migrations_in += 1
        return impl

    def migrate_out(
        self, path: str, target_base_uri: str, kind: str = "migration"
    ) -> dict:
        """Move the grain published at *path* to *target_base_uri*.

        Returns a result dict with the old and new ObjRef URIs (the
        cluster relays it to runtimes so POs can repoint).  Raises
        :class:`MigrationError` and leaves the grain serving in place if
        anything fails after the pause.
        """
        impl = self.node.impl_by_path(path)
        if impl is None:
            raise MigrationError(
                f"no grain published at {path!r} on {self.node.base_uri}"
            )
        if target_base_uri == self.node.base_uri:
            raise MigrationError("migration target is the grain's own node")
        entries = impl.begin_migration()
        # Up to a successful adopt() the move is abortable: nothing has
        # executed elsewhere, so requeueing the backlog restores the
        # grain exactly.  After adopt() the state lives on the target
        # and the move is committed — replay is best-effort (per-chunk
        # retries inside _replay) and the shell always flips forward,
        # because reverting would fork the instance's state.
        try:
            state = default_registry.state_of(impl.instance)
            target = self.node.make_proxy(f"{target_base_uri}/sched")
            new_impl = target.adopt(impl.class_name, state)
        except BaseException as exc:
            impl.abort_migration(entries)
            with self._lock:
                self._migration_failures += 1
            raise MigrationError(
                f"migration of {impl.class_name} ({path}) to "
                f"{target_base_uri} failed: {exc}"
            ) from exc
        try:
            moved, lost = self._replay(entries, new_impl)
        finally:
            impl.complete_migration(new_impl)
            self.node.remove_impl(impl)
        if lost:
            with self._lock:
                self._migration_failures += 1
        old_ref = self.node.host.objref_for(impl)
        new_ref = self._ref_of(new_impl)
        with self._lock:
            self._migrations_out += 1
            self._calls_moved += moved
            if kind == "steal":
                self._steals += 1
        telemetry = self.node.telemetry
        if telemetry is not None and telemetry.enabled:
            telemetry.metrics.counter(
                "sched.migrations", "grains migrated off this node"
            ).inc()
            telemetry.metrics.counter(
                "sched.calls_moved", "queued calls moved with migrations"
            ).inc(moved)
            telemetry.tracer.instant(
                "sched",
                f"sched.{kind}",
                class_name=impl.class_name,
                path=path,
                target=target_base_uri,
                moved_calls=moved,
            )
        return {
            "class_name": impl.class_name,
            "path": path,
            "kind": kind,
            "victim": self.node.base_uri,
            "target": target_base_uri,
            "moved_calls": moved,
            "lost_calls": lost,
            "old_uris": list(old_ref.uris),
            "new_uris": list(new_ref.uris) if new_ref is not None else [],
            "host_id": new_ref.host_id if new_ref is not None else None,
        }

    def counters(self) -> dict:
        with self._lock:
            return self._counters_locked()

    # -- internals ---------------------------------------------------------

    def _counters_locked(self) -> dict:
        return {
            "migrations_out": self._migrations_out,
            "migrations_in": self._migrations_in,
            "migration_failures": self._migration_failures,
            "calls_moved": self._calls_moved,
            "steals": self._steals,
        }

    @staticmethod
    def _ref_of(new_impl: Any):  # type: ignore[no-untyped-def]
        """ObjRef of the adopted IO — proxy or live local object."""
        ref = getattr(new_impl, "_parc_objref", None)
        if ref is not None:
            return ref
        home = getattr(new_impl, "_parc_home", None)
        if home is not None:
            return home.objref_for(new_impl)
        return None

    def _replay(
        self, entries: list[list[_Task]], new_impl: Any
    ) -> tuple[int, int]:
        """Replay the extracted backlog into the new IO, in order.

        Consecutive asynchronous tasks of one method re-aggregate into
        ``enqueue_batch`` chunks; synchronous tasks are relayed inline
        and their parked local waiters completed here (the wait event
        cannot cross the wire).  Returns ``(moved, lost)``: a chunk
        that still fails after one retry is dropped rather than
        deadlocking the committed move (lost > 0 marks the migration
        failed in the counters).
        """
        moved = 0
        lost = 0
        pending_method: str | None = None
        pending: list[tuple[tuple, dict]] = []

        def flush() -> None:
            nonlocal pending, pending_method, lost
            if pending:
                for attempt in (1, 2):
                    try:
                        new_impl.enqueue_batch(pending_method, pending)
                        break
                    except Exception:  # noqa: BLE001 - retry once
                        if attempt == 2:
                            lost += len(pending)
                pending = []
            pending_method = None

        for batch in entries:
            for task in batch:
                moved += 1
                if task.done is None:
                    if (
                        pending_method != task.method
                        or len(pending) >= REPLAY_BATCH
                    ):
                        flush()
                        pending_method = task.method
                    pending.append((task.args, task.kwargs))
                    continue
                flush()
                try:
                    task.result = new_impl.invoke(
                        task.method, task.args, task.kwargs
                    )
                except BaseException as exc:  # noqa: BLE001 - relay verbatim
                    task.error = exc
                task.done.set()
        flush()
        return moved, lost
