"""The rebalance planner: pure decision logic for work stealing.

Separated from the cluster loop exactly like ``flow``'s
``ElasticController``: the planner is a deterministic function of the
node reports it is handed plus a little cooldown state, so the steal /
migration policy is unit-testable without booting a cluster.

Semantics honored here (the active-object contract):

* a grain's calls execute serially on its single instance, so "stealing
  queued PO calls" means moving the *grain* — state plus queued backlog
  — never splitting a grain's queue across nodes;
* only normal/low-lane backlog is stealable: a grain with queued
  high-priority work is pinned (``high > 0`` filters it out), and the
  batch executing right now always finishes on the victim (the
  migration engine waits it out before touching state);
* a grain that just moved is pinned for ``migration_cooldown_s`` so a
  hot grain cannot ping-pong between nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.sched.config import SchedulerConfig


@dataclass(frozen=True)
class PlannedMove:
    """One grain migration the planner wants executed."""

    victim_uri: str
    target_uri: str
    path: str
    class_name: str
    backlog: int
    #: ``"steal"`` when the target was idle (pull), ``"rebalance"`` when
    #: it merely had room below the cluster mean (push).
    kind: str = "steal"


#: A grain queueing fewer calls than this stays put: migrating costs
#: more than executing such a backlog in place ever could.
MIN_STEAL_BACKLOG = 2


@dataclass
class RebalancePlanner:
    """Plans grain moves from per-node scheduler reports.

    ``plan`` takes the latest reports (one dict per node, shaped like
    :meth:`repro.sched.engine.NodeScheduler.report`) and a monotonic
    timestamp, and returns at most ``max_migrations_per_cycle``
    :class:`PlannedMove`\\ s.  A move is accepted only when it shrinks
    the victim/target makespan gap: grain ``b`` may go from victim
    ``v`` to target ``t`` iff ``depth[t] + b <= depth[v] - b``, so the
    target never overtakes the victim and moves cannot ping-pong.
    The rule handles the mega-grain case naturally: a grain whose own
    backlog dominates its node is unmovable (relocating it would just
    relocate the hot spot), while *everything else* keeps draining off
    that node — the mega-grain ends up owning its node's full capacity,
    which is the best any scheduler can do for a serial queue.
    """

    config: SchedulerConfig = field(default_factory=SchedulerConfig)

    def __post_init__(self) -> None:
        # path -> monotonic timestamp of the last planned move.
        self._cooldowns: dict[str, float] = {}

    def plan(
        self, reports: Sequence[Mapping], now: float
    ) -> list[PlannedMove]:
        cfg = self.config
        live = [r for r in reports if r.get("alive", True)]
        if len(live) < 2:
            return []
        self._expire_cooldowns(now)

        # Service-time weighting: when EVERY live report carries a
        # measured avg_service_s (telemetry on, no old peers), a node's
        # backlog is priced in seconds of work normalized to the cluster
        # mean — 100 queued 100 µs calls weigh less than 10 queued 50 ms
        # calls.  One missing/zero figure disables weighting entirely:
        # mixing measured and unmeasured depths would compare seconds
        # against task counts.
        service = {
            r["base_uri"]: float(r.get("avg_service_s", 0.0)) for r in live
        }
        if all(v > 0.0 for v in service.values()):
            mean_service = sum(service.values()) / len(live)
            weight = {
                uri: v / mean_service for uri, v in service.items()
            }
        else:
            weight = {uri: 1.0 for uri in service}
        backlog = {
            r["base_uri"]: int(r.get("queued", 0)) * weight[r["base_uri"]]
            for r in live
        }
        mean = sum(backlog.values()) / len(live)

        victims = sorted(
            (
                r
                for r in live
                if backlog[r["base_uri"]] >= cfg.steal_threshold
                and backlog[r["base_uri"]] > cfg.imbalance_ratio * mean
            ),
            key=lambda r: backlog[r["base_uri"]],
            reverse=True,
        )
        if not victims:
            return []
        victim_uris = {r["base_uri"] for r in victims}
        # Anyone below the mean (and not itself a victim) can absorb
        # work; truly idle nodes make it a "steal", the rest a
        # "rebalance".
        targets = {
            uri: depth
            for uri, depth in backlog.items()
            if uri not in victim_uris and depth < mean
        }
        if not targets:
            return []

        moves: list[PlannedMove] = []
        for victim in victims:
            if len(moves) >= cfg.max_migrations_per_cycle:
                break
            uri = victim["base_uri"]
            depth = backlog[uri]
            candidates = sorted(
                (
                    g
                    for g in victim.get("grains", ())
                    if int(g.get("backlog", 0)) >= MIN_STEAL_BACKLOG
                    and int(g.get("high", 0)) == 0
                    and g["path"] not in self._cooldowns
                ),
                key=lambda g: int(g["backlog"]),
                reverse=True,
            )
            for grain in candidates:
                if len(moves) >= cfg.max_migrations_per_cycle:
                    break
                size = int(grain["backlog"])
                # Makespan-improvement test: the move must leave the
                # target no deeper than the shrunken victim.  A grain
                # too big to satisfy it stays put; smaller ones may
                # still fit, so keep scanning.
                target_uri = self._pick_target(targets, size, depth)
                if target_uri is None:
                    continue
                kind = (
                    "steal"
                    if targets[target_uri] <= cfg.idle_threshold
                    else "rebalance"
                )
                moves.append(
                    PlannedMove(
                        victim_uri=uri,
                        target_uri=target_uri,
                        path=grain["path"],
                        class_name=grain.get("class_name", "?"),
                        backlog=size,
                        kind=kind,
                    )
                )
                self._cooldowns[grain["path"]] = now
                targets[target_uri] += size
                depth -= size
                backlog[uri] = depth
        return moves

    def _pick_target(
        self, targets: dict[str, int], size: int, victim_depth: int
    ) -> str | None:
        """Least-loaded target still below the victim after the move."""
        best = None
        for uri, depth in targets.items():
            if depth + size > victim_depth - size:
                continue
            if best is None or depth < targets[best]:
                best = uri
        return best

    def _expire_cooldowns(self, now: float) -> None:
        ttl = self.config.migration_cooldown_s
        expired = [
            path for path, ts in self._cooldowns.items() if now - ts >= ttl
        ]
        for path in expired:
            del self._cooldowns[path]
