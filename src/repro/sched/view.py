"""Cluster views: the structured load snapshot placement policies see.

The historical placement API handed policies a bare ``Sequence[float]``
of per-node loads — enough for round-robin, blind to everything the
runtime has since learned: queue depths (flow control), liveness (the
failure detector), learned bytes-per-call (the adaptive grain
controller) and transport cost asymmetry (the shm backplane makes
same-node peers ~3x cheaper than wire peers).  :class:`ClusterView`
carries all of it, one :class:`NodeView` per directory entry.

Back-compat: a ``ClusterView`` also *is* a read-only sequence of floats
(``len``/``[]``/iteration yield per-node effective loads, ``inf`` for
dead nodes), so old-style policy bodies written against the loads list
keep working when handed a view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

_INF = float("inf")


@dataclass(frozen=True)
class NodeView:
    """One node's row in the cluster snapshot.

    ``load`` is the classic OM metric (live IOs plus queued tasks,
    adjusted for placements made since the last refresh);
    ``queue_depth`` is the mailbox backlog alone (tasks queued across
    all hosted IOs' lanes); ``bytes_per_call`` is the adaptive grain
    controller's learned average serialized request size for the class
    being placed (0.0 when unknown); ``same_node`` marks peers
    co-located with the choosing node, i.e. reachable over the
    shared-memory backplane rather than the wire.

    ``avg_service_s``/``p99_s`` summarize the node's
    ``parc.method.seconds.*`` latency histograms (mean and conservative
    p99 across its hosted methods, 0.0 when telemetry is off or the peer
    predates the reply-path rework) — the signal that lets placement
    price *service time* rather than assume every queued task costs the
    same.
    """

    index: int
    base_uri: str
    alive: bool = True
    load: float = 0.0
    queue_depth: int = 0
    ios: int = 0
    same_node: bool = False
    bytes_per_call: float = 0.0
    avg_service_s: float = 0.0
    p99_s: float = 0.0

    @property
    def effective_load(self) -> float:
        """The legacy scalar: the load, or ``inf`` for a dead node."""
        return self.load if self.alive else _INF


@dataclass(frozen=True)
class ClusterView:
    """Immutable snapshot of the cluster handed to placement policies.

    ``nodes`` is in directory order, one entry per directory slot (dead
    nodes included, flagged ``alive=False``); ``class_name`` is the wire
    name of the class being placed, when known.
    """

    nodes: tuple[NodeView, ...] = field(default_factory=tuple)
    class_name: str | None = None

    @classmethod
    def from_loads(
        cls,
        loads: Sequence[float],
        class_name: str | None = None,
    ) -> "ClusterView":
        """Lift a legacy loads vector into a view (``inf`` = dead)."""
        return cls(
            nodes=tuple(
                NodeView(
                    index=i,
                    base_uri=f"node://{i}",
                    alive=load != _INF,
                    load=float(load) if load != _INF else 0.0,
                )
                for i, load in enumerate(loads)
            ),
            class_name=class_name,
        )

    def live(self) -> list[NodeView]:
        """Nodes the failure detector considers reachable."""
        return [node for node in self.nodes if node.alive]

    def loads(self) -> list[float]:
        """The legacy per-node loads vector (``inf`` for dead nodes)."""
        return [node.effective_load for node in self.nodes]

    # -- Sequence[float] duck typing (legacy policy bodies) ---------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, index):  # type: ignore[no-untyped-def]
        if isinstance(index, slice):
            return self.loads()[index]
        return self.nodes[index].effective_load

    def __iter__(self) -> Iterator[float]:
        return iter(self.loads())
