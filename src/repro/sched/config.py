"""SchedulerConfig: every scheduling knob in one typed value.

Scheduling options used to be scattered across flat :class:`ParcConfig`
fields (``grain``, ``placement``) with no home for the rebalancer's
thresholds.  ``ParcConfig(scheduler=SchedulerConfig(...))`` gathers them;
the old flat fields are still accepted (with a once-per-process
``DeprecationWarning``) so ``init(**old_kwargs)`` keeps working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ScooppError


@dataclass
class SchedulerConfig:
    """Placement, grain adaptation, and rebalancing knobs.

    ``placement`` accepts a policy name (``"round_robin"``,
    ``"least_loaded"``, ``"random"``, ``"locality"``) or a policy
    instance (old-style ``Sequence[float]`` policies are wrapped by a
    back-compat adapter with a ``DeprecationWarning``).

    ``work_stealing`` enables idle-node pulls: a node whose mailbox
    backlog is below ``idle_threshold`` queued calls steals a grain —
    the grain's state plus its queued normal/low-lane backlog — from the
    node with the deepest backlog, provided the victim's backlog exceeds
    ``steal_threshold`` and the imbalance ratio (victim backlog / mean
    backlog) exceeds ``imbalance_ratio``.  ``migration`` enables the
    same live-migration machinery for explicit
    ``Cluster.migrate_grain`` calls and push-based rebalancing; stealing
    implies migration.
    """

    #: Grain policy (static knobs or the adaptive controller); ``None``
    #: keeps the runtime default.
    grain: Any = None
    #: Online per-method grain autotuning: proxies consult the adaptive
    #: grain controller's ``decide_method`` (fed by the
    #: ``parc.method.seconds.*`` histograms and learned bytes-per-call)
    #: to retune ``max_calls``/``flush_after_s`` per (class, method)
    #: while running.  Only takes effect when the effective grain policy
    #: is an :class:`~repro.core.grain.AdaptiveGrainController`.
    autotune: bool = True
    #: Placement policy name or instance.
    placement: Any = "round_robin"
    #: Enable the idle-node work-stealing loop.
    work_stealing: bool = False
    #: Enable live grain migration (implied by ``work_stealing``).
    migration: bool = False
    #: Rebalance loop period in seconds.
    rebalance_interval_s: float = 0.25
    #: Minimum victim backlog (queued normal/low calls) before anything
    #: is stolen from it.
    steal_threshold: int = 8
    #: A thief must have at most this many queued calls to pull work.
    idle_threshold: int = 2
    #: Victim backlog must exceed ``imbalance_ratio`` x the cluster mean
    #: backlog before a steal is planned (guards against churn when load
    #: is already level).
    imbalance_ratio: float = 1.5
    #: Upper bound on migrations planned per rebalance tick.
    max_migrations_per_cycle: int = 4
    #: Per-grain cooldown: a grain that just moved is pinned for this
    #: many seconds (prevents hot-grain ping-pong).
    migration_cooldown_s: float = 2.0

    def __post_init__(self) -> None:
        if self.rebalance_interval_s <= 0:
            raise ScooppError(
                "rebalance_interval_s must be positive, got "
                f"{self.rebalance_interval_s}"
            )
        if self.steal_threshold < 1:
            raise ScooppError(
                f"steal_threshold must be >= 1, got {self.steal_threshold}"
            )
        if self.idle_threshold < 0:
            raise ScooppError(
                f"idle_threshold cannot be negative, got {self.idle_threshold}"
            )
        if self.imbalance_ratio < 1.0:
            raise ScooppError(
                f"imbalance_ratio must be >= 1.0, got {self.imbalance_ratio}"
            )
        if self.max_migrations_per_cycle < 1:
            raise ScooppError(
                "max_migrations_per_cycle must be >= 1, got "
                f"{self.max_migrations_per_cycle}"
            )
        if self.migration_cooldown_s < 0:
            raise ScooppError(
                "migration_cooldown_s cannot be negative, got "
                f"{self.migration_cooldown_s}"
            )
        if self.work_stealing:
            # Stealing is migration initiated by the idle side; the
            # mechanism must be on for the trigger to mean anything.
            self.migration = True

    @property
    def rebalancing_enabled(self) -> bool:
        """Whether the cluster should run the rebalance loop at all."""
        return self.work_stealing or self.migration
