"""Minimal metrics: counters, gauges, fixed-bucket histograms.

Enough for runtime dashboards and tests without external dependencies.
All types are thread-safe; a :class:`MetricsRegistry` groups them and
renders a deterministic text snapshot (sorted by name).
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Any, Mapping, Sequence


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Arbitrary settable value."""

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, float("inf")
)


class Histogram:
    """Fixed-bucket histogram with sum/count (Prometheus-style)."""

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help_text: str = "",
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be sorted and non-empty")
        if buckets[-1] != float("inf"):
            buckets = tuple(buckets) + (float("inf"),)
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing quantile *q* (0..1)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if not self._count:
                return 0.0
            target = q * self._count
            cumulative = 0
            for bound, count in zip(self.buckets, self._counts):
                cumulative += count
                if cumulative >= target:
                    return bound
            return self.buckets[-1]

    def bucket_counts(self) -> list[tuple[float, int]]:
        with self._lock:
            return list(zip(self.buckets, self._counts))


class MetricsRegistry:
    """Named collection of metrics with text rendering."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_make(name, lambda: Counter(name, help_text), Counter)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_make(name, lambda: Gauge(name, help_text), Gauge)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help_text: str = "",
    ) -> Histogram:
        return self._get_or_make(
            name, lambda: Histogram(name, buckets, help_text), Histogram
        )

    def _get_or_make(self, name, factory, expected_type):  # type: ignore[no-untyped-def]
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, expected_type):
                raise ValueError(
                    f"metric {name!r} already exists as "
                    f"{type(metric).__name__}"
                )
            return metric

    def snapshot(self) -> dict[str, float]:
        """Flat name → value view (histograms expose count/sum/mean)."""
        with self._lock:
            metrics = dict(self._metrics)
        values: dict[str, float] = {}
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, Histogram):
                values[f"{name}_count"] = metric.count
                values[f"{name}_sum"] = metric.total
                values[f"{name}_mean"] = metric.mean
            else:
                values[name] = metric.value
        return values

    def render(self) -> str:
        """Deterministic text dump (tests, logs)."""
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, float) and not value.is_integer():
                lines.append(f"{name} {value:.6g}")
            else:
                lines.append(f"{name} {int(value)}")
        return "\n".join(lines)

    def export(self) -> dict[str, dict[str, Any]]:
        """Structured per-metric view — the cross-node merge format.

        Counters/gauges carry ``value``; histograms carry ``count``,
        ``sum``, and ``buckets`` as ``[upper_bound, count]`` pairs, which
        is everything :func:`merge_exports` needs to aggregate the same
        metric observed on several nodes.
        """
        with self._lock:
            metrics = dict(self._metrics)
        out: dict[str, dict[str, Any]] = {}
        for name, metric in sorted(metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = {
                    "type": "histogram",
                    "count": metric.count,
                    "sum": metric.total,
                    "buckets": [
                        [bound, count]
                        for bound, count in metric.bucket_counts()
                    ],
                    "help": metric.help_text,
                }
            elif isinstance(metric, Counter):
                out[name] = {
                    "type": "counter",
                    "value": metric.value,
                    "help": metric.help_text,
                }
            else:
                out[name] = {
                    "type": "gauge",
                    "value": metric.value,
                    "help": metric.help_text,
                }
        return out


def merge_exports(
    exports: Sequence[Mapping[str, Mapping[str, Any]]],
) -> dict[str, dict[str, Any]]:
    """Sum same-named metrics from several :meth:`MetricsRegistry.export` s.

    Counters and gauges add their values; histograms add counts, sums,
    and per-bound bucket counts.  A name that appears with conflicting
    types keeps the first occurrence and ignores later ones (defensive —
    the registries on every node are built by the same code paths).
    """
    merged: dict[str, dict[str, Any]] = {}
    for export in exports:
        for name, data in export.items():
            existing = merged.get(name)
            if existing is None:
                merged[name] = {
                    key: (
                        [list(pair) for pair in value]
                        if key == "buckets"
                        else value
                    )
                    for key, value in data.items()
                }
                continue
            if existing["type"] != data["type"]:
                continue
            if data["type"] == "histogram":
                existing["count"] += data["count"]
                existing["sum"] += data["sum"]
                by_bound = {
                    bound: count for bound, count in existing["buckets"]
                }
                for bound, count in data["buckets"]:
                    by_bound[bound] = by_bound.get(bound, 0) + count
                existing["buckets"] = [
                    [bound, count]
                    for bound, count in sorted(by_bound.items())
                ]
            else:
                existing["value"] += data["value"]
    return dict(sorted(merged.items()))


#: Prefix of the per-method execution-latency histograms the IO worker
#: records (``parc.method.seconds.<Class>.<method>``).
METHOD_HISTOGRAM_PREFIX = "parc.method.seconds."


def estimate_quantile(
    buckets: Sequence[Sequence[float]], count: int, q: float
) -> float | None:
    """Quantile estimate from exported ``[[bound, count], ...]`` buckets.

    The exported form of :meth:`Histogram.quantile`: walks the per-bucket
    counts cumulatively and returns the upper bound of the bucket holding
    the q-th observation (a conservative over-estimate, like Prometheus's
    ``histogram_quantile``).  Returns ``None`` with no observations.
    """
    if count <= 0:
        return None
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    rank = q * count
    cumulative = 0
    for bound, bucket_count in buckets:
        cumulative += bucket_count
        if cumulative >= rank:
            return float(bound)
    return float(buckets[-1][0]) if buckets else None


def summarize_method_histograms(
    export: Mapping[str, Mapping[str, Any]],
    prefix: str = METHOD_HISTOGRAM_PREFIX,
) -> dict[str, dict[str, float]]:
    """Service-time summaries of the per-method latency histograms.

    Input is a :meth:`MetricsRegistry.export` document; output maps each
    ``<Class>.<method>`` span name (the part after *prefix*) to::

        {"count": N, "avg_s": mean, "p99_s": conservative p99}

    This is the bridge between the telemetry layer and the adaptive
    pieces that consume it — the grain autotuner and the service-aware
    placement score — so they share one definition of "service time".
    """
    summaries: dict[str, dict[str, float]] = {}
    for name, data in export.items():
        if not name.startswith(prefix) or data.get("type") != "histogram":
            continue
        count = int(data.get("count", 0))
        if count <= 0:
            continue
        p99 = estimate_quantile(data.get("buckets", ()), count, 0.99)
        summaries[name[len(prefix):]] = {
            "count": float(count),
            "avg_s": float(data.get("sum", 0.0)) / count,
            "p99_s": float(p99) if p99 is not None else 0.0,
        }
    return summaries


_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    sanitized = _PROM_NAME_BAD.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(export: Mapping[str, Mapping[str, Any]]) -> str:
    """Prometheus text exposition of an :meth:`MetricsRegistry.export`.

    This is what each node's ``telemetry`` well-known object serves from
    ``scrape()`` — point a file-based scraper (or curl over the remoting
    channel) at it and the output parses as the standard text format.
    """
    lines: list[str] = []
    for name, data in sorted(export.items()):
        prom = _prom_name(name)
        if data.get("help"):
            lines.append(f"# HELP {prom} {data['help']}")
        lines.append(f"# TYPE {prom} {data['type']}")
        if data["type"] == "histogram":
            cumulative = 0
            for bound, count in data["buckets"]:
                cumulative += count
                lines.append(
                    f'{prom}_bucket{{le="{_prom_value(bound)}"}} '
                    f"{cumulative}"
                )
            lines.append(f"{prom}_sum {_prom_value(float(data['sum']))}")
            lines.append(f"{prom}_count {data['count']}")
        else:
            lines.append(f"{prom} {_prom_value(float(data['value']))}")
    return "\n".join(lines) + "\n"
