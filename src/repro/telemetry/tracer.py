"""Span tracing with Chrome-trace export.

Events follow the Trace Event Format's complete-event shape (``"ph": "X"``
with microsecond timestamps/durations), which both ``chrome://tracing``
and Perfetto load directly.

Spans participate in distributed traces: :meth:`Tracer.span` derives a
child of the active :class:`~repro.telemetry.context.TraceContext` and
activates it for the enclosed block, so nested spans — including spans
recorded on *other nodes* after the context crossed the wire in the
``parc-trace`` header — chain parent → child.  Timestamps are anchored
to the wall clock at tracer construction, so events from tracers in
different processes on one machine line up when merged with
:func:`merge_chrome_trace`.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import logging
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping, Sequence

from repro.telemetry.context import child_of, current_context

logger = logging.getLogger("repro.telemetry")

#: Counter name for ring-buffer overflow (the silent-drop fix).
DROPPED_EVENTS_COUNTER = "telemetry.dropped_events"


@dataclass
class TraceEvent:
    """One recorded event (complete span or instant)."""

    name: str
    category: str
    start_us: float
    duration_us: float  # 0 for instants
    thread_name: str
    args: dict[str, Any] = field(default_factory=dict)
    phase: str = "X"
    trace_id: str = ""
    span_id: str = ""
    parent_id: str = ""

    def to_chrome(
        self, thread_ids: dict[str, int], pid: int = 1
    ) -> dict[str, Any]:
        tid = thread_ids.setdefault(self.thread_name, len(thread_ids) + 1)
        args = dict(self.args)
        if self.trace_id:
            args["trace_id"] = self.trace_id
            args["span_id"] = self.span_id
            if self.parent_id:
                args["parent_id"] = self.parent_id
        event: dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "ph": self.phase,
            "ts": round(self.start_us, 3),
            "pid": pid,
            "tid": tid,
            "args": args,
        }
        if self.phase == "X":
            event["dur"] = round(self.duration_us, 3)
        return event

    def to_data(self) -> dict[str, Any]:
        """Plain-dict form for shipping events across the wire."""
        return asdict(self)


def event_from_data(data: Mapping[str, Any]) -> TraceEvent:
    """Inverse of :meth:`TraceEvent.to_data`."""
    return TraceEvent(**dict(data))


class Tracer:
    """Thread-safe event recorder.

    Bounded: beyond *capacity* events the oldest are dropped (a tracer
    left on during a long run must not exhaust memory).  The first drop
    logs a warning and every drop increments the
    ``telemetry.dropped_events`` counter when a *metrics* registry is
    attached, so capacity overflow is never silent.
    """

    def __init__(
        self,
        capacity: int = 100_000,
        *,
        metrics: "Any | None" = None,
        name: str = "",
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self._dropped = 0
        self._origin = time.perf_counter()
        self._origin_epoch_us = time.time() * 1e6
        self._drop_counter = (
            metrics.counter(
                DROPPED_EVENTS_COUNTER,
                "trace events lost to tracer capacity",
            )
            if metrics is not None
            else None
        )

    def _now_us(self) -> float:
        """Microseconds on a wall-clock-anchored monotonic timeline."""
        return (
            self._origin_epoch_us
            + (time.perf_counter() - self._origin) * 1e6
        )

    def _record(self, event: TraceEvent) -> None:
        first_drop = False
        dropped_one = False
        with self._lock:
            if len(self._events) >= self.capacity:
                self._events.pop(0)
                self._dropped += 1
                dropped_one = True
                first_drop = self._dropped == 1
            self._events.append(event)
        if first_drop:
            logger.warning(
                "tracer %s hit capacity %d: oldest events are being "
                "dropped (count in telemetry.dropped_events)",
                self.name or "<anonymous>",
                self.capacity,
            )
        if dropped_one and self._drop_counter is not None:
            self._drop_counter.inc()

    @contextlib.contextmanager
    def span(
        self, category: str, name: str, **args: Any
    ) -> Iterator[None]:
        """Record the enclosed block as a complete event.

        A child :class:`TraceContext` of the currently-active context is
        activated for the block (a fresh root when none is active), so
        nested spans — and remote calls made inside the block — chain to
        this one.  Unsampled contexts run the block but record nothing.
        """
        parent = current_context.get()
        ctx = child_of(parent)
        token = current_context.set(ctx)
        start = self._now_us()
        try:
            yield
        finally:
            current_context.reset(token)
            if ctx.sampled:
                self._record(
                    TraceEvent(
                        name=name,
                        category=category,
                        start_us=start,
                        duration_us=self._now_us() - start,
                        thread_name=threading.current_thread().name,
                        args=dict(args),
                        trace_id=ctx.trace_id,
                        span_id=ctx.span_id,
                        parent_id=parent.span_id if parent else "",
                    )
                )

    def instant(self, category: str, name: str, **args: Any) -> None:
        """Record a zero-duration marker (attached to the active span)."""
        ctx = current_context.get()
        if ctx is not None and not ctx.sampled:
            return
        self._record(
            TraceEvent(
                name=name,
                category=category,
                start_us=self._now_us(),
                duration_us=0.0,
                thread_name=threading.current_thread().name,
                args=dict(args),
                phase="i",
                trace_id=ctx.trace_id if ctx else "",
                span_id=ctx.span_id if ctx else "",
            )
        )

    def events(self) -> list[TraceEvent]:
        with self._lock:
            return list(self._events)

    def events_data(self) -> list[dict[str, Any]]:
        """Events as plain dicts (the remote-collection wire format)."""
        return [event.to_data() for event in self.events()]

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._dropped = 0

    def to_chrome_trace(self) -> dict[str, Any]:
        """Trace Event Format document (load in chrome://tracing)."""
        thread_ids: dict[str, int] = {}
        with self._lock:
            events = [event.to_chrome(thread_ids) for event in self._events]
            dropped = self._dropped
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"generator": "pyparc", "droppedEvents": dropped},
        }

    def dump(self, path: str | Path) -> Path:
        """Write the Chrome trace to *path*; returns the path."""
        target = Path(path)
        target.write_text(
            json.dumps(self.to_chrome_trace(), indent=None), encoding="utf-8"
        )
        return target

    def span_durations(self, category: str | None = None) -> list[float]:
        """Durations in seconds of recorded complete events (for stats)."""
        return [
            event.duration_us / 1e6
            for event in self.events()
            if event.phase == "X"
            and (category is None or event.category == category)
        ]


def merge_chrome_trace(
    node_events: Mapping[str, Sequence[TraceEvent | Mapping[str, Any]]],
    dropped_events: int = 0,
) -> dict[str, Any]:
    """Merge per-node event lists into one document with process lanes.

    *node_events* maps a node label (e.g. its base URI) to that node's
    events — :class:`TraceEvent` instances or their :meth:`to_data`
    dicts.  Each node becomes a Chrome-trace *process* (one ``pid`` plus
    a ``process_name`` metadata record), so the merged file shows one
    lane per node with the node's threads nested under it.  Timestamps
    are rebased to the earliest event so the file starts at t=0.
    """
    merged: list[dict[str, Any]] = []
    for pid, label in enumerate(sorted(node_events), start=1):
        merged.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
        thread_ids: dict[str, int] = {}
        for raw in node_events[label]:
            event = (
                raw
                if isinstance(raw, TraceEvent)
                else event_from_data(raw)
            )
            merged.append(event.to_chrome(thread_ids, pid=pid))
    origin = min(
        (event["ts"] for event in merged if "ts" in event), default=0.0
    )
    for event in merged:
        if "ts" in event:
            event["ts"] = round(event["ts"] - origin, 3)
    return {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "pyparc",
            "droppedEvents": dropped_events,
            "nodes": sorted(node_events),
        },
    }


_global_lock = threading.Lock()
_global_tracer: Tracer | None = None

#: Tracer bound to the executing node, if any.  Server-side code (the
#: dispatch path, implementation objects) runs with the owning node's
#: tracer active so spans land in that node's lane of the merged trace.
current_tracer_var: contextvars.ContextVar[Tracer | None] = (
    contextvars.ContextVar("parc_tracer", default=None)
)


def set_global_tracer(tracer: Tracer | None) -> None:
    """Install (or clear, with None) the process-wide tracer.

    While installed, implementation objects record a span per executed
    method (category ``io``), and trace-aware subsystems may add more.
    """
    global _global_tracer
    with _global_lock:
        _global_tracer = tracer


def get_global_tracer() -> Tracer | None:
    return _global_tracer


def active_tracer() -> Tracer | None:
    """The tracer in effect here: the node-bound one, else the global."""
    tracer = current_tracer_var.get()
    return tracer if tracer is not None else _global_tracer
