"""Span tracing with Chrome-trace export.

Events follow the Trace Event Format's complete-event shape (``"ph": "X"``
with microsecond timestamps/durations), which both ``chrome://tracing``
and Perfetto load directly.
"""

from __future__ import annotations

import contextlib
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator


@dataclass
class TraceEvent:
    """One recorded event (complete span or instant)."""

    name: str
    category: str
    start_us: float
    duration_us: float  # 0 for instants
    thread_name: str
    args: dict[str, Any] = field(default_factory=dict)
    phase: str = "X"

    def to_chrome(self, thread_ids: dict[str, int]) -> dict[str, Any]:
        tid = thread_ids.setdefault(self.thread_name, len(thread_ids) + 1)
        event: dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "ph": self.phase,
            "ts": round(self.start_us, 3),
            "pid": 1,
            "tid": tid,
            "args": self.args,
        }
        if self.phase == "X":
            event["dur"] = round(self.duration_us, 3)
        return event


class Tracer:
    """Thread-safe event recorder.

    Bounded: beyond *capacity* events the oldest are dropped (a tracer
    left on during a long run must not exhaust memory); the drop count is
    reported in the export metadata.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self._dropped = 0
        self._origin = time.perf_counter()

    def _now_us(self) -> float:
        return (time.perf_counter() - self._origin) * 1e6

    def _record(self, event: TraceEvent) -> None:
        with self._lock:
            if len(self._events) >= self.capacity:
                self._events.pop(0)
                self._dropped += 1
            self._events.append(event)

    @contextlib.contextmanager
    def span(
        self, category: str, name: str, **args: Any
    ) -> Iterator[None]:
        """Record the enclosed block as a complete event."""
        start = self._now_us()
        try:
            yield
        finally:
            self._record(
                TraceEvent(
                    name=name,
                    category=category,
                    start_us=start,
                    duration_us=self._now_us() - start,
                    thread_name=threading.current_thread().name,
                    args=dict(args),
                )
            )

    def instant(self, category: str, name: str, **args: Any) -> None:
        """Record a zero-duration marker."""
        self._record(
            TraceEvent(
                name=name,
                category=category,
                start_us=self._now_us(),
                duration_us=0.0,
                thread_name=threading.current_thread().name,
                args=dict(args),
                phase="i",
            )
        )

    def events(self) -> list[TraceEvent]:
        with self._lock:
            return list(self._events)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._dropped = 0

    def to_chrome_trace(self) -> dict[str, Any]:
        """Trace Event Format document (load in chrome://tracing)."""
        thread_ids: dict[str, int] = {}
        with self._lock:
            events = [event.to_chrome(thread_ids) for event in self._events]
            dropped = self._dropped
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"generator": "pyparc", "droppedEvents": dropped},
        }

    def dump(self, path: str | Path) -> Path:
        """Write the Chrome trace to *path*; returns the path."""
        target = Path(path)
        target.write_text(
            json.dumps(self.to_chrome_trace(), indent=None), encoding="utf-8"
        )
        return target

    def span_durations(self, category: str | None = None) -> list[float]:
        """Durations in seconds of recorded complete events (for stats)."""
        return [
            event.duration_us / 1e6
            for event in self.events()
            if event.phase == "X"
            and (category is None or event.category == category)
        ]


_global_lock = threading.Lock()
_global_tracer: Tracer | None = None


def set_global_tracer(tracer: Tracer | None) -> None:
    """Install (or clear, with None) the process-wide tracer.

    While installed, implementation objects record a span per executed
    method (category ``io``), and trace-aware subsystems may add more.
    """
    global _global_tracer
    with _global_lock:
        _global_tracer = tracer


def get_global_tracer() -> Tracer | None:
    return _global_tracer
