"""Distributed trace context: ids, propagation header, sampling.

A :class:`TraceContext` names one span in one trace.  It is created at a
PO call site (or any root operation), carried across the wire in the
``parc-trace`` request header, and re-activated on the server dispatch
path so spans recorded on different nodes share a ``trace_id`` and chain
parent → child through ``span_id`` references.

The module is deliberately dependency-free (no tracer import) so the
remoting and channel layers can use it without cycles.  Activation uses
a :class:`contextvars.ContextVar`, which follows the caller across
``await`` points and — when explicitly copied with
:func:`contextvars.copy_context` — across thread-pool handoffs.
"""

from __future__ import annotations

import contextlib
import contextvars
import random
import threading
from dataclasses import dataclass, replace
from typing import Iterator

#: Request-header key carrying ``trace_id:parent_span_id:sampled`` over
#: every channel (the request codec ships headers verbatim, so tcp, aio,
#: http, loopback, and the chaos/breaker wrappers all preserve it).
TRACE_HEADER = "parc-trace"

_ID_BITS = 64


def _new_id() -> str:
    """Random 64-bit hex id (trace and span ids share the format)."""
    return f"{random.getrandbits(_ID_BITS):016x}"


@dataclass(frozen=True)
class TraceContext:
    """One span's identity within a distributed trace."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def child(self) -> "TraceContext":
        """New span in the same trace (sampling decision inherited)."""
        return replace(self, span_id=_new_id())


#: The currently-active span context (what new spans become children of).
current_context: contextvars.ContextVar[TraceContext | None] = (
    contextvars.ContextVar("parc_trace_context", default=None)
)

_sample_lock = threading.Lock()
_sample_rate = 1.0


def set_sample_rate(rate: float) -> None:
    """Fraction of *new root traces* that are recorded (0.0 .. 1.0).

    The decision is made once at the trace root and inherited by every
    child span, local or remote, so a trace is always complete or absent
    — never recorded on one node and missing on another.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError("sample rate must be in [0, 1]")
    global _sample_rate
    with _sample_lock:
        _sample_rate = float(rate)


def get_sample_rate() -> float:
    return _sample_rate


def _sample() -> bool:
    rate = _sample_rate
    if rate >= 1.0:
        return True
    if rate <= 0.0:
        return False
    return random.random() < rate


def new_root() -> TraceContext:
    """Fresh trace with the sampling decision taken now."""
    return TraceContext(
        trace_id=_new_id(), span_id=_new_id(), sampled=_sample()
    )


def child_of(parent: TraceContext | None) -> TraceContext:
    """Child span of *parent*, or a new sampled-or-not root if None."""
    if parent is None:
        return new_root()
    return parent.child()


def to_header(ctx: TraceContext) -> str:
    """Serialize for the ``parc-trace`` request header."""
    return f"{ctx.trace_id}:{ctx.span_id}:{1 if ctx.sampled else 0}"


def from_header(value: str | None) -> TraceContext | None:
    """Parse a ``parc-trace`` header; malformed input yields None."""
    if not value:
        return None
    parts = value.split(":")
    if len(parts) != 3 or not parts[0] or not parts[1]:
        return None
    return TraceContext(
        trace_id=parts[0], span_id=parts[1], sampled=parts[2] != "0"
    )


@contextlib.contextmanager
def activate(ctx: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make *ctx* the current context for the enclosed block."""
    token = current_context.set(ctx)
    try:
        yield ctx
    finally:
        current_context.reset(token)
