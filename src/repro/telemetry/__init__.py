"""Telemetry: execution tracing and metrics for the runtime.

Production-quality runtimes need observability; the paper's RTS exposed
load figures between object managers, and this package generalizes that:

* :class:`Tracer` — thread-safe span/instant recorder with Chrome-trace
  JSON export (load the file in ``chrome://tracing`` / Perfetto to see
  the farm's timeline).  Install one with :func:`set_global_tracer` and
  every implementation-object execution records a span automatically.
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` /
  :class:`MetricsRegistry` — minimal metrics with a text snapshot.
"""

from repro.telemetry.tracer import (
    Tracer,
    get_global_tracer,
    set_global_tracer,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "get_global_tracer",
    "set_global_tracer",
]
