"""Telemetry: execution tracing and metrics for the runtime.

Production-quality runtimes need observability; the paper's RTS exposed
load figures between object managers, and this package generalizes that:

* :class:`Tracer` — thread-safe span/instant recorder with Chrome-trace
  JSON export (load the file in ``chrome://tracing`` / Perfetto to see
  the farm's timeline).  Install one with :func:`set_global_tracer` and
  every implementation-object execution records a span automatically.
* :class:`TraceContext` / ``parc-trace`` header — distributed trace
  propagation: spans created on different nodes chain parent → child
  (see :mod:`repro.telemetry.context`).
* :class:`Counter` / :class:`Gauge` / :class:`Histogram` /
  :class:`MetricsRegistry` — minimal metrics with text snapshot,
  structured export, cross-node merge, and Prometheus rendering.
* :class:`TelemetryConfig` — the ``telemetry=`` section of
  :class:`repro.core.config.ParcConfig`.

:class:`~repro.telemetry.node.NodeTelemetry` (the per-node well-known
``telemetry`` object) lives in :mod:`repro.telemetry.node` and is
imported directly by the cluster layer — not re-exported here, to keep
this package import-light and free of remoting dependencies.
"""

from repro.telemetry.config import TelemetryConfig
from repro.telemetry.context import (
    TRACE_HEADER,
    TraceContext,
    child_of,
    current_context,
    from_header,
    get_sample_rate,
    set_sample_rate,
    to_header,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    estimate_quantile,
    merge_exports,
    render_prometheus,
    summarize_method_histograms,
)
from repro.telemetry.tracer import (
    TraceEvent,
    Tracer,
    active_tracer,
    event_from_data,
    get_global_tracer,
    merge_chrome_trace,
    set_global_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TRACE_HEADER",
    "TelemetryConfig",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "active_tracer",
    "child_of",
    "current_context",
    "estimate_quantile",
    "event_from_data",
    "from_header",
    "get_global_tracer",
    "get_sample_rate",
    "merge_chrome_trace",
    "merge_exports",
    "render_prometheus",
    "set_global_tracer",
    "summarize_method_histograms",
    "set_sample_rate",
    "to_header",
]
