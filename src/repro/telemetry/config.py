"""Telemetry configuration — the ``telemetry=`` section of ParcConfig.

A plain picklable dataclass: worker processes receive it inside
:class:`repro.cluster.proc.WorkerConfig`, so it must survive
``multiprocessing`` spawn.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TelemetryConfig:
    """Cluster-wide observability switches.

    enabled
        Install a per-node :class:`~repro.telemetry.tracer.Tracer`, record
        rpc/dispatch/io spans, and serve scrape data on every node.  Off
        by default: the disabled path must stay within the 5% pingpong
        guardrail (``benchmarks/test_trace_overhead.py``).
    sample_rate
        Fraction of root traces recorded (decision taken at the root,
        inherited by all children — see
        :func:`repro.telemetry.context.set_sample_rate`).
    capacity
        Per-node tracer ring size; beyond it the oldest events drop and
        ``telemetry.dropped_events`` counts them.
    """

    enabled: bool = False
    sample_rate: float = 1.0
    capacity: int = 100_000

    def __post_init__(self) -> None:
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ValueError("sample_rate must be in [0, 1]")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
